#!/usr/bin/env python
"""Produce the full analyst report for a network (the §1 "web page").

Composes every element of the Entropy/IP interface — entropy/ACR plot,
mining table, BN graph, conditional browser, windowing map, discovered
subnets, and generated candidates — into one document, for the S5
(web-company) network.

Run:  python examples/analyst_report.py [> report.md]
"""

import numpy as np

from repro import EntropyIP
from repro.core.report import full_report
from repro.datasets import build_network


def main():
    network = build_network("S5")
    sample = network.sample(5000, seed=0)
    analysis = EntropyIP.fit(sample)
    print(full_report(
        analysis,
        title=f"Entropy/IP report — {network.name} ({network.description})",
        n_candidates=15,
        rng=np.random.default_rng(0),
    ))


if __name__ == "__main__":
    main()
