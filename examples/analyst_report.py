#!/usr/bin/env python
"""Produce the full analyst report for a network (the §1 "web page").

Composes every element of the Entropy/IP interface — entropy/ACR plot,
mining table, BN graph, conditional browser, windowing map, discovered
subnets, and generated candidates — into one document, for the S5
(web-company) network.

The fit and the report both go through the serving runtime — the same
``fit``/``report`` requests `entropy-ip serve` answers, rendered
through a bounded work queue with latency accounting.

Run:  python examples/analyst_report.py [> report.md]
"""

from repro.datasets import build_network
from repro.serve import HitlistService


def main():
    network = build_network("S5")
    sample = network.sample(5000, seed=0)
    with HitlistService() as service:
        service.fit(network.name, sample)
        print(service.report(
            network.name,
            title=f"Entropy/IP report — {network.name} ({network.description})",
            n_candidates=15,
            seed=0,
        ))


if __name__ == "__main__":
    main()
