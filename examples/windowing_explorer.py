#!/usr/bin/env python
"""Windowing analysis with pluggable variability measures (§4.5, Fig. 5).

Computes the entropy of every nybble-aligned address window for a
server network and renders the triangular heat map, then repeats with
the alternative measures §4.5 suggests (distinct-value count and
top-value frequency).

Run:  python examples/windowing_explorer.py
"""

from repro.datasets import build_network
from repro.serve import ModelRegistry
from repro.viz import render_windowing_map


def main():
    network = build_network("S1")
    # Fit through the runtime's model registry; `analysis` is the same
    # EntropyIP object a direct fit would return.
    analysis = ModelRegistry().fit("S1", network.sample(5000, seed=0)).analysis

    for measure in ("entropy", "distinct", "top-frequency"):
        result = analysis.windowing(measure=measure)
        print(render_windowing_map(result))
        print()

    # Read one cell programmatically: the entropy of bits 40-56 (the
    # subnet-discriminating region of S1).
    cells = {
        (c.position_bits, c.length_bits): c.score
        for c in analysis.windowing().cells
    }
    print(f"entropy of window bits 40-56: {cells[(40, 16)]:.2f} bits")
    print(f"entropy of window bits  0-32: {cells[(0, 32)]:.2f} bits "
          "(the /32 prefixes)")


if __name__ == "__main__":
    main()
