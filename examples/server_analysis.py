#!/usr/bin/env python
"""Analyze a server network's addressing plan (the §5.2 workflow).

Reproduces the S1 case study: discover the two /32s and the addressing
variants selected by bits 32-40, detect the embedded-IPv4 variant, and
show how conditioning on a variant collapses the IID distribution
(Fig. 7(b)).

Run:  python examples/server_analysis.py
"""

import numpy as np

from repro.datasets import build_network
from repro.ipv6.eui64 import embedded_ipv4_dotted_quad
from repro.serve import ModelRegistry
from repro.viz import render_acr_entropy_plot, render_browser


def main():
    network = build_network("S1")
    sample = network.sample(8000, seed=0)
    # Fit through the model registry (the runtime's bottom layer): the
    # fitted analysis is cached under its name + content digest, so a
    # serving process repeating this analysis reuses the warm model.
    registry = ModelRegistry()
    analysis = registry.fit("S1", sample).analysis

    print(render_acr_entropy_plot(analysis, title="S1: web hosting company"))
    print()

    # The /32 prefixes and their popularity (A segment).
    table = analysis.segment_table()
    print("discovered /32 prefixes:")
    for code, value, frequency in table["A"]:
        print(f"  {code}: {value}  ({100 * frequency:.1f}%)")

    # The addressing variants (B segment).
    print("\naddressing variants selected by bits 32-40 (segment B):")
    for code, value, frequency in table["B"]:
        print(f"  {code}: B={value}  ({100 * frequency:.2f}%)")

    # Condition on the 08 variant and watch the IID collapse.
    mined_b = next(
        m for m in analysis.encoder.mined_segments if m.segment.label == "B"
    )
    code_08 = next(
        v.code for v in mined_b.values if v.low == 0x08 and not v.is_range
    )
    print()
    print(render_browser(
        analysis.browse().click(code_08),
        title="conditioned on B = 08: the structured (non-random) variant",
    ))

    # Spot embedded IPv4 addresses in the 07/05 variant, as §5.2 did.
    b_values = sample.segment_values(9, 10)
    v3_rows = np.nonzero((b_values == 0x07) | (b_values == 0x05))[0][:5]
    print("\nembedded IPv4 in the 07/05 variant (decimal-digit encoding):")
    for row in v3_rows:
        address = sample.addresses()[int(row)]
        print(f"  {address}  low32-as-quad={embedded_ipv4_dotted_quad(address)}")


if __name__ == "__main__":
    main()
