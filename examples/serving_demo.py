#!/usr/bin/env python
"""Drive the hitlist-as-a-service runtime end to end.

Walks the whole :mod:`repro.serve` stack the way a long-running
deployment would use it:

1. fit seed sets into the :class:`ModelRegistry` (name + content
   digest, LRU/TTL bounded);
2. serve several clients' candidate streams concurrently through the
   :class:`HitlistService` facade — each client's stream is warm,
   deterministic, and never repeats a row it has served;
3. membership-check rows against a client's stream;
4. hit the session capacity cap and recover with a rollover;
5. observe the bounded work queue reject requests under overload;
6. read the service's own latency/throughput accounting.

Run:  python examples/serving_demo.py
"""

import threading

import numpy as np

from repro.core.model import SessionCapacityError
from repro.datasets import build_network
from repro.serve import HitlistService, ServiceOverloadedError


def main():
    s1 = build_network("S1")
    r1 = build_network("R1")
    rng = np.random.default_rng(0)

    with HitlistService(workers=2, max_pending=32) as service:
        # -- 1. registry: two models, keyed by name + content digest --
        entry_s1 = service.fit("S1", s1.population(0).sample(1000, rng))
        entry_r1 = service.fit("R1", r1.population(0).sample(1000, rng))
        print(f"registered S1: digest {entry_s1.digest[:12]}…")
        print(f"registered R1: digest {entry_r1.digest[:12]}…")

        # -- 2. concurrent clients, one warm stream each ---------------
        # Four clients pull from two models at once; the facade's
        # worker pool interleaves the requests, but each client's
        # stream is serialized and deterministic: client "a" gets the
        # same rows it would get from a direct AddressModel.session()
        # loop with the same seed.
        def pull(model, client, batches, out):
            rows = []
            for _ in range(batches):
                rows.append(service.generate(model, client, 500))
            out[client] = rows

        streams = {}
        threads = [
            threading.Thread(target=pull, args=(model, client, 3, streams))
            for model, client in [
                ("S1", "alice"), ("S1", "bob"), ("R1", "carol"), ("R1", "dave"),
            ]
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(len(b) for rows in streams.values() for b in rows)
        print(f"\nserved {total} rows to {len(streams)} concurrent clients")

        # No stream repeats itself: alice's three batches are disjoint,
        # and every row she was served is now "seen" for her…
        alice = streams["alice"]
        seen = service.membership("S1", "alice", alice[0])
        print(f"alice batch 1 re-checked: {int(seen.sum())}/{len(alice[0])} seen")
        # …but bob's stream is independent — same model, same seed,
        # so his first batch equals hers (deterministic serving), while
        # his session's state is his own.
        print(f"bob's first batch == alice's: "
              f"{np.array_equal(alice[0].matrix, streams['bob'][0].matrix)}")

        # -- 3. capacity caps are enforced, rollover recovers ----------
        service.open_session("S1", "capped", capacity=2000)
        service.generate("S1", "capped", 900)
        try:
            service.generate("S1", "capped", 900)
        except SessionCapacityError as exc:
            print(f"\ncapacity cap enforced: {exc}")
        service.rollover_session("S1", "capped")
        print(f"after rollover: {len(service.generate('S1', 'capped', 900))} "
              "rows served from a fresh stream")

        # -- 4. backpressure: the bounded queue sheds load -------------
        with HitlistService(
            sessions=service.sessions, workers=1, max_pending=2
        ) as tiny:
            futures, rejected = [], 0
            for _ in range(40):
                try:
                    futures.append(
                        tiny.generate_async("S1", "alice", 2000)
                    )
                except ServiceOverloadedError:
                    rejected += 1
            for f in futures:
                f.result()
            print(f"\ntiny service (queue depth 2): accepted "
                  f"{len(futures)}, rejected {rejected} of 40 requests")

        # -- 5. the service's own accounting ---------------------------
        stats = service.stats()
        generate = stats["kinds"]["generate"]
        print(f"\nservice stats: {stats['completed']} requests completed, "
              f"{stats['requests_per_second']:.1f} requests/s")
        print(f"generate latency: p50={generate['p50_ms']:.2f}ms "
              f"p99={generate['p99_ms']:.2f}ms")


if __name__ == "__main__":
    main()
