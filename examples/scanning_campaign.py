#!/usr/bin/env python
"""A §5.5 scanning campaign: train on 1K router IPs, discover new /64s.

Bootstraps active address discovery from a small seed set, exactly the
scenario the paper motivates: "one has a limited set of existing IPs
from the target network and wishes to use them to bootstrap active
address discovery."

Run:  python examples/scanning_campaign.py
"""

import numpy as np

from repro import EntropyIP
from repro.datasets import build_network
from repro.scan import SimulatedResponder
from repro.scan.generator import prefixes64

TRAIN_SIZE = 1000
N_CANDIDATES = 20_000


def main():
    network = build_network("R1")
    population = network.population(seed=0)
    print(f"target network: {network.description}")
    print(f"ground-truth population: {len(population)} router interfaces")

    # The seed hitlist: 1K addresses gleaned by "standard means".
    rng = np.random.default_rng(7)
    train = population.sample(TRAIN_SIZE, rng)

    # Fit and inspect.
    analysis = EntropyIP.fit(train)
    print(f"\n{analysis.describe()}")

    # Generate candidates not seen in training.
    candidates = analysis.model.generate(
        N_CANDIDATES, rng, exclude=set(train.to_ints())
    )
    print(f"\ngenerated {len(candidates)} candidate targets, e.g.:")
    from repro.ipv6.address import IPv6Address
    for value in candidates[:5]:
        print(f"  {IPv6Address(value)}")

    # "Scan" them against the simulated responder.
    responder = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=0,
    )
    alive = responder.ping_many(candidates)
    with_rdns = responder.rdns_many(candidates)
    overall = set(alive) | set(with_rdns)

    train_64s = prefixes64(train.to_ints(), 32)
    new_64s = prefixes64(sorted(overall), 32) - train_64s

    print(f"\nping responses:      {len(alive)}")
    print(f"rDNS records:        {len(with_rdns)}")
    print(f"overall active:      {len(overall)} "
          f"({100 * len(overall) / len(candidates):.2f}% success)")
    print(f"new /64 prefixes:    {len(new_64s)} "
          f"(not present among the {len(train_64s)} training /64s)")
    print("\n=> from 1K seeds the model discovered "
          f"{len(overall)} active addresses in {len(new_64s)} unseen subnets.")


if __name__ == "__main__":
    main()
