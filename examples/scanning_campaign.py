#!/usr/bin/env python
"""A §5.5 scanning campaign: train on 1K router IPs, discover new /64s.

Bootstraps active address discovery from a small seed set, exactly the
scenario the paper motivates: "one has a limited set of existing IPs
from the target network and wishes to use them to bootstrap active
address discovery."

Run:  python examples/scanning_campaign.py
"""

import numpy as np

from repro.datasets import build_network
from repro.scan import SimulatedResponder
from repro.scan.generator import prefixes64
from repro.serve import HitlistService

TRAIN_SIZE = 1000
N_CANDIDATES = 20_000


def main():
    network = build_network("R1")
    population = network.population(seed=0)
    print(f"target network: {network.description}")
    print(f"ground-truth population: {len(population)} router interfaces")

    # The seed hitlist: 1K addresses gleaned by "standard means".
    rng = np.random.default_rng(7)
    train = population.sample(TRAIN_SIZE, rng)

    # Fit through the serving runtime and inspect.
    service = HitlistService()
    analysis = service.fit("R1", train).analysis
    print(f"\n{analysis.describe()}")

    # Generate candidates not seen in training: the service's warm
    # per-client session excludes the training set by default and
    # retires every served row, so a second request would continue the
    # stream instead of repeating these candidates.
    candidate_set = service.generate("R1", "survey", N_CANDIDATES, seed=7)
    candidates = candidate_set.to_ints()
    print(f"\ngenerated {len(candidates)} candidate targets, e.g.:")
    for address in candidate_set.addresses()[:5]:
        print(f"  {address}")

    # "Scan" them against the simulated responder.
    responder = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=0,
    )
    alive = responder.ping_many(candidates)
    with_rdns = responder.rdns_many(candidates)
    overall = set(alive) | set(with_rdns)

    train_64s = prefixes64(train.to_ints(), 32)
    new_64s = prefixes64(sorted(overall), 32) - train_64s

    print(f"\nping responses:      {len(alive)}")
    print(f"rDNS records:        {len(with_rdns)}")
    print(f"overall active:      {len(overall)} "
          f"({100 * len(overall) / len(candidates):.2f}% success)")
    print(f"new /64 prefixes:    {len(new_64s)} "
          f"(not present among the {len(train_64s)} training /64s)")
    print("\n=> from 1K seeds the model discovered "
          f"{len(overall)} active addresses in {len(new_64s)} unseen subnets.")
    service.close()


if __name__ == "__main__":
    main()
