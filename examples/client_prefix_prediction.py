#!/usr/bin/env python
"""Predict client /64 prefixes (§5.6, Table 6).

Client IIDs are pseudo-random privacy addresses, so guessing full
client addresses is pointless.  Instead, constrain Entropy/IP to the
top 64 bits (width=16) and predict which /64 prefixes are active.

Run:  python examples/client_prefix_prediction.py
"""

import numpy as np

from repro.datasets import build_network
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet
from repro.scan.generator import prefixes64
from repro.serve import HitlistService

TRAIN_SIZE = 1000
N_CANDIDATES = 20_000


def main():
    network = build_network("C5")
    population = network.population(seed=0)
    week_prefixes = sorted(prefixes64(population.to_ints(), 32))
    print(f"target network: {network.description}")
    print(f"active /64 prefixes over the week: {len(week_prefixes)}")

    # One service hosts both models: the full-width fit (to show why
    # full-address scanning is hopeless here) and the width-16
    # prefix-mode fit, registered under different names.
    service = HitlistService()

    # The per-nybble entropy of the IID is ~1 everywhere.
    full_analysis = service.fit(
        "C5-full", population.sample(3000, np.random.default_rng(0))
    ).analysis
    iid_entropy = full_analysis.entropy()[16:]
    print(f"median IID nybble entropy: {np.median(iid_entropy):.2f} "
          "(pseudo-random privacy addresses)")

    # Train on 1K /64 prefixes instead.
    rng = np.random.default_rng(9)
    train_values = [
        week_prefixes[i]
        for i in rng.choice(len(week_prefixes), TRAIN_SIZE, replace=False)
    ]
    train = AddressSet.from_ints(train_values, width=16, already_truncated=True)
    analysis = service.fit("C5-prefixes", train, width=16).analysis
    print(f"\nprefix-mode analysis: {analysis.describe()}")

    # Generate candidate prefixes through the served session (training
    # prefixes excluded by default) and score them.
    candidates = service.generate(
        "C5-prefixes", "predictor", N_CANDIDATES, seed=9
    ).to_ints()
    active = set(week_prefixes)
    hits = [c for c in candidates if c in active]
    print(f"\ncandidate /64 prefixes generated: {len(candidates)}")
    print(f"active among them:                {len(hits)} "
          f"({100 * len(hits) / len(candidates):.1f}%)")
    print("\nexample predicted-and-active prefixes:")
    for value in hits[:5]:
        print(f"  {IPv6Address(value << 64)}/64")
    service.close()


if __name__ == "__main__":
    main()
