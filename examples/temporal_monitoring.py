#!/usr/bin/env python
"""Temporal structure monitoring (§6 future work, implemented).

Simulates weekly snapshots of a client network that renumbers its /64
pools midway through the series, runs the change detector, and shows
the per-segment drift report — the "detect changes in network
deployments" use case the paper sketches.

Run:  python examples/temporal_monitoring.py
"""

import numpy as np

from repro.core.temporal import compare_snapshots, detect_changes
from repro.ipv6.sets import AddressSet
from repro.serve import ModelRegistry
from repro.viz import render_snapshot_delta


def weekly_snapshot(week, renumbered=False, n=2500):
    """One week of observed client addresses.

    Before the event, /64s come from pool block 0x0004xxxx; after
    renumbering they move to 0x0100xxxx (a new allocation).
    """
    rng = np.random.default_rng(100 + week)
    block = 0x01000000 if renumbered else 0x00040000
    values = []
    for _ in range(n):
        net = block | int(rng.integers(0, 0x4000))
        iid = int(rng.integers(0, 1 << 62)) << 2 | 1
        values.append((0x2A01E340 << 96) | (net << 64) | iid)
    return AddressSet.from_ints(values)


def main():
    # Six weekly snapshots; the operator renumbers before week 4.
    series = [weekly_snapshot(w, renumbered=(w >= 4)) for w in range(1, 7)]
    print(f"monitoring {len(series)} weekly snapshots "
          f"({len(series[0])} addresses each)")

    changes = detect_changes(series, threshold=0.15)
    if not changes:
        print("no structural changes detected")
        return
    for change in changes:
        print(f"\n*** structural change detected at snapshot "
              f"{change.index + 1} (score {change.score:.2f}) ***")

    # Zoom into the detected change with a full delta report.  Both
    # weekly fits register under the same name in the runtime's model
    # registry: re-registering different content bumps the version —
    # exactly how a monitoring service would track the renumbering.
    registry = ModelRegistry()
    event = changes[0].index
    before = registry.fit("clients", series[event - 1]).analysis
    after_entry = registry.fit("clients", series[event])
    print(f"\nmodel 'clients' replaced: now version {after_entry.version}, "
          f"digest {after_entry.digest[:12]}…")
    delta = compare_snapshots(before, after_entry.analysis)
    print()
    print(render_snapshot_delta(delta))


if __name__ == "__main__":
    main()
