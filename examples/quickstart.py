#!/usr/bin/env python
"""Quickstart: analyze an IPv6 address set and explore its structure.

Runs the full Entropy/IP pipeline (entropy → segmentation → mining →
Bayesian network) on a synthetic client network, prints the entropy/ACR
plot and the mined segment table, conditions the probability browser on
a value (the Fig. 1 interaction), and generates candidate addresses.

Model and session construction go through the serving runtime
(:mod:`repro.serve`) — the same registry + warm-session path the
`entropy-ip serve` facade uses, with output bit-identical to the
direct `EntropyIP.fit` + `generate_addresses` calls.

Run:  python examples/quickstart.py
"""

from repro.datasets import build_network
from repro.serve import HitlistService
from repro.viz import render_acr_entropy_plot, render_browser, render_mining_table

def main():
    # 1. Get a set of active addresses.  Here: a synthetic model of the
    #    paper's Fig. 1 Japanese telco; in practice, read your own list
    #    of address strings and pass it straight to service.fit().
    network = build_network("JP")
    addresses = network.sample(4000, seed=0)
    print(f"training on {len(addresses)} addresses, e.g.:")
    for address in addresses.addresses()[:3]:
        print(f"  {address}")

    # 2. Fit the full pipeline through the runtime: the fitted model
    #    lands in a registry entry (keyed by name + content digest)
    #    ready to serve many clients; `entry.analysis` is the same
    #    EntropyIP object a direct fit would return.
    service = HitlistService()
    entry = service.fit("JP", addresses)
    analysis = entry.analysis
    print()
    print(analysis.describe())
    print(f"registered as {entry.name!r}, digest {entry.digest[:12]}…")

    # 3. Explore: entropy/ACR plot and the per-segment value table.
    print()
    print(render_acr_entropy_plot(analysis, title="entropy vs 4-bit ACR"))
    print()
    print(render_mining_table(analysis))

    # 4. Condition the browser on a mined value (click a box in Fig. 1).
    wide = max(
        analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 17) * m.segment.nybble_count,
    )
    zero_code = next(
        v.code for v in wide.values if v.low == 0 and not v.is_range
    )
    print()
    print(render_browser(
        analysis.browse().click(zero_code),
        title=f"browser conditioned on {zero_code} (the zeros block)",
    ))

    # 5. Generate candidate targets the model believes are plausible.
    #    The service owns a warm per-client session (training excluded
    #    by default), so a follow-up request continues the stream where
    #    this one left off instead of repeating candidates.
    candidates = service.generate("JP", "quickstart", 10, seed=1)
    print("\n10 generated candidate addresses (not seen in training):")
    for candidate in candidates.addresses():
        print(f"  {candidate}")
    service.close()


if __name__ == "__main__":
    main()
