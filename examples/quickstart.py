#!/usr/bin/env python
"""Quickstart: analyze an IPv6 address set and explore its structure.

Runs the full Entropy/IP pipeline (entropy → segmentation → mining →
Bayesian network) on a synthetic client network, prints the entropy/ACR
plot and the mined segment table, conditions the probability browser on
a value (the Fig. 1 interaction), and generates candidate addresses.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EntropyIP
from repro.datasets import build_network
from repro.viz import render_acr_entropy_plot, render_browser, render_mining_table

def main():
    # 1. Get a set of active addresses.  Here: a synthetic model of the
    #    paper's Fig. 1 Japanese telco; in practice, read your own list
    #    of address strings and pass it straight to EntropyIP.fit().
    network = build_network("JP")
    addresses = network.sample(4000, seed=0)
    print(f"training on {len(addresses)} addresses, e.g.:")
    for address in addresses.addresses()[:3]:
        print(f"  {address}")

    # 2. Fit the full pipeline.
    analysis = EntropyIP.fit(addresses)
    print()
    print(analysis.describe())

    # 3. Explore: entropy/ACR plot and the per-segment value table.
    print()
    print(render_acr_entropy_plot(analysis, title="entropy vs 4-bit ACR"))
    print()
    print(render_mining_table(analysis))

    # 4. Condition the browser on a mined value (click a box in Fig. 1).
    wide = max(
        analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 17) * m.segment.nybble_count,
    )
    zero_code = next(
        v.code for v in wide.values if v.low == 0 and not v.is_range
    )
    print()
    print(render_browser(
        analysis.browse().click(zero_code),
        title=f"browser conditioned on {zero_code} (the zeros block)",
    ))

    # 5. Generate candidate targets the model believes are plausible.
    candidates = analysis.generate_addresses(10, np.random.default_rng(1))
    print("\n10 generated candidate addresses (not seen in training):")
    for candidate in candidates:
        print(f"  {candidate}")


if __name__ == "__main__":
    main()
