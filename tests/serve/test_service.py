"""HitlistService: concurrent serving, backpressure, bit-identity.

The load-bearing assertion of the serving runtime: candidate streams
served through the concurrent facade — under interleaved requests from
many client threads — are **bit-identical** to the serial direct
`AddressModel.session()` + `generate_set` sequence for the same (seed,
workers, backend).
"""

import threading

import numpy as np
import pytest

from repro.core.model import SessionCapacityError
from repro.core.pipeline import EntropyIP
from repro.serve import (
    HitlistService,
    ModelRegistry,
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownModelError,
)


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


@pytest.fixture()
def service(analysis):
    registry = ModelRegistry()
    registry.register("m", analysis)
    with HitlistService(registry=registry, workers=4) as svc:
        yield svc


def direct_stream(analysis, exclude, seed, batches, n, workers=None,
                  backend=None):
    """The serial direct-library reference sequence for one client."""
    session = analysis.model.session(exclude=exclude, backend=backend)
    rng = np.random.default_rng(seed)
    return [
        analysis.model.generate_set(
            n, rng, state=session, workers=workers
        ).matrix
        for _ in range(batches)
    ]


class TestThreadedBitIdentity:
    BATCHES = 4
    BATCH_ROWS = 120

    @pytest.mark.parametrize(
        "backend,workers",
        [(None, None), ("sharded64", None), (None, 2)],
        ids=["memory-serial", "sharded64-serial", "memory-workers2"],
    )
    def test_interleaved_streams_match_serial_direct_sequence(
        self, service, analysis, structured_set, backend, workers
    ):
        """Six clients hammer the facade from six threads; every
        client's concatenated stream must equal the serial
        direct-library sequence for its (seed, workers, backend)."""
        clients = [f"c{i}" for i in range(6)]
        served = {}
        errors = []
        barrier = threading.Barrier(len(clients))

        def run(index, client):
            try:
                barrier.wait()  # maximize interleaving
                batches = []
                for _ in range(self.BATCHES):
                    batches.append(
                        service.generate(
                            "m",
                            client,
                            self.BATCH_ROWS,
                            seed=index,
                            backend=backend,
                            workers=workers,
                        ).matrix
                    )
                served[client] = batches
            except BaseException as exc:  # surfaced after join
                errors.append((client, exc))

        threads = [
            threading.Thread(target=run, args=(index, client))
            for index, client in enumerate(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        for index, client in enumerate(clients):
            reference = direct_stream(
                analysis,
                structured_set,
                seed=index,
                batches=self.BATCHES,
                n=self.BATCH_ROWS,
                workers=workers,
                backend=backend,
            )
            for got, want in zip(served[client], reference):
                assert np.array_equal(got, want), (client, backend, workers)

    def test_same_seed_clients_get_identical_streams(self, service):
        a = service.generate("m", "twin-a", 300, seed=42)
        b = service.generate("m", "twin-b", 300, seed=42)
        assert np.array_equal(a.matrix, b.matrix)

    def test_stream_never_repeats_across_requests(self, service):
        first = service.generate("m", "norepeat", 200, seed=1)
        second = service.generate("m", "norepeat", 200, seed=1)
        both = np.vstack([first.packed_rows(), second.packed_rows()])
        assert len(np.unique(both, axis=0)) == len(both)


class TestRequests:
    def test_fit_and_generate_roundtrip(self, structured_set):
        with HitlistService() as svc:
            entry = svc.fit("fresh", structured_set)
            assert entry.version == 1
            batch = svc.generate("fresh", "c", 50)
            assert len(batch) == 50

    def test_membership_request(self, service):
        batch = service.generate("m", "member", 100, seed=2)
        mask = service.membership("m", "member", batch)
        assert bool(mask.all())
        # Rows the stream has never seen (width-32 zeros row is not a
        # plausible candidate of the structured model).
        from repro.ipv6.sets import AddressSet

        unseen = AddressSet.from_ints([0xDEAD], width=32)
        assert not service.membership("m", "member", unseen).any()

    def test_report_request(self, service):
        text = service.report("m", n_candidates=5, seed=0)
        assert "Entropy/IP report: m" in text

    def test_unknown_model_raises_through_future(self, service):
        with pytest.raises(UnknownModelError):
            service.generate("ghost", "c", 10)

    def test_capacity_error_surfaces_through_service(self, service):
        service.open_session(
            "m", "capped", exclude_training=False, capacity=50
        )
        service.generate("m", "capped", 50)
        with pytest.raises(SessionCapacityError):
            service.generate("m", "capped", 1)
        # Rollover gives the client a fresh stream under the same cap.
        service.rollover_session("m", "capped")
        assert len(service.generate("m", "capped", 50)) == 50

    def test_close_session(self, service):
        service.generate("m", "gone", 10)
        assert service.close_session("m", "gone") is True
        assert service.close_session("m", "gone") is False
        # The next generate transparently opens a fresh stream.
        assert len(service.generate("m", "gone", 10)) == 10


class TestBackpressure:
    def test_overload_rejects_synchronously(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        release = threading.Event()
        started = threading.Event()

        def block():
            started.set()
            release.wait()

        with HitlistService(registry=registry, workers=1, max_pending=2) as svc:
            # Jam the single worker, then fill the queue.
            blocker = svc.submit("other", block)
            assert started.wait(timeout=5)  # worker holds it, queue empty
            accepted = []
            with pytest.raises(ServiceOverloadedError):
                for _ in range(10):
                    accepted.append(svc.submit("other", lambda: None))
            assert len(accepted) == 2  # exactly max_pending queued
            assert svc.stats()["rejected"] >= 1
            release.set()
            blocker.result(timeout=5)
            for future in accepted:
                future.result(timeout=5)

    def test_closed_service_rejects(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        svc = HitlistService(registry=registry)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.generate("m", "c", 10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HitlistService(workers=0)
        with pytest.raises(ValueError):
            HitlistService(max_pending=0)


class TestAccounting:
    def test_stats_shape(self, service):
        service.generate("m", "stats", 50, seed=9)
        service.membership("m", "stats", service.sessions.get(
            "m", "stats"
        ).generate(10))
        stats = service.stats()
        assert stats["completed"] >= 2
        assert stats["failed"] == 0
        generate = stats["kinds"]["generate"]
        assert generate["requests"] >= 1
        assert generate["p99_ms"] >= generate["p50_ms"] > 0
        assert stats["requests_per_second"] >= 0
        assert stats["registry"]["models"] == 1
        assert stats["sessions"]["sessions"] >= 1

    def test_failed_requests_counted(self, service):
        with pytest.raises(UnknownModelError):
            service.report("ghost")
        before = service.stats()["failed"]
        with pytest.raises(RuntimeError):
            service.submit("other", self._boom).result()
        assert service.stats()["failed"] == before + 1

    @staticmethod
    def _boom():
        raise RuntimeError("request blew up")


class TestShutdownHygiene:
    """A closed service leaves no worker threads or executor pools."""

    def test_close_shuts_down_session_pools(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        service = HitlistService(registry=registry, workers=4)
        # Sharded draws from several clients spin up session-owned
        # worker pools (one long-lived executor each).
        for client in ("a", "b"):
            service.generate("m", client, 300, seed=3, workers=2)
        pools = [
            pool
            for key in service.sessions.keys()
            for pool in service.sessions.get(*key).session._pools.values()
        ]
        assert pools and any(not pool.closed for pool in pools)
        service.close()
        assert all(pool.closed for pool in pools)

    def test_close_leaves_no_service_threads(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        before = {t for t in threading.enumerate()}
        service = HitlistService(registry=registry, workers=4)
        service.generate("m", "c", 300, seed=3, workers=2)
        service.close()
        leaked = [
            t
            for t in threading.enumerate()
            if t not in before and t.is_alive() and "hitlist" in t.name
        ]
        assert leaked == []

    def test_shared_session_manager_is_not_closed(self, analysis):
        from repro.serve import SessionManager

        registry = ModelRegistry()
        registry.register("m", analysis)
        shared = SessionManager(registry)
        service = HitlistService(registry=registry, sessions=shared)
        service.generate("m", "c", 200, seed=3, workers=2)
        service.close()
        # The shared manager outlives the service: its session is
        # still live (the manager's owner decides when to close it).
        assert shared.get("m", "c").closed is False
        assert shared.close_all() == 1

    def test_evicted_session_releases_pools(self, analysis):
        from repro.serve import SessionManager

        registry = ModelRegistry()
        registry.register("m", analysis)
        manager = SessionManager(registry, capacity=1)
        first = manager.open("m", "a", workers=2)
        first.generate(200)
        pools = list(first.session._pools.values())
        assert pools
        manager.open("m", "b")  # evicts the LRU session "a"
        assert first.closed
        assert all(pool.closed for pool in pools)
