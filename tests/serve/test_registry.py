"""ModelRegistry: name+digest keying, LRU/TTL eviction, versioning."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.serve.registry import (
    ModelDigestMismatch,
    ModelRegistry,
    UnknownModelError,
    model_digest,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


@pytest.fixture(scope="module")
def other_analysis(structured_set, s1_small):
    train = s1_small.population(0).sample(
        500, np.random.default_rng(3)
    )
    return EntropyIP.fit(train)


class TestRegistration:
    def test_fit_registers_and_returns_entry(self, structured_set):
        registry = ModelRegistry()
        entry = registry.fit("m", structured_set)
        assert entry.name == "m"
        assert entry.version == 1
        assert entry.digest == model_digest(entry.analysis)
        assert "m" in registry and len(registry) == 1

    def test_same_digest_reuses_entry(self, analysis):
        registry = ModelRegistry()
        first = registry.register("m", analysis)
        again = registry.register("m", analysis)
        assert again is first
        assert again.version == 1
        assert again.uses == 1  # the re-registration touched it

    def test_different_digest_bumps_version(self, analysis, other_analysis):
        registry = ModelRegistry()
        first = registry.register("m", analysis)
        replaced = registry.register("m", other_analysis)
        assert replaced is not first
        assert replaced.version == 2
        assert replaced.digest != first.digest
        assert len(registry) == 1

    def test_distinct_names_may_share_digest(self, analysis):
        registry = ModelRegistry()
        a = registry.register("a", analysis)
        b = registry.register("b", analysis)
        assert a is not b
        assert a.digest == b.digest
        assert len(registry) == 2

    def test_entry_width_exposed(self, analysis):
        entry = ModelRegistry().register("m", analysis)
        assert entry.width == analysis.encoder.width


class TestDigestPinning:
    def test_get_with_matching_digest(self, analysis):
        registry = ModelRegistry()
        entry = registry.register("m", analysis)
        assert registry.get("m", digest=entry.digest) is entry

    def test_get_with_stale_digest_raises(self, analysis, other_analysis):
        registry = ModelRegistry()
        stale = registry.register("m", analysis).digest
        registry.register("m", other_analysis)
        with pytest.raises(ModelDigestMismatch):
            registry.get("m", digest=stale)

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownModelError):
            ModelRegistry().get("nope")

    def test_unknown_model_error_is_key_error(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("nope")


class TestEviction:
    def test_lru_capacity(self, analysis):
        registry = ModelRegistry(capacity=2)
        registry.register("a", analysis)
        registry.register("b", analysis)
        registry.get("a")  # touch: b becomes the LRU entry
        registry.register("c", analysis)
        assert registry.names() == ["a", "c"]
        assert registry.stats()["evictions"] == 1
        with pytest.raises(UnknownModelError):
            registry.get("b")

    def test_ttl_expiry_with_fake_clock(self, analysis):
        clock = FakeClock()
        registry = ModelRegistry(ttl=10.0, clock=clock)
        registry.register("m", analysis)
        clock.advance(9.0)
        assert registry.get("m").name == "m"  # touch resets idle time
        clock.advance(9.0)
        assert "m" in registry
        clock.advance(11.0)
        assert "m" not in registry
        assert registry.stats()["expirations"] == 1

    def test_prune_counts_expired(self, analysis):
        clock = FakeClock()
        registry = ModelRegistry(ttl=5.0, clock=clock)
        registry.register("a", analysis)
        registry.register("b", analysis)
        clock.advance(6.0)
        assert registry.prune() == 2
        assert len(registry) == 0

    def test_explicit_evict(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        assert registry.evict("m") is True
        assert registry.evict("m") is False

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)
        with pytest.raises(ValueError):
            ModelRegistry(ttl=0.0)


class TestDigestFunction:
    def test_refit_same_data_same_digest(self, structured_set, analysis):
        assert model_digest(EntropyIP.fit(structured_set)) == model_digest(
            analysis
        )

    def test_different_models_different_digest(
        self, analysis, other_analysis
    ):
        assert model_digest(analysis) != model_digest(other_analysis)
