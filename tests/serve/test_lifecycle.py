"""SessionManager/ManagedSession: warm streams, eviction, rollover."""

import numpy as np
import pytest

from repro.core.model import SessionCapacityError
from repro.core.pipeline import EntropyIP
from repro.serve.lifecycle import (
    SessionClosedError,
    SessionManager,
    SessionSpec,
    UnknownSessionError,
)
from repro.serve.registry import ModelRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


@pytest.fixture()
def registry(analysis):
    registry = ModelRegistry()
    registry.register("m", analysis)
    return registry


class TestSessionSpec:
    def test_open_matches_model_session(self, analysis):
        spec = SessionSpec(capacity=500, backend="sharded64")
        session = spec.open(analysis.model)
        assert session.width == analysis.encoder.width
        assert session.capacity == 500

    def test_spec_is_hashable_and_frozen(self):
        spec = SessionSpec(capacity=10)
        with pytest.raises(AttributeError):
            spec.capacity = 20


class TestManagedStream:
    def test_stream_bit_identical_to_direct_library_path(
        self, registry, analysis, structured_set
    ):
        manager = SessionManager(registry)
        managed = manager.open(
            "m", "client", seed=11, exclude_training=True
        )
        served = [managed.generate(200).matrix for _ in range(3)]

        direct_session = analysis.model.session(exclude=structured_set)
        direct_rng = np.random.default_rng(11)
        for batch in served:
            direct = analysis.model.generate_set(
                200, direct_rng, state=direct_session
            )
            assert np.array_equal(batch, direct.matrix)

    def test_exclude_training_excludes_training(
        self, registry, structured_set
    ):
        manager = SessionManager(registry)
        managed = manager.open("m", "c", exclude_training=True)
        assert bool(managed.membership(structured_set).all())

    def test_exclude_and_exclude_training_conflict(self, registry):
        manager = SessionManager(registry)
        with pytest.raises(ValueError):
            manager.open(
                "m", "c", exclude=np.empty((0, 2), np.uint64),
                exclude_training=True,
            )

    def test_membership_tracks_served_rows(self, registry):
        manager = SessionManager(registry)
        managed = manager.open("m", "c", seed=3)
        batch = managed.generate(150)
        assert bool(managed.membership(batch).all())
        assert managed.rows_served == 150
        assert managed.requests == 1

    def test_observe_folds_rows_in(self, registry, structured_set):
        manager = SessionManager(registry)
        managed = manager.open("m", "c")
        fresh = managed.observe(structured_set)
        distinct = len(np.unique(structured_set.packed_rows(), axis=0))
        assert fresh == distinct
        assert bool(managed.membership(structured_set).all())

    def test_capacity_error_surfaces(self, registry):
        manager = SessionManager(registry)
        managed = manager.open("m", "c", capacity=100)
        managed.generate(100)
        with pytest.raises(SessionCapacityError):
            managed.generate(1)

    def test_closed_session_raises(self, registry):
        manager = SessionManager(registry)
        managed = manager.open("m", "c")
        managed.close()
        with pytest.raises(SessionClosedError):
            managed.generate(10)


class TestManagerLifecycle:
    def test_open_is_get_or_create(self, registry):
        manager = SessionManager(registry)
        first = manager.open("m", "c", seed=1)
        again = manager.open("m", "c", seed=999)  # params ignored: live
        assert again is first
        assert again.seed == 1

    def test_get_unknown_raises(self, registry):
        manager = SessionManager(registry)
        with pytest.raises(UnknownSessionError):
            manager.get("m", "nobody")

    def test_close_drops_session(self, registry):
        manager = SessionManager(registry)
        manager.open("m", "c")
        assert manager.close("m", "c") is True
        assert manager.close("m", "c") is False
        with pytest.raises(UnknownSessionError):
            manager.get("m", "c")

    def test_rollover_restarts_stream_identically(self, registry):
        manager = SessionManager(registry)
        managed = manager.open("m", "c", seed=5)
        first_run = managed.generate(100)
        managed.generate(100)
        rolled = manager.rollover("m", "c")
        assert rolled is not managed
        assert managed.closed
        assert rolled.seed == 5 and rolled.spec == managed.spec
        # Fresh state + same seed => the stream restarts from the top.
        assert np.array_equal(rolled.generate(100).matrix, first_run.matrix)

    def test_rollover_unknown_raises(self, registry):
        with pytest.raises(UnknownSessionError):
            SessionManager(registry).rollover("m", "ghost")

    def test_lru_eviction_closes_session(self, registry):
        manager = SessionManager(registry, capacity=2)
        a = manager.open("m", "a")
        manager.open("m", "b")
        manager.get("m", "b")
        manager.open("m", "c")  # evicts a (LRU)
        assert a.closed
        assert manager.stats()["evictions"] == 1
        assert manager.keys() == [("m", "b"), ("m", "c")]

    def test_idle_ttl_closes_sessions(self, registry):
        clock = FakeClock()
        manager = SessionManager(registry, ttl=30.0, clock=clock)
        managed = manager.open("m", "c")
        clock.advance(29.0)
        manager.get("m", "c")  # touch
        clock.advance(29.0)
        assert len(manager) == 1
        clock.advance(31.0)
        assert manager.prune() == 1
        assert len(manager) == 0
        assert managed.closed
        assert manager.stats()["expirations"] == 1

    def test_default_backend_applies(self, registry):
        manager = SessionManager(registry, default_backend="sharded64")
        managed = manager.open("m", "c")
        assert type(managed.session.table).__name__ == "ShardedBucketTable"
        explicit = manager.open("m", "d", backend="memory")
        assert type(explicit.session.table).__name__ == "BucketTable"

    def test_invalid_parameters(self, registry):
        with pytest.raises(ValueError):
            SessionManager(registry, capacity=0)
        with pytest.raises(ValueError):
            SessionManager(registry, ttl=-1.0)
