"""Session checkpoint/restore: a resumed stream is bit-identical.

The acceptance contract of the checkpoint layer: kill a process
holding warm streams, restore from the snapshot, and every subsequent
draw is **bit-identical** to the uninterrupted run — same rows, same
order, same counters.  Digest checks make a restore against the wrong
model (or wrong bytes) fail loudly instead of silently forking the
stream.
"""

import numpy as np
import pytest

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.core.model import GenerationSession
from repro.core.pipeline import EntropyIP
from repro.errors import CheckpointError
from repro.serve import HitlistService, ModelRegistry, SessionManager


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


@pytest.fixture()
def registry(analysis):
    registry = ModelRegistry()
    registry.register("m", analysis)
    return registry


class TestGenerationSessionSnapshot:
    def test_restore_continues_bit_identically(self, analysis):
        model = analysis.model
        with model.session(exclude=analysis.address_set) as session:
            rng = np.random.default_rng(7)
            model.generate_set(150, rng, state=session)
            snap = session.snapshot()
            rng_state = rng.bit_generator.state
            after = model.generate_set(150, rng, state=session).matrix

        restored = GenerationSession.restore(snap)
        try:
            rng2 = np.random.default_rng(0)
            rng2.bit_generator.state = rng_state
            resumed = model.generate_set(150, rng2, state=restored).matrix
        finally:
            restored.close()
        assert np.array_equal(after, resumed)

    def test_restore_across_storage_backends(self, analysis):
        """The snapshot is backend-neutral: state taken on the memory
        backend restores onto sharded64 and continues identically."""
        model = analysis.model
        with model.session(exclude=analysis.address_set) as session:
            rng = np.random.default_rng(3)
            model.generate_set(100, rng, state=session)
            snap = session.snapshot()
            rng_state = rng.bit_generator.state
            after = model.generate_set(100, rng, state=session).matrix

        restored = GenerationSession.restore(snap, backend="sharded64")
        try:
            rng2 = np.random.default_rng(0)
            rng2.bit_generator.state = rng_state
            resumed = model.generate_set(100, rng2, state=restored).matrix
        finally:
            restored.close()
        assert np.array_equal(after, resumed)

    def test_corrupt_words_fail_digest_check(self, analysis):
        model = analysis.model
        with model.session(exclude=analysis.address_set) as session:
            model.generate_set(50, np.random.default_rng(1), state=session)
            snap = session.snapshot()
        snap["words"] = snap["words"].copy()
        snap["words"][0, 0] ^= np.uint64(1)
        with pytest.raises(CheckpointError, match="digest mismatch"):
            GenerationSession.restore(snap)


class TestManagedSessionSnapshot:
    def test_round_trip_through_checkpoint_file(self, registry, tmp_path):
        manager = SessionManager(registry)
        session = manager.open("m", "alice", seed=5, exclude_training=True)
        session.generate(120)
        session.generate(80)
        payload = session.snapshot()
        path = str(tmp_path / "stream.ckpt")
        save_checkpoint(path, "sessions", {"sessions": [payload]})
        after = session.generate(200).matrix
        assert session.requests == 3

        fresh = SessionManager(registry)
        loaded = load_checkpoint(path, kind="sessions")["sessions"][0]
        restored = fresh.restore_session(loaded)
        assert restored.requests == 2
        assert restored.rows_served == 200
        resumed = restored.generate(200).matrix
        assert np.array_equal(after, resumed)
        manager.close_all()
        fresh.close_all()

    def test_restore_replaces_live_session(self, registry):
        manager = SessionManager(registry)
        session = manager.open("m", "alice", seed=5, exclude_training=True)
        session.generate(100)
        payload = session.snapshot()
        after = session.generate(100).matrix
        # A restarted process would have re-opened a fresh (diverged)
        # session under the same key; restore supersedes it.
        manager.close("m", "alice")
        diverged = manager.open("m", "alice", seed=5)
        assert diverged.requests == 0
        restored = manager.restore_session(payload)
        assert manager.get("m", "alice") is restored
        assert np.array_equal(after, restored.generate(100).matrix)
        manager.close_all()

    def test_wrong_model_digest_refuses_restore(self, registry,
                                                structured_set):
        manager = SessionManager(registry)
        session = manager.open("m", "alice", seed=5)
        payload = session.snapshot()
        payload["model_digest"] = "0" * 40
        with pytest.raises(CheckpointError, match="digest"):
            manager.restore_session(payload)
        manager.close_all()

    def test_service_snapshot_all_round_trip(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        with HitlistService(registry=registry) as svc:
            svc.generate("m", "a", 60, seed=1)
            svc.generate("m", "b", 60, seed=2)
            payloads = svc.sessions.snapshot_all()
            after = {
                client: svc.generate("m", client, 90).matrix
                for client in ("a", "b")
            }
        registry2 = ModelRegistry()
        registry2.register("m", analysis)
        with HitlistService(registry=registry2) as svc2:
            for payload in payloads:
                svc2.sessions.restore_session(payload)
            for client in ("a", "b"):
                resumed = svc2.generate("m", client, 90).matrix
                assert np.array_equal(after[client], resumed)
