"""Service-side fault tolerance: deadlines, worker faults, drain, health."""

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.errors import (
    RequestTimeoutError,
    ServiceClosedError,
)
from repro.faults import FaultPlan, active_plan
from repro.serve import HitlistService, ModelRegistry


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


@pytest.fixture()
def service(analysis):
    registry = ModelRegistry()
    registry.register("m", analysis)
    with HitlistService(registry=registry, workers=2) as svc:
        yield svc


def jam_workers(svc, count):
    """Occupy ``count`` workers with blocking requests; returns the
    release event and the blocker futures."""
    release = threading.Event()
    running = threading.Semaphore(0)

    def block():
        running.release()
        release.wait(timeout=10)
        return "done"

    futures = [svc.submit("other", block) for _ in range(count)]
    for _ in range(count):
        assert running.acquire(timeout=5)
    return release, futures


class TestDeadlines:
    def test_expired_deadline_sheds_with_typed_error(self, service):
        release, blockers = jam_workers(service, 2)
        try:
            late = service.submit("membership", lambda: "ran", deadline=0.0)
            time.sleep(0.01)
        finally:
            release.set()
        with pytest.raises(RequestTimeoutError, match="deadline expired"):
            late.result(timeout=5)
        for blocker in blockers:
            assert blocker.result(timeout=5) == "done"
        stats = service.stats()
        assert stats["timeouts"] == 1
        assert stats["kinds"]["membership"]["timeouts"] == 1
        # A shed request never counts as completed work.
        assert stats["kinds"]["membership"]["requests"] == 0

    def test_generous_deadline_completes_normally(self, service):
        future = service.submit("other", lambda: 41 + 1, deadline=60.0)
        assert future.result(timeout=5) == 42
        assert service.stats()["timeouts"] == 0

    def test_negative_deadline_rejected_at_submit(self, service):
        with pytest.raises(ValueError, match="deadline must be non-negative"):
            service.submit("other", lambda: None, deadline=-1.0)

    def test_generate_after_timeouts_still_bit_identical(self, service,
                                                         analysis):
        """Shed requests never advance any stream's RNG."""
        release, blockers = jam_workers(service, 2)
        try:
            shed = service.submit("generate", lambda: None, deadline=0.0)
            time.sleep(0.01)
        finally:
            release.set()
        with pytest.raises(RequestTimeoutError):
            shed.result(timeout=5)
        for blocker in blockers:
            blocker.result(timeout=5)
        served = service.generate("m", "a", 50, seed=3).matrix
        session = analysis.model.session(
            exclude=analysis.address_set
        )
        direct = analysis.model.generate_set(
            50, np.random.default_rng(3), state=session
        ).matrix
        assert np.array_equal(served, direct)


class TestWorkerFaultRetry:
    def test_transient_fault_requeues_and_succeeds(self, service):
        with FaultPlan.parse("service.worker@1:raise=RuntimeError").armed():
            future = service.submit("other", lambda: "survived")
            assert future.result(timeout=5) == "survived"
        stats = service.stats()
        assert stats["retries"] == 1
        assert stats["kinds"]["other"]["retries"] == 1
        assert stats["kinds"]["other"]["requests"] == 1

    def test_persistent_fault_exhausts_retries(self, service):
        plan = FaultPlan.parse(";".join(
            f"service.worker@{i}:raise=RuntimeError" for i in range(1, 5)
        ))
        with plan.armed():
            future = service.submit("other", lambda: "never runs")
            with pytest.raises(RuntimeError, match="injected fault"):
                future.result(timeout=5)
        stats = service.stats()
        assert stats["retries"] == 4
        assert stats["failed"] == 1

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_shutdown_signal_not_swallowed_into_future(self, analysis):
        """A worker hit by KeyboardInterrupt dies (the signal is
        re-raised), and the waiter gets a typed ServiceClosedError
        instead of the swallowed signal."""
        registry = ModelRegistry()
        registry.register("m", analysis)
        svc = HitlistService(registry=registry, workers=2)
        try:
            def interrupt():
                raise KeyboardInterrupt

            future = svc.submit("other", interrupt)
            with pytest.raises(ServiceClosedError,
                               match="KeyboardInterrupt"):
                future.result(timeout=5)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if sum(t.is_alive() for t in svc._threads) == 1:
                    break
                time.sleep(0.01)
            assert sum(t.is_alive() for t in svc._threads) == 1
            # The surviving worker keeps serving.
            assert svc.submit("other", lambda: "ok").result(timeout=5) == "ok"
        finally:
            svc.close()


class TestCloseDrain:
    def test_clean_close_reports_drained(self, service):
        assert service.close(wait=True, timeout=5.0) is True

    def test_wedged_request_times_out_drain(self, analysis):
        registry = ModelRegistry()
        registry.register("m", analysis)
        svc = HitlistService(registry=registry, workers=1)
        release = threading.Event()
        started = threading.Event()

        def wedge():
            started.set()
            release.wait(timeout=30)

        svc.submit("other", wedge)
        assert started.wait(timeout=5)
        try:
            assert svc.close(wait=True, timeout=0.2) is False
        finally:
            release.set()

    def test_close_without_wait_never_blocks(self, service):
        started = time.monotonic()
        service.close(wait=False)
        assert time.monotonic() - started < 1.0


class TestHealth:
    def test_health_shape(self, service):
        if active_plan() is not None:
            pytest.skip("disarmed-baseline test: an external fault plan "
                        "is armed (CI fault-injection leg)")
        service.generate("m", "a", 20)
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["pending"] == 0
        assert health["max_pending"] == 64
        assert health["timeouts"] == 0
        assert health["shed"] == 0
        assert health["retries"] == 0
        assert health["exec"] == {"retries": 0, "degradations": 0}
        assert health["models"] == {"m": 1}

    def test_health_reflects_timeouts_and_closure(self, service):
        release, blockers = jam_workers(service, 2)
        try:
            late = service.submit("other", lambda: None, deadline=0.0)
            time.sleep(0.01)
        finally:
            release.set()
        with pytest.raises(RequestTimeoutError):
            late.result(timeout=5)
        for blocker in blockers:
            blocker.result(timeout=5)
        assert service.health()["timeouts"] == 1
        service.close()
        assert service.health()["status"] == "closed"
