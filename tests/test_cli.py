"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def address_file(tmp_path, structured_set):
    path = tmp_path / "addresses.txt"
    lines = [a.compressed() for a in structured_set.sample(
        400, __import__("numpy").random.default_rng(0)
    ).addresses()]
    path.write_text("# sample\n" + "\n".join(lines) + "\n")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(["analyze", "f.txt", "--width", "16"])
        assert args.file == "f.txt" and args.width == 16


class TestCommands:
    def test_analyze(self, address_file, capsys):
        assert main(["analyze", address_file]) == 0
        out = capsys.readouterr().out
        assert "H_S=" in out
        assert "Seg." in out
        assert "Bayesian network" in out

    def test_generate(self, address_file, capsys):
        assert main(["generate", address_file, "--count", "20"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 20
        assert all(":" in line for line in out)

    def test_generate_deterministic(self, address_file, capsys):
        main(["generate", address_file, "--count", "5", "--seed", "9"])
        first = capsys.readouterr().out
        main(["generate", address_file, "--count", "5", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_dataset(self, capsys):
        assert main(["dataset", "R5", "--count", "50"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 50

    def test_dataset_unknown(self):
        with pytest.raises(KeyError):
            main(["dataset", "S9"])

    def test_scan_small(self, capsys):
        assert main([
            "scan", "R5", "--train", "200", "--count", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "success" in out

    def test_analyze_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("2001:db8::1\n2001:db8::2\n" * 30)
        )
        assert main(["analyze", "-"]) == 0
        assert "H_S=" in capsys.readouterr().out


class TestExtensionCommands:
    def test_mi(self, address_file, capsys):
        assert main(["mi", address_file]) == 0
        out = capsys.readouterr().out
        assert "mutual information" in out

    def test_compare_stable(self, address_file, capsys):
        assert main(["compare", address_file, address_file]) == 0
        out = capsys.readouterr().out
        assert "temporal snapshot comparison" in out
        assert "RENUMBERING" not in out

    def test_report(self, address_file, capsys):
        assert main(["report", address_file, "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "## Bayesian network" in out
        assert "## Generated candidate targets" in out
