"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def address_file(tmp_path, structured_set):
    path = tmp_path / "addresses.txt"
    lines = [a.compressed() for a in structured_set.sample(
        400, __import__("numpy").random.default_rng(0)
    ).addresses()]
    path.write_text("# sample\n" + "\n".join(lines) + "\n")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(["analyze", "f.txt", "--width", "16"])
        assert args.file == "f.txt" and args.width == 16


class TestCommands:
    def test_analyze(self, address_file, capsys):
        assert main(["analyze", address_file]) == 0
        out = capsys.readouterr().out
        assert "H_S=" in out
        assert "Seg." in out
        assert "Bayesian network" in out

    def test_generate(self, address_file, capsys):
        assert main(["generate", address_file, "--count", "20"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 20
        assert all(":" in line for line in out)

    def test_generate_deterministic(self, address_file, capsys):
        main(["generate", address_file, "--count", "5", "--seed", "9"])
        first = capsys.readouterr().out
        main(["generate", address_file, "--count", "5", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_dataset(self, capsys):
        assert main(["dataset", "R5", "--count", "50"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 50

    def test_dataset_unknown(self):
        with pytest.raises(KeyError):
            main(["dataset", "S9"])

    def test_scan_small(self, capsys):
        assert main([
            "scan", "R5", "--train", "200", "--count", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "success" in out

    def test_analyze_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("2001:db8::1\n2001:db8::2\n" * 30)
        )
        assert main(["analyze", "-"]) == 0
        assert "H_S=" in capsys.readouterr().out

    def test_generate_backend_flag_output_identical(
        self, address_file, capsys
    ):
        main(["generate", address_file, "--count", "15", "--seed", "4"])
        default = capsys.readouterr().out
        main(["generate", address_file, "--count", "15", "--seed", "4",
              "--backend", "sharded64"])
        sharded = capsys.readouterr().out
        assert default == sharded

    def test_generate_matches_direct_library_path(
        self, address_file, capsys
    ):
        """The service-routed CLI serves the same rows as a direct
        EntropyIP.fit + generate_addresses call."""
        import numpy as np

        from repro.cli import _read_addresses
        from repro.core.pipeline import EntropyIP

        main(["generate", address_file, "--count", "25", "--seed", "8"])
        served = capsys.readouterr().out.strip().splitlines()
        analysis = EntropyIP.fit(_read_addresses(address_file), width=32)
        direct = [
            a.compressed()
            for a in analysis.generate_addresses(
                25, np.random.default_rng(8)
            )
        ]
        assert served == direct

    def test_generate_rejects_unknown_backend(self, address_file):
        with pytest.raises(SystemExit):
            main(["generate", address_file, "--backend", "mmap"])

    def test_scan_backend_flag(self, capsys):
        assert main([
            "scan", "R5", "--train", "200", "--count", "500",
        ]) == 0
        default = capsys.readouterr().out
        assert main([
            "scan", "R5", "--train", "200", "--count", "500",
            "--backend", "sharded64",
        ]) == 0
        assert capsys.readouterr().out == default


class TestServeCommand:
    def test_synthetic_load(self, address_file, capsys):
        assert main([
            "serve", address_file, "--requests", "6", "--clients", "2",
            "--count", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 6 requests x 50 rows" in out
        assert "requests/s=" in out and "p99=" in out

    def test_line_protocol(self, address_file, capsys, monkeypatch):
        import io

        script = "gen alice 4\nmember alice ::1\nstats\nquit\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", address_file, "--name", "m"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert all(":" in line for line in lines[:4])  # 4 candidates
        assert "::1 new" in out
        assert '"completed"' in out

    def test_line_protocol_gen_matches_service_stream(
        self, address_file, capsys, monkeypatch
    ):
        """Protocol-served candidates equal the library service path."""
        import io

        from repro.cli import _read_addresses
        from repro.serve import HitlistService

        monkeypatch.setattr("sys.stdin", io.StringIO("gen a 3\ngen a 3\n"))
        assert main(["serve", address_file, "--name", "m"]) == 0
        served = capsys.readouterr().out.strip().splitlines()
        with HitlistService() as svc:
            svc.fit("m", _read_addresses(address_file), width=32)
            direct = [
                a.compressed()
                for _ in range(2)
                for a in svc.generate("m", "a", 3).addresses()
            ]
        assert served == direct

    def test_line_protocol_errors_do_not_kill_loop(
        self, address_file, capsys, monkeypatch
    ):
        import io

        script = "member ghost ::1\nbogus request\ngen ok 2\nquit\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", address_file, "--name", "m"]) == 0
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert len(captured.out.strip().splitlines()) == 2

    def test_line_protocol_ingest_verb(self, address_file, capsys, monkeypatch):
        import io

        script = "ingest 2001:db8::1 2001:db8::2\nstats\nquit\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", address_file, "--name", "m"]) == 0
        out = capsys.readouterr().out
        assert "ingested 2 rows, drift" in out
        assert '"ingest"' in out  # pipeline counters in the stats dump

    def test_line_protocol_health_verb(self, address_file, capsys,
                                       monkeypatch):
        import io
        import json

        monkeypatch.setattr("sys.stdin", io.StringIO("health\nquit\n"))
        assert main(["serve", address_file, "--name", "m"]) == 0
        health = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert health["status"] == "ok"
        assert health["models"] == {"m": 1}
        assert health["timeouts"] == 0
        assert "pending" in health and "exec" in health

    def test_line_protocol_survives_unforeseen_errors(
        self, address_file, capsys, monkeypatch
    ):
        """Any exception inside a request — not just the typed ones —
        yields an error line and the loop keeps serving."""
        import io

        script = (
            "gen alice notanumber\n"   # ValueError from int()
            "member alice zzzz\n"      # malformed address tokens
            "checkpoint\n"             # no --checkpoint-dir configured
            "gen alice 2\n"
            "quit\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", address_file, "--name", "m"]) == 0
        captured = capsys.readouterr()
        assert captured.err.count("error:") == 3
        assert len(captured.out.strip().splitlines()) == 2

    def test_checkpoint_dir_resumes_streams_bit_identically(
        self, address_file, capsys, monkeypatch, tmp_path
    ):
        import io

        ckpt = str(tmp_path / "ckpt")
        # Uninterrupted reference: three batches in one process.
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("gen a 3\ngen a 3\ngen a 3\nquit\n")
        )
        assert main(["serve", address_file, "--name", "m"]) == 0
        reference = capsys.readouterr().out.strip().splitlines()
        # Two batches, checkpoint on exit...
        monkeypatch.setattr("sys.stdin", io.StringIO("gen a 3\ngen a 3\nquit\n"))
        assert main(["serve", address_file, "--name", "m",
                     "--checkpoint-dir", ckpt]) == 0
        first = capsys.readouterr().out.strip().splitlines()
        # ...then a new process restores and serves the third batch.
        monkeypatch.setattr("sys.stdin", io.StringIO("gen a 3\nquit\n"))
        assert main(["serve", address_file, "--name", "m",
                     "--checkpoint-dir", ckpt]) == 0
        resumed = capsys.readouterr()
        assert "restored 1 checkpointed stream(s)" in resumed.err
        assert first + resumed.out.strip().splitlines() == reference

    def test_checkpoint_verb_writes_on_demand(
        self, address_file, capsys, monkeypatch, tmp_path
    ):
        import io
        import os

        ckpt = str(tmp_path / "ckpt")
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("gen a 2\ncheckpoint\nquit\n")
        )
        assert main(["serve", address_file, "--name", "m",
                     "--checkpoint-dir", ckpt]) == 0
        out = capsys.readouterr().out
        assert "checkpointed to" in out
        assert os.path.exists(os.path.join(ckpt, "sessions.ckpt"))


class TestIngestCommand:
    def test_ingest_args(self):
        args = build_parser().parse_args(
            ["ingest", "S1", "--threshold", "0.07", "--renumber-at", "2"]
        )
        assert args.name == "S1"
        assert args.threshold == 0.07
        assert args.renumber_at == 2

    def test_quiet_feed_never_refits(self, capsys):
        assert main([
            "ingest", "S1", "--snapshots", "3", "--sample-size", "300",
            "--batches", "2", "--churn", "0.1", "--threshold", "0.9",
            "--count", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 refits" in out
        assert "model version 1 " in out

    def test_renumber_event_triggers_refit(self, capsys):
        assert main([
            "ingest", "S1", "--snapshots", "4", "--sample-size", "500",
            "--batches", "3", "--renumber-at", "2", "--threshold", "0.05",
            "--count", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "refit in" in out  # at least one drift-triggered refit
        assert "0 refits" not in out
        assert "0 repeats" in out  # monitor stream never repeated a row

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_killed_feed_resumes_bit_identically(self, capsys, tmp_path):
        """Kill the replay mid-feed (deterministic injected shutdown),
        then resume from the per-batch checkpoint: the remaining
        batches score and refit exactly as the uninterrupted run."""
        from repro.errors import ServiceClosedError
        from repro.faults import FaultPlan

        ckpt = str(tmp_path / "feed.ckpt")
        base = [
            "ingest", "S1", "--snapshots", "3", "--sample-size", "400",
            "--batches", "2", "--renumber-at", "2", "--threshold", "0.05",
            "--count", "30",
        ]
        assert main(base) == 0
        reference = capsys.readouterr().out.strip().splitlines()

        # service.worker hits: 1 = fit, 2 = the monitor draw, 3 = the
        # first ingest batch, 4 = the second — the one we kill.
        plan = FaultPlan.parse("service.worker@4:raise=SystemExit")
        with plan.armed():
            with pytest.raises(ServiceClosedError):
                main(base + ["--checkpoint", ckpt])
        assert plan.fired() == 1
        capsys.readouterr()

        assert main(base + ["--checkpoint", ckpt, "--resume", ckpt]) == 0
        resumed = capsys.readouterr().out.strip().splitlines()
        assert resumed[0].startswith("resumed from")
        assert "1 batches (200 rows) already ingested" in resumed[0]

        def drift_lines(lines):
            # Refit wall-clock varies run to run; everything before it
            # (rows, drift score, batch coordinates) must not.
            return [
                line.split(", refit")[0]
                for line in lines
                if line.startswith("snapshot ")
            ]

        assert drift_lines(resumed) == drift_lines(reference)[1:]
        ref_final = next(l for l in reference if l.startswith("ingested "))
        res_final = next(l for l in resumed if l.startswith("ingested "))
        # Same final model: version and content digest agree.
        assert (
            ref_final.split("model version ")[1]
            == res_final.split("model version ")[1]
        )


class TestExtensionCommands:
    def test_mi(self, address_file, capsys):
        assert main(["mi", address_file]) == 0
        out = capsys.readouterr().out
        assert "mutual information" in out

    def test_compare_stable(self, address_file, capsys):
        assert main(["compare", address_file, address_file]) == 0
        out = capsys.readouterr().out
        assert "temporal snapshot comparison" in out
        assert "RENUMBERING" not in out

    def test_report(self, address_file, capsys):
        assert main(["report", address_file, "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "## Bayesian network" in out
        assert "## Generated candidate targets" in out
