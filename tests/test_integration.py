"""End-to-end integration tests mirroring the paper's running examples."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_c1
from repro.scan.generator import prefixes64


@pytest.fixture(scope="module")
def jp_analysis(jp_small):
    sample = jp_small.sample(3000, seed=0)
    return EntropyIP.fit(sample)


class TestFig1JapaneseTelco:
    def test_first_segment_constant_40_prefix(self, jp_analysis):
        # Fig. 1(a): the trained eye sees one /40 → segments A and B
        # carry a single value each.
        table = jp_analysis.segment_table()
        assert len(table["A"]) == 1
        assert table["A"][0][2] == pytest.approx(1.0)

    def test_zero_block_popular_in_iid(self, jp_analysis):
        # Fig. 1(b): the zeros value of the wide IID segment sits near
        # 60%.
        wide = max(
            jp_analysis.encoder.mined_segments,
            key=lambda m: (m.segment.first_nybble >= 17)
            * m.segment.nybble_count,
        )
        zero_elements = [v for v in wide.values if v.low == 0 and not v.is_range]
        assert zero_elements
        assert zero_elements[0].frequency == pytest.approx(0.6, abs=0.05)

    def test_conditioning_on_zeros_sharpens_c(self, jp_analysis):
        # Fig. 1(b) → (c): clicking J = 00000... forces C to 10 at ~100%.
        wide = max(
            jp_analysis.encoder.mined_segments,
            key=lambda m: (m.segment.first_nybble >= 17)
            * m.segment.nybble_count,
        )
        zero_code = next(
            v.code for v in wide.values if v.low == 0 and not v.is_range
        )
        browser = jp_analysis.browse().click(zero_code)
        c_label = "C"
        rows = browser.rows()[c_label]
        top = max(rows, key=lambda r: r.probability)
        assert top.value_text == "10"
        assert top.probability > 0.95

    def test_bn_finds_dependency_on_zero_segment(self, jp_analysis):
        # Fig. 2: the wide IID segment depends on earlier segments.
        wide_label = max(
            jp_analysis.encoder.mined_segments,
            key=lambda m: (m.segment.first_nybble >= 17)
            * m.segment.nybble_count,
        ).segment.label
        parents = jp_analysis.model.network.parents(wide_label)
        assert parents, "expected the J-analog segment to have BN parents"

    def test_table2_style_conditional(self, jp_analysis):
        # P(J=zeros | parents) varies across parent values.
        wide = max(
            jp_analysis.encoder.mined_segments,
            key=lambda m: (m.segment.first_nybble >= 17)
            * m.segment.nybble_count,
        )
        label = wide.segment.label
        parents = jp_analysis.model.network.parents(label)
        zero_index = next(
            i for i, v in enumerate(wide.values)
            if v.low == 0 and not v.is_range
        )
        table = jp_analysis.model.conditional_probability_table(
            label, zero_index, list(parents)
        )
        probabilities = list(table.values())
        assert max(probabilities) - min(probabilities) > 0.3


class TestFig10AndroidPattern:
    @pytest.fixture(scope="class")
    def c1_analysis(self):
        network = build_c1(population_size=30000)
        return EntropyIP.fit(network.sample(4000, seed=1))

    def test_last_segment_01_share(self, c1_analysis):
        last = c1_analysis.encoder.mined_segments[-1]
        ones = [v for v in last.values if v.low == 1 and not v.is_range]
        assert ones
        assert ones[0].frequency == pytest.approx(0.47, abs=0.05)

    def test_conditioning_on_01_zeroes_d(self, c1_analysis):
        # Fig. 10(b): conditioning on F = 01 makes D a string of zeros.
        last = c1_analysis.encoder.mined_segments[-1]
        one_code = next(
            v.code for v in last.values if v.low == 1 and not v.is_range
        )
        browser = c1_analysis.browse().click(one_code)
        d_mined = next(
            m for m in c1_analysis.encoder.mined_segments
            if m.segment.first_nybble == 17
        )
        rows = browser.rows()[d_mined.segment.label]
        top = max(rows, key=lambda r: r.probability)
        assert top.value_text.strip("0") == ""  # all zeros
        assert top.probability > 0.9


class TestScanningWorkflow:
    def test_generation_finds_unseen_64s(self, r1_small):
        # The §5.5 headline result at miniature scale.
        population = r1_small.population(0)
        sample = r1_small.sample(800, seed=0)
        analysis = EntropyIP.fit(sample)
        candidates = analysis.model.generate(
            3000, np.random.default_rng(2),
            exclude=set(sample.to_ints()),
        )
        population_set = set(population.to_ints())
        hits = [c for c in candidates if c in population_set]
        assert hits
        train_64s = prefixes64(sample.to_ints(), 32)
        new_64s = prefixes64(hits, 32) - train_64s
        assert new_64s
