"""Cross-cutting property-based tests on the full pipeline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.stats.entropy import nybble_entropies

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_structured_values(seed, n):
    """Random but structured sets: prefix pool + mixed IID styles."""
    generator = np.random.default_rng(seed)
    prefixes = [0x20010DB8, 0x2A001450, 0x2A03C0F0][: 1 + seed % 3]
    values = []
    for _ in range(n):
        prefix = prefixes[generator.integers(0, len(prefixes))]
        subnet = int(generator.integers(0, 1 << 16))
        style = generator.integers(0, 3)
        if style == 0:
            iid = int(generator.integers(1, 4))
        elif style == 1:
            iid = int(generator.integers(0, 1 << 32))
        else:
            iid = 0
        values.append((prefix << 96) | (subnet << 64) | iid)
    return values


class TestPipelineProperties:
    @SLOW
    @given(st.integers(0, 10_000))
    def test_fit_never_crashes_on_structured_sets(self, seed):
        values = random_structured_values(seed, 300)
        analysis = EntropyIP.fit(values)
        assert analysis.segments
        assert analysis.encoder.cardinalities

    @SLOW
    @given(st.integers(0, 10_000))
    def test_segments_partition_width(self, seed):
        values = random_structured_values(seed, 200)
        analysis = EntropyIP.fit(values)
        covered = sum(s.nybble_count for s in analysis.segments)
        assert covered == 32

    @SLOW
    @given(st.integers(0, 10_000))
    def test_mined_frequencies_sum_to_one(self, seed):
        values = random_structured_values(seed, 200)
        analysis = EntropyIP.fit(values)
        for mined in analysis.encoder.mined_segments:
            total = sum(v.frequency for v in mined.values)
            assert total == pytest.approx(1.0, abs=1e-6)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_marginals_are_distributions(self, seed):
        values = random_structured_values(seed, 200)
        analysis = EntropyIP.fit(values)
        for distribution in analysis.model.marginals().values():
            assert distribution.sum() == pytest.approx(1.0)
            assert np.all(distribution >= -1e-12)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_generated_addresses_match_learned_support(self, seed):
        values = random_structured_values(seed, 300)
        analysis = EntropyIP.fit(values)
        generated = analysis.generate(
            50, np.random.default_rng(0), exclude_training=False
        )
        # Every generated value must decode from some mined element:
        # re-encoding it yields valid code indices.
        codes = analysis.encoder.encode_set(generated)
        for column, mined in enumerate(analysis.encoder.mined_segments):
            assert codes[:, column].max() < mined.cardinality

    @SLOW
    @given(st.integers(0, 10_000))
    def test_entropy_invariant_under_permutation(self, seed):
        values = random_structured_values(seed, 100)
        base = nybble_entropies(AddressSet.from_ints(values))
        generator = np.random.default_rng(seed)
        shuffled = list(values)
        generator.shuffle(shuffled)
        permuted = nybble_entropies(AddressSet.from_ints(shuffled))
        assert np.allclose(base, permuted)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_total_entropy_vs_duplication(self, seed):
        # Duplicating every row changes nothing information-theoretically.
        values = random_structured_values(seed, 100)
        once = nybble_entropies(AddressSet.from_ints(values))
        twice = nybble_entropies(AddressSet.from_ints(values * 2))
        assert np.allclose(once, twice)
