"""Cross-cutting property-based tests on the full pipeline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bayes.scores import FamilyStats, family_score
from repro.cluster.dbscan import _banded_is_exact, _dbscan_banded, _dbscan_grid
from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.stats.entropy import (
    _nybble_entropies_scalar,
    empirical_entropy,
    entropy_of_count_rows,
    nybble_contingency,
    nybble_entropies,
)
from repro.stats.mutual_information import _mi_matrix_pairwise, mi_matrix

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_structured_values(seed, n):
    """Random but structured sets: prefix pool + mixed IID styles."""
    generator = np.random.default_rng(seed)
    prefixes = [0x20010DB8, 0x2A001450, 0x2A03C0F0][: 1 + seed % 3]
    values = []
    for _ in range(n):
        prefix = prefixes[generator.integers(0, len(prefixes))]
        subnet = int(generator.integers(0, 1 << 16))
        style = generator.integers(0, 3)
        if style == 0:
            iid = int(generator.integers(1, 4))
        elif style == 1:
            iid = int(generator.integers(0, 1 << 32))
        else:
            iid = 0
        values.append((prefix << 96) | (subnet << 64) | iid)
    return values


class TestPipelineProperties:
    @SLOW
    @given(st.integers(0, 10_000))
    def test_fit_never_crashes_on_structured_sets(self, seed):
        values = random_structured_values(seed, 300)
        analysis = EntropyIP.fit(values)
        assert analysis.segments
        assert analysis.encoder.cardinalities

    @SLOW
    @given(st.integers(0, 10_000))
    def test_segments_partition_width(self, seed):
        values = random_structured_values(seed, 200)
        analysis = EntropyIP.fit(values)
        covered = sum(s.nybble_count for s in analysis.segments)
        assert covered == 32

    @SLOW
    @given(st.integers(0, 10_000))
    def test_mined_frequencies_sum_to_one(self, seed):
        values = random_structured_values(seed, 200)
        analysis = EntropyIP.fit(values)
        for mined in analysis.encoder.mined_segments:
            total = sum(v.frequency for v in mined.values)
            assert total == pytest.approx(1.0, abs=1e-6)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_marginals_are_distributions(self, seed):
        values = random_structured_values(seed, 200)
        analysis = EntropyIP.fit(values)
        for distribution in analysis.model.marginals().values():
            assert distribution.sum() == pytest.approx(1.0)
            assert np.all(distribution >= -1e-12)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_generated_addresses_match_learned_support(self, seed):
        values = random_structured_values(seed, 300)
        analysis = EntropyIP.fit(values)
        generated = analysis.generate(
            50, np.random.default_rng(0), exclude_training=False
        )
        # Every generated value must decode from some mined element:
        # re-encoding it yields valid code indices.
        codes = analysis.encoder.encode_set(generated)
        for column, mined in enumerate(analysis.encoder.mined_segments):
            assert codes[:, column].max() < mined.cardinality

    @SLOW
    @given(st.integers(0, 10_000))
    def test_entropy_invariant_under_permutation(self, seed):
        values = random_structured_values(seed, 100)
        base = nybble_entropies(AddressSet.from_ints(values))
        generator = np.random.default_rng(seed)
        shuffled = list(values)
        generator.shuffle(shuffled)
        permuted = nybble_entropies(AddressSet.from_ints(shuffled))
        assert np.allclose(base, permuted)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_total_entropy_vs_duplication(self, seed):
        # Duplicating every row changes nothing information-theoretically.
        values = random_structured_values(seed, 100)
        once = nybble_entropies(AddressSet.from_ints(values))
        twice = nybble_entropies(AddressSet.from_ints(values * 2))
        assert np.allclose(once, twice)


def random_nybble_matrix(seed, max_rows=300, max_width=12):
    """A random nybble matrix with injected column dependencies."""
    generator = np.random.default_rng(seed)
    n = int(generator.integers(1, max_rows))
    width = int(generator.integers(1, max_width))
    matrix = generator.integers(0, 16, size=(n, width)).astype(np.uint8)
    if width >= 3 and generator.random() < 0.5:
        matrix[:, 2] = matrix[:, 0]  # a deterministic dependency
    if width >= 2 and generator.random() < 0.3:
        matrix[:, 1] = 7  # a constant column
    return matrix


class TestContingencyProperties:
    """The shared contingency pass against the scalar definitions."""

    @SLOW
    @given(st.integers(0, 10_000))
    def test_contingency_entropies_equal_scalar_empirical_entropy(self, seed):
        matrix = random_nybble_matrix(seed)
        address_set = AddressSet(matrix)
        joint = nybble_contingency(address_set)
        width = matrix.shape[1]
        marginal_entropies = entropy_of_count_rows(
            joint[np.arange(width), np.arange(width)].reshape(width, 256)
        )
        for column in range(width):
            assert marginal_entropies[column] == pytest.approx(
                empirical_entropy(matrix[:, column].tolist()), abs=1e-12
            )

    @SLOW
    @given(st.integers(0, 10_000))
    def test_vectorized_nybble_entropies_equal_scalar(self, seed):
        address_set = AddressSet(random_nybble_matrix(seed))
        vectorized = nybble_entropies(address_set)
        scalar = _nybble_entropies_scalar(address_set)
        assert np.allclose(vectorized, scalar, rtol=0, atol=1e-12)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_contingency_row_sums_are_column_marginals(self, seed):
        matrix = random_nybble_matrix(seed)
        joint = nybble_contingency(AddressSet(matrix))
        for column in range(matrix.shape[1]):
            expected = np.bincount(matrix[:, column], minlength=16)
            assert np.array_equal(joint[column, 0].sum(axis=1), expected)
            assert np.array_equal(np.diag(joint[column, column]), expected)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_mi_matrix_symmetric_with_unit_diagonal(self, seed):
        matrix = random_nybble_matrix(seed)
        address_set = AddressSet(matrix)
        nmi = mi_matrix(address_set, normalized=True)
        assert np.array_equal(nmi, nmi.T)
        constant = np.asarray(
            [len(np.unique(matrix[:, i])) <= 1 for i in range(matrix.shape[1])]
        )
        diagonal = nmi[np.diag_indices_from(nmi)]
        # H(X,X) re-sums H(X)'s counts through a 256-cell table, so the
        # self-NMI can sit one ulp under 1 — for the scalar definition
        # just as much as for the contingency pass.
        assert np.allclose(diagonal[~constant], 1.0, rtol=0, atol=1e-12)
        assert np.all(diagonal[constant] == 0.0)
        assert np.all(nmi >= 0.0) and np.all(nmi <= 1.0)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_mi_matrix_equals_pairwise_reference(self, seed):
        address_set = AddressSet(random_nybble_matrix(seed))
        for normalized in (True, False):
            fast = mi_matrix(address_set, normalized=normalized)
            reference = _mi_matrix_pairwise(address_set, normalized=normalized)
            assert np.allclose(fast, reference, rtol=0, atol=1e-12)


class TestFamilyStatsProperties:
    """Cached sufficient-statistics scores against the direct reference."""

    @SLOW
    @given(st.integers(0, 10_000))
    def test_cached_scores_equal_reference_family_score(self, seed):
        generator = np.random.default_rng(seed)
        num_vars = int(generator.integers(2, 6))
        cardinalities = [int(generator.integers(1, 6)) for _ in range(num_vars)]
        n = int(generator.integers(1, 200))
        data = np.column_stack(
            [generator.integers(0, c, size=n) for c in cardinalities]
        )
        stats = FamilyStats(data, cardinalities)
        ess = float(generator.choice([0.5, 1.0, 4.0]))
        for child in range(num_vars):
            candidates = [()] + [
                (p,) for p in range(child)
            ] + [
                (p, q)
                for p in range(child)
                for q in range(p + 1, child)
            ]
            for parents in candidates:
                for method in ("bdeu", "bic"):
                    cached = stats.score(
                        child, parents, method=method, equivalent_sample_size=ess
                    )
                    reference = family_score(
                        data,
                        child,
                        parents,
                        cardinalities,
                        method=method,
                        equivalent_sample_size=ess,
                    )
                    assert cached == pytest.approx(reference, rel=1e-12, abs=1e-12)

    @SLOW
    @given(st.integers(0, 10_000))
    def test_tier_batched_scores_equal_per_family_scores(self, seed):
        """Tier-vs-family equality: FamilyStats.score_tier (fused
        multi-family bincount + one gammaln pass per chunk) must be
        *bitwise* equal to per-family scoring — the near-tie contract
        of the structure search — and to the uncached reference."""
        from itertools import combinations

        generator = np.random.default_rng(seed)
        num_vars = int(generator.integers(2, 7))
        cardinalities = [int(generator.integers(1, 6)) for _ in range(num_vars)]
        n = int(generator.integers(1, 150))
        data = np.column_stack(
            [generator.integers(0, c, size=n) for c in cardinalities]
        )
        ess = float(generator.choice([0.5, 1.0, 4.0]))
        child = int(generator.integers(1, num_vars))
        tier = [()] + [
            subset
            for size in (1, 2, 3)
            for subset in combinations(range(child), size)
        ]
        batched = FamilyStats(data, cardinalities)
        scores = batched.score_tier(
            child, tier, equivalent_sample_size=ess
        )
        # Fresh stats per comparison so the per-family path cannot be
        # served from the batch's memo.
        single = FamilyStats(data, cardinalities)
        for parents, score in zip(tier, scores):
            assert score == single.score(
                child, parents, equivalent_sample_size=ess
            ), (child, parents)
            assert score == family_score(
                data, child, parents, cardinalities,
                equivalent_sample_size=ess,
            ), (child, parents)
        # Repeating the tier serves every score from the memo.
        assert batched.score_tier(
            child, tier, equivalent_sample_size=ess
        ) == scores

    @SLOW
    @given(st.integers(0, 10_000))
    def test_cached_counts_match_count_family(self, seed):
        from repro.bayes.cpd import count_family

        generator = np.random.default_rng(seed)
        cardinalities = [int(generator.integers(1, 7)) for _ in range(4)]
        n = int(generator.integers(1, 150))
        data = np.column_stack(
            [generator.integers(0, c, size=n) for c in cardinalities]
        )
        stats = FamilyStats(data, cardinalities)
        for child, parents in [(3, (0, 2)), (2, (1,)), (1, ()), (3, (1, 2))]:
            assert np.array_equal(
                stats.counts(child, parents),
                count_family(data, child, parents, cardinalities),
            )


class TestDBSCANEngineParity:
    """Banded vectorized DBSCAN against the grid-scan reference."""

    @SLOW
    @given(st.integers(0, 10_000))
    def test_banded_labels_identical_to_grid(self, seed):
        generator = np.random.default_rng(seed)
        n = int(generator.integers(1, 120))
        dims = int(generator.integers(1, 3))
        if generator.random() < 0.5:
            points = generator.integers(0, 4096, size=(n, dims)).astype(
                np.float64
            )
            eps = float(generator.choice([1.0, 16.0, 256.0]))
        else:
            points = np.round(generator.random((n, dims)) * 10, 3)
            eps = float(generator.choice([0.05, 0.3, 1.0]))
        weights = (
            generator.integers(1, 40, size=n).astype(np.float64)
            if generator.random() < 0.5
            else np.ones(n)
        )
        min_samples = float(generator.integers(1, 50))
        assert _banded_is_exact(points, weights, eps)
        grid = _dbscan_grid(points, weights, eps, min_samples)
        banded = _dbscan_banded(points, weights, eps, min_samples)
        assert np.array_equal(grid, banded)
