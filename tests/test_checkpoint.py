"""The checkpoint envelope: round trips and loud, typed corruption."""

import os
import struct

import numpy as np
import pytest

from repro.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    checkpoint_kind,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import CheckpointError


@pytest.fixture
def payload():
    return {
        "words": np.arange(12, dtype=np.uint64).reshape(6, 2),
        "seed": 7,
        "name": "m",
        "nested": {"state": [1, 2, 3]},
    }


class TestRoundTrip:
    def test_save_load(self, tmp_path, payload):
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(path, "session", payload)
        loaded = load_checkpoint(path, kind="session")
        assert loaded["seed"] == 7
        assert loaded["nested"] == {"state": [1, 2, 3]}
        assert np.array_equal(loaded["words"], payload["words"])
        assert checkpoint_kind(path) == "session"

    def test_any_kind_accepted_when_unspecified(self, tmp_path, payload):
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(path, "ingest", payload)
        assert load_checkpoint(path)["name"] == "m"

    def test_overwrite_is_atomic_replace(self, tmp_path, payload):
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(path, "session", payload)
        save_checkpoint(path, "session", {"seed": 8})
        assert load_checkpoint(path, kind="session") == {"seed": 8}
        # No stray temp files left behind in the directory.
        assert os.listdir(tmp_path) == ["state.ckpt"]


class TestCorruption:
    def test_wrong_kind(self, tmp_path, payload):
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(path, "ingest", payload)
        with pytest.raises(CheckpointError, match="expected 'session'"):
            load_checkpoint(path, kind="session")

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="could not be read"):
            load_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not a checkpoint, but long enough" * 3)
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(str(path))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            checkpoint_kind(str(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(str(path))

    def test_truncated_body(self, tmp_path, payload):
        path = tmp_path / "state.ckpt"
        save_checkpoint(str(path), "session", payload)
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(str(path))

    def test_flipped_payload_byte(self, tmp_path, payload):
        path = tmp_path / "state.ckpt"
        save_checkpoint(str(path), "session", payload)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            load_checkpoint(str(path))

    def test_future_format_version(self, tmp_path, payload):
        path = tmp_path / "state.ckpt"
        save_checkpoint(str(path), "session", payload)
        raw = bytearray(path.read_bytes())
        raw[10:12] = struct.pack("<H", FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(str(path))
