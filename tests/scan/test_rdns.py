"""Tests for the simulated rDNS zone and RFC 7707 tree walker."""

import pytest

from repro.ipv6.address import IPv6Address
from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet
from repro.scan.rdns import (
    RdnsWalkResult,
    SimulatedRdnsZone,
    rdns_harvest,
    walk_rdns_tree,
)


@pytest.fixture
def population():
    base = IPv6Address("2001:db8:7::").value
    return AddressSet.from_ints([base | i for i in range(1, 65)])


class TestZone:
    def test_full_coverage(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        assert zone.record_count == 64

    def test_zero_coverage(self, population):
        zone = SimulatedRdnsZone(population, coverage=0.0)
        assert zone.record_count == 0

    def test_partial_coverage_deterministic(self, population):
        a = SimulatedRdnsZone(population, coverage=0.5, seed=1)
        b = SimulatedRdnsZone(population, coverage=0.5, seed=1)
        assert a.record_count == b.record_count
        assert 10 < a.record_count < 55

    def test_branch_existence(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        prefix_value = IPv6Address("2001:db8:7::").value >> 96
        assert zone.branch_exists(8, prefix_value)
        assert not zone.branch_exists(8, 0xDEADBEEF)

    def test_queries_counted(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        zone.branch_exists(0, 0)
        zone.has_record(1)
        assert zone.queries == 2

    def test_validation(self, population):
        with pytest.raises(ValueError):
            SimulatedRdnsZone(population, coverage=1.5)
        with pytest.raises(ValueError):
            SimulatedRdnsZone(population.truncate(16))


class TestWalker:
    def test_enumerates_all_records(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        result = walk_rdns_tree(zone, Prefix("2001:db8:7::/48"))
        assert len(result.addresses) == 64
        assert not result.truncated
        assert result.addresses == tuple(sorted(population.to_ints()))

    def test_partial_coverage_finds_exactly_records(self, population):
        zone = SimulatedRdnsZone(population, coverage=0.5, seed=3)
        result = walk_rdns_tree(zone, Prefix("2001:db8:7::/48"))
        assert len(result.addresses) == zone.record_count

    def test_empty_prefix_is_cheap(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        result = walk_rdns_tree(zone, Prefix("3001::/16"))
        assert result.addresses == ()
        assert result.queries == 1  # a single NXDOMAIN prunes everything

    def test_query_budget_truncates(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        result = walk_rdns_tree(zone, Prefix("2001:db8:7::/48"), max_queries=10)
        assert result.truncated
        assert len(result.addresses) < 64

    def test_queries_scale_with_population_not_space(self, population):
        # The point of RFC 7707: cost ~ populated branches, not 2^80.
        zone = SimulatedRdnsZone(population, coverage=1.0)
        result = walk_rdns_tree(zone, Prefix("2001:db8:7::/48"))
        # 64 leaf addresses under one /120ish branch: each populated
        # branch costs ≤ 16 child queries.
        assert result.queries < 64 * 16 + 20 * 16

    def test_rejects_unaligned_root(self, population):
        zone = SimulatedRdnsZone(population, coverage=1.0)
        with pytest.raises(ValueError):
            walk_rdns_tree(zone, Prefix("2001:db8::/33"))

    def test_harvest_convenience(self, population):
        result = rdns_harvest(
            population, Prefix("2001:db8:7::/48"), coverage=1.0
        )
        assert isinstance(result, RdnsWalkResult)
        assert len(result.address_objects()) == 64


class TestAgainstNetworkModels:
    def test_walks_a_router_network(self, r1_small):
        population = r1_small.population(0)
        # R1 sits inside 2a01:0c80::/32; walk that covering prefix.
        result = rdns_harvest(
            population, Prefix(IPv6Address(0x2A010C80 << 96), 32),
            coverage=0.3, seed=2, max_queries=2_000_000,
        )
        assert 0 < len(result.addresses) < len(population)
        population_set = set(population.to_ints())
        assert all(v in population_set for v in result.addresses)
