"""Tests for the simulated ping/rDNS oracle."""

import pytest

from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet
from repro.scan.responder import SimulatedResponder, _keyed_uniform, _splitmix64


@pytest.fixture
def population():
    return AddressSet.from_ints([(0x20010DB8 << 96) | i for i in range(1000)])


class TestHash:
    def test_splitmix_deterministic(self):
        assert _splitmix64(42) == _splitmix64(42)
        assert _splitmix64(42) != _splitmix64(43)

    def test_keyed_uniform_range(self):
        for value in (0, 1, 1 << 127):
            u = _keyed_uniform(value, 7)
            assert 0 <= u < 1

    def test_vectorized_hash_bit_identical_to_scalar(self):
        import numpy as np

        from repro.scan.responder import _keyed_uniform_array

        values = [0, 1, 2**64 - 1, 2**64, 2**127, 2**128 - 1] + [
            int(x) for x in np.random.default_rng(3).integers(
                0, 2**63, size=500
            )
        ]
        low = np.fromiter(
            (v & (2**64 - 1) for v in values), np.uint64, count=len(values)
        )
        high = np.fromiter(
            (v >> 64 for v in values), np.uint64, count=len(values)
        )
        vectorized = _keyed_uniform_array(low, high, 12345)
        scalar = [_keyed_uniform(v, 12345) for v in values]
        assert vectorized.tolist() == scalar


class TestResponder:
    def test_membership(self, population):
        responder = SimulatedResponder(population)
        assert responder.is_member((0x20010DB8 << 96) | 5)
        assert not responder.is_member(12345)

    def test_non_members_never_ping(self, population):
        responder = SimulatedResponder(population, ping_rate=1.0)
        assert not responder.ping(999)

    def test_rates_zero_and_one(self, population):
        silent = SimulatedResponder(population, ping_rate=0.0, rdns_rate=0.0)
        loud = SimulatedResponder(population, ping_rate=1.0, rdns_rate=1.0)
        member = (0x20010DB8 << 96) | 1
        assert not silent.ping(member) and not silent.rdns(member)
        assert loud.ping(member) and loud.rdns(member)

    def test_rate_approximation(self, population):
        responder = SimulatedResponder(population, ping_rate=0.5, seed=3)
        responding = responder.ping_many(population.to_ints())
        assert 0.4 < len(responding) / 1000 < 0.6

    def test_deterministic_per_address(self, population):
        responder = SimulatedResponder(population, ping_rate=0.5, seed=1)
        member = (0x20010DB8 << 96) | 7
        assert responder.ping(member) == responder.ping(member)

    def test_seed_changes_responders(self, population):
        a = SimulatedResponder(population, ping_rate=0.5, seed=1)
        b = SimulatedResponder(population, ping_rate=0.5, seed=2)
        assert a.responding_population() != b.responding_population()

    def test_ping_and_rdns_independent(self, population):
        responder = SimulatedResponder(
            population, ping_rate=0.5, rdns_rate=0.5, seed=4
        )
        members = population.to_ints()
        pings = set(responder.ping_many(members))
        rdns = set(responder.rdns_many(members))
        assert pings != rdns  # keyed differently

    def test_wildcard_prefix_false_positives(self, population):
        responder = SimulatedResponder(
            population,
            ping_rate=1.0,
            wildcard_ping_prefixes=[Prefix("2001:db8::/32")],
        )
        ghost = (0x20010DB8 << 96) | 0xDEAD_0000_0000
        assert not responder.is_member(ghost)
        assert responder.ping(ghost)

    def test_rate_validation(self, population):
        with pytest.raises(ValueError):
            SimulatedResponder(population, ping_rate=1.5)

    def test_batch_oracles_match_scalar(self, population):
        responder = SimulatedResponder(population, seed=5)
        query = [(0x20010DB8 << 96) | i for i in range(0, 2000, 3)]
        assert responder.ping_many(query) == [
            v for v in query if responder.ping(v)
        ]
        assert responder.rdns_many(query) == [
            v for v in query if responder.rdns(v)
        ]
        assert responder.ping_many([]) == []
        assert responder.rdns_many([]) == []

    def test_population_size(self, population):
        assert SimulatedResponder(population).population_size == 1000


class TestVectorizedOracle:
    """The mask interfaces must be bit-identical to the scalar oracle."""

    def _mixed_query(self, population):
        # Interleave members, near-misses, and far non-members.
        return AddressSet.from_ints(
            [(0x20010DB8 << 96) | i for i in range(0, 2000, 3)]
            + [12345, (0xFFFF << 112) | 7]
        )

    def test_masks_match_scalar(self, population):
        responder = SimulatedResponder(population, ping_rate=0.6,
                                       rdns_rate=0.4, seed=9)
        query = self._mixed_query(population)
        values = query.to_ints()
        assert responder.member_mask(query).tolist() == [
            responder.is_member(v) for v in values
        ]
        assert responder.ping_mask(query).tolist() == [
            responder.ping(v) for v in values
        ]
        assert responder.rdns_mask(query).tolist() == [
            responder.rdns(v) for v in values
        ]

    def test_wildcard_masks_match_scalar(self, population):
        responder = SimulatedResponder(
            population,
            ping_rate=0.5,
            seed=2,
            wildcard_ping_prefixes=[Prefix("2001:db8::/32")],
        )
        # Members (hash hit and miss), non-members inside the wildcard
        # prefix, and non-members outside any prefix.
        values = (
            [(0x20010DB8 << 96) | i for i in range(0, 600, 7)]
            + [(0x20010DB8 << 96) | (0xDEAD << 32) | i for i in range(5)]
            + [(0x3FFF << 112) | 9, 1]
        )
        scalar = [v for v in values if responder.ping(v)]
        assert responder.ping_many(values) == scalar
        # The wildcard prefix must actually fire for some non-member.
        ghost = (0x20010DB8 << 96) | (0xDEAD << 32)
        assert not responder.is_member(ghost) and ghost in scalar

    def test_width16_population_matches_scalar(self):
        prefixes = AddressSet.from_ints(
            [0x20010DB8_0000_0000 | i for i in range(500)],
            width=16,
            already_truncated=True,
        )
        responder = SimulatedResponder(prefixes, ping_rate=0.5,
                                       rdns_rate=0.5, seed=11)
        values = [0x20010DB8_0000_0000 | i for i in range(0, 1000, 3)]
        assert responder.ping_many(values) == [
            v for v in values if responder.ping(v)
        ]
        assert responder.rdns_many(values) == [
            v for v in values if responder.rdns(v)
        ]

    def test_empty_candidates(self, population):
        responder = SimulatedResponder(population)
        empty = AddressSet.empty(32)
        assert responder.member_mask(empty).tolist() == []
        assert responder.ping_mask(empty).tolist() == []
        assert responder.rdns_mask(empty).tolist() == []

    def test_width_mismatch_rejected(self, population):
        responder = SimulatedResponder(population)
        with pytest.raises(ValueError):
            responder.member_mask(
                AddressSet.from_ints([1], width=16, already_truncated=True)
            )

    def test_responding_population_matches_scalar(self, population):
        responder = SimulatedResponder(population, ping_rate=0.5, seed=6)
        members = sorted(set(population.to_ints()))
        assert responder.responding_population() == [
            v for v in members if responder.ping(v)
        ]

    def test_population_with_duplicates_deduped(self):
        rows = AddressSet.from_ints([5, 5, 6])
        responder = SimulatedResponder(rows, ping_rate=1.0)
        assert responder.population_size == 2
        assert responder.responding_population() == [5, 6]

    def test_match_cache_shared_across_oracles(self, population):
        responder = SimulatedResponder(population, ping_rate=0.5,
                                       rdns_rate=0.5, seed=3)
        query = self._mixed_query(population)
        ping = responder.ping_mask(query)
        rdns = responder.rdns_mask(query)  # second mask reuses the match
        member = responder.member_mask(query)
        values = query.to_ints()
        assert ping.tolist() == [responder.ping(v) for v in values]
        assert rdns.tolist() == [responder.rdns(v) for v in values]
        assert member.tolist() == [responder.is_member(v) for v in values]
        # A different batch object invalidates the cache.
        other = AddressSet.from_ints(values[:5])
        assert responder.member_mask(other).tolist() == member.tolist()[:5]

    def test_out_of_width_values_score_as_non_members(self):
        prefixes = AddressSet.from_ints(
            [0x20010DB8_0000_0000 | i for i in range(50)],
            width=16,
            already_truncated=True,
        )
        responder = SimulatedResponder(prefixes, ping_rate=1.0, rdns_rate=1.0)
        member = 0x20010DB8_0000_0007
        query = [member, 1 << 64, 1 << 100]  # too wide for width 16
        assert responder.ping_many(query) == [member]
        assert responder.rdns_many(query) == [member]
        assert not responder.ping(1 << 64)

    def test_match_cache_does_not_pin_batches(self, population):
        import gc
        import weakref

        responder = SimulatedResponder(population)
        batch = AddressSet.from_ints([(0x20010DB8 << 96) | 3])
        responder.ping_mask(batch)
        ref = weakref.ref(batch)
        del batch
        gc.collect()
        assert ref() is None  # the responder must not keep it alive
