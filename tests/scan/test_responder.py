"""Tests for the simulated ping/rDNS oracle."""

import pytest

from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet
from repro.scan.responder import SimulatedResponder, _keyed_uniform, _splitmix64


@pytest.fixture
def population():
    return AddressSet.from_ints([(0x20010DB8 << 96) | i for i in range(1000)])


class TestHash:
    def test_splitmix_deterministic(self):
        assert _splitmix64(42) == _splitmix64(42)
        assert _splitmix64(42) != _splitmix64(43)

    def test_keyed_uniform_range(self):
        for value in (0, 1, 1 << 127):
            u = _keyed_uniform(value, 7)
            assert 0 <= u < 1

    def test_vectorized_hash_bit_identical_to_scalar(self):
        import numpy as np

        from repro.scan.responder import _keyed_uniform_array

        values = [0, 1, 2**64 - 1, 2**64, 2**127, 2**128 - 1] + [
            int(x) for x in np.random.default_rng(3).integers(
                0, 2**63, size=500
            )
        ]
        low = np.fromiter(
            (v & (2**64 - 1) for v in values), np.uint64, count=len(values)
        )
        high = np.fromiter(
            (v >> 64 for v in values), np.uint64, count=len(values)
        )
        vectorized = _keyed_uniform_array(low, high, 12345)
        scalar = [_keyed_uniform(v, 12345) for v in values]
        assert vectorized.tolist() == scalar


class TestResponder:
    def test_membership(self, population):
        responder = SimulatedResponder(population)
        assert responder.is_member((0x20010DB8 << 96) | 5)
        assert not responder.is_member(12345)

    def test_non_members_never_ping(self, population):
        responder = SimulatedResponder(population, ping_rate=1.0)
        assert not responder.ping(999)

    def test_rates_zero_and_one(self, population):
        silent = SimulatedResponder(population, ping_rate=0.0, rdns_rate=0.0)
        loud = SimulatedResponder(population, ping_rate=1.0, rdns_rate=1.0)
        member = (0x20010DB8 << 96) | 1
        assert not silent.ping(member) and not silent.rdns(member)
        assert loud.ping(member) and loud.rdns(member)

    def test_rate_approximation(self, population):
        responder = SimulatedResponder(population, ping_rate=0.5, seed=3)
        responding = responder.ping_many(population.to_ints())
        assert 0.4 < len(responding) / 1000 < 0.6

    def test_deterministic_per_address(self, population):
        responder = SimulatedResponder(population, ping_rate=0.5, seed=1)
        member = (0x20010DB8 << 96) | 7
        assert responder.ping(member) == responder.ping(member)

    def test_seed_changes_responders(self, population):
        a = SimulatedResponder(population, ping_rate=0.5, seed=1)
        b = SimulatedResponder(population, ping_rate=0.5, seed=2)
        assert a.responding_population() != b.responding_population()

    def test_ping_and_rdns_independent(self, population):
        responder = SimulatedResponder(
            population, ping_rate=0.5, rdns_rate=0.5, seed=4
        )
        members = population.to_ints()
        pings = set(responder.ping_many(members))
        rdns = set(responder.rdns_many(members))
        assert pings != rdns  # keyed differently

    def test_wildcard_prefix_false_positives(self, population):
        responder = SimulatedResponder(
            population,
            ping_rate=1.0,
            wildcard_ping_prefixes=[Prefix("2001:db8::/32")],
        )
        ghost = (0x20010DB8 << 96) | 0xDEAD_0000_0000
        assert not responder.is_member(ghost)
        assert responder.ping(ghost)

    def test_rate_validation(self, population):
        with pytest.raises(ValueError):
            SimulatedResponder(population, ping_rate=1.5)

    def test_batch_oracles_match_scalar(self, population):
        responder = SimulatedResponder(population, seed=5)
        query = [(0x20010DB8 << 96) | i for i in range(0, 2000, 3)]
        assert responder.ping_many(query) == [
            v for v in query if responder.ping(v)
        ]
        assert responder.rdns_many(query) == [
            v for v in query if responder.rdns(v)
        ]
        assert responder.ping_many([]) == []
        assert responder.rdns_many([]) == []

    def test_population_size(self, population):
        assert SimulatedResponder(population).population_size == 1000
