"""Tests for candidate-generation helpers."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.scan.generator import generate_candidates, new_prefixes64, prefixes64


class TestPrefixes64:
    def test_full_addresses(self):
        values = [(0xAAAA << 112) | 1, (0xAAAA << 112) | 2, (0xBBBB << 112) | 1]
        assert len(prefixes64(values, 32)) == 2

    def test_prefix_mode_values(self):
        values = [0x20010DB800000001, 0x20010DB800000002]
        assert prefixes64(values, 16) == set(values)

    def test_rejects_narrow(self):
        with pytest.raises(ValueError):
            prefixes64([1], 8)


class TestNewPrefixes64:
    def test_subtracts_training(self):
        train = AddressSet.from_ints([(5 << 64) | 1])
        candidates = [(5 << 64) | 2, (6 << 64) | 1]
        new = new_prefixes64(candidates, train)
        assert new == {6}


class TestGenerateCandidates:
    def test_excludes_training(self, structured_set):
        analysis = EntropyIP.fit(structured_set)
        candidates = generate_candidates(
            analysis, 100, np.random.default_rng(0)
        )
        assert len(candidates) == 100
        assert not set(candidates) & set(structured_set.to_ints())


class TestPrefixes64Array:
    def test_matches_set_reference_for_address_set(self):
        values = [(0xAAAA << 112) | i for i in range(40)] + [(0xBBBB << 112) | 3]
        rows = AddressSet.from_ints(values)
        from repro.scan.generator import prefixes64_array

        array = prefixes64_array(rows)
        assert set(map(int, array)) == prefixes64(values, 32)
        assert array.tolist() == sorted(array.tolist())  # sorted unique

    def test_matches_set_reference_for_uint64_array(self):
        from repro.scan.generator import prefixes64_array

        words = np.array([0x20010DB8_0000_0001, 0x20010DB8_0001_0002],
                         dtype=np.uint64)
        assert set(map(int, prefixes64_array(words, 16))) == prefixes64(
            [int(w) for w in words], 16
        )

    def test_plain_int_lists(self):
        from repro.scan.generator import prefixes64_array

        values = [(5 << 64) | 1, (5 << 64) | 2, (6 << 64) | 9]
        assert [int(p) for p in prefixes64_array(values, 32)] == [5, 6]

    def test_width_mismatch_rejected(self):
        from repro.scan.generator import prefixes64_array

        with pytest.raises(ValueError):
            prefixes64_array(AddressSet.from_ints([1]), 16)
        with pytest.raises(ValueError):
            prefixes64_array([1], 8)

    def test_empty(self):
        from repro.scan.generator import prefixes64_array

        assert prefixes64_array(AddressSet.empty(32)).tolist() == []
        assert prefixes64([], 32) == set()

    def test_numpy_integer_inputs(self):
        from repro.scan.generator import prefixes64_array

        words = np.array([0x20010DB8_0000_0001, 0x20010DB8_0001_0002])
        assert words.dtype == np.int64
        assert [int(p) for p in prefixes64_array(words, 16)] == sorted(
            int(w) for w in words
        )
        with pytest.raises(ValueError):
            prefixes64_array(np.array([-1]), 16)


class TestGenerateCandidateSet:
    def test_matches_int_wrapper(self, structured_set):
        from repro.scan.generator import generate_candidate_set

        analysis = EntropyIP.fit(structured_set)
        rows = generate_candidate_set(analysis, 100, np.random.default_rng(0))
        ints = generate_candidates(analysis, 100, np.random.default_rng(0))
        assert rows.to_ints() == ints
        assert len(rows) == 100
        assert not structured_set.contains_rows(rows).any()
