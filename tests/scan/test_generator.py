"""Tests for candidate-generation helpers."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.scan.generator import generate_candidates, new_prefixes64, prefixes64


class TestPrefixes64:
    def test_full_addresses(self):
        values = [(0xAAAA << 112) | 1, (0xAAAA << 112) | 2, (0xBBBB << 112) | 1]
        assert len(prefixes64(values, 32)) == 2

    def test_prefix_mode_values(self):
        values = [0x20010DB800000001, 0x20010DB800000002]
        assert prefixes64(values, 16) == set(values)

    def test_rejects_narrow(self):
        with pytest.raises(ValueError):
            prefixes64([1], 8)


class TestNewPrefixes64:
    def test_subtracts_training(self):
        train = AddressSet.from_ints([(5 << 64) | 1])
        candidates = [(5 << 64) | 2, (6 << 64) | 1]
        new = new_prefixes64(candidates, train)
        assert new == {6}


class TestGenerateCandidates:
    def test_excludes_training(self, structured_set):
        analysis = EntropyIP.fit(structured_set)
        candidates = generate_candidates(
            analysis, 100, np.random.default_rng(0)
        )
        assert len(candidates) == 100
        assert not set(candidates) & set(structured_set.to_ints())
