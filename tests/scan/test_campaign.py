"""Tests for budgeted scanning campaigns."""

import numpy as np
import pytest

from repro.scan.campaign import CampaignResult, ScanCampaign, run_campaign
from repro.scan.responder import SimulatedResponder


@pytest.fixture(scope="module")
def setup(r1_small):
    population = r1_small.population(0)
    responder = SimulatedResponder(population, ping_rate=0.9, seed=0)
    training = population.sample(600, np.random.default_rng(1))
    return population, responder, training


class TestCampaign:
    def test_budget_respected(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=5000,
                              round_size=2000)
        assert result.total_probes <= 5000
        assert len(result.rounds) >= 2

    def test_partial_final_round(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=5000,
                              round_size=2000)
        assert result.rounds[-1].probes_sent == 1000  # 5000 - 2*2000

    def test_cumulative_bookkeeping(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=6000,
                              round_size=3000)
        running_probes = 0
        running_hits = 0
        for round_ in result.rounds:
            running_probes += round_.probes_sent
            running_hits += round_.hits
            assert round_.cumulative_probes == running_probes
            assert round_.cumulative_hits == running_hits
        assert result.total_hits == running_hits

    def test_discovery_curve_monotone(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=8000,
                              round_size=2000)
        curve = result.discovery_curve()
        assert curve == sorted(curve)
        assert curve[-1] > 0  # R1 is scannable

    def test_hits_are_real(self, setup):
        population, responder, training = setup
        result = run_campaign(training, responder, probe_budget=4000,
                              round_size=2000)
        members = set(population.to_ints())
        assert all(v in members for v in result.discovered)

    def test_no_probe_repeats_training(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=4000,
                              round_size=2000)
        training_values = set(training.to_ints())
        assert not (set(result.discovered) & training_values)

    def test_new_prefixes_tracked(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=8000,
                              round_size=4000)
        assert result.rounds[-1].new_prefixes64 == len(
            result.discovered_prefixes64
        )
        assert result.discovered_prefixes64  # R1 yields unseen /64s

    def test_adaptive_refits(self, setup):
        _, responder, training = setup
        adaptive = run_campaign(training, responder, probe_budget=8000,
                                round_size=2000, adaptive=True, seed=3)
        static = run_campaign(training, responder, probe_budget=8000,
                              round_size=2000, adaptive=False, seed=3)
        # Both complete within budget and find targets; the adaptive
        # variant must never probe duplicates despite refitting.
        assert adaptive.total_probes <= 8000
        assert len(set(adaptive.discovered)) == len(adaptive.discovered)
        assert adaptive.total_hits > 0 and static.total_hits > 0

    def test_exhausted_support_stops_early(self):
        # A constant network: the model can generate only one candidate.
        from repro.ipv6.sets import AddressSet

        population = AddressSet.from_ints([42, 43])
        responder = SimulatedResponder(population, ping_rate=1.0)
        training = AddressSet.from_ints([42] * 20)
        result = run_campaign(training, responder, probe_budget=1000,
                              round_size=100)
        assert result.total_probes < 1000

    def test_validation(self, setup):
        _, responder, training = setup
        with pytest.raises(ValueError):
            ScanCampaign(training, responder, probe_budget=0)
        with pytest.raises(ValueError):
            ScanCampaign(training, responder, round_size=0)

    def test_result_type(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=2000,
                              round_size=1000)
        assert isinstance(result, CampaignResult)
        assert all(0 <= r.hit_rate <= 1 for r in result.rounds)


def _prefix_population(n=3000):
    """A width-16 (/64-identifier) population with learnable structure."""
    rng = np.random.default_rng(5)
    subnets = rng.integers(0, 8, size=n)
    hosts = rng.integers(0, 1 << 12, size=n)
    values = [
        0x20010DB8_0000_0000 | (int(s) << 16) | int(h)
        for s, h in zip(subnets, hosts)
    ]
    from repro.ipv6.sets import AddressSet

    return AddressSet.from_ints(values, width=16, already_truncated=True)


class TestWidth16Campaign:
    """Regression: "New /64s" must use the training set's width.

    The seed code hardcoded ``prefixes64(discovered, 32)`` against a
    ``train.width`` prefix set, so width-16 (§5.6 prefix mode) campaigns
    shifted one side by 64 bits and reported garbage.
    """

    def test_new_prefixes_are_the_discovered_values(self):
        population = _prefix_population()
        responder = SimulatedResponder(population, ping_rate=1.0, seed=0)
        training = population.sample(400, np.random.default_rng(2))
        result = run_campaign(training, responder, probe_budget=3000,
                              round_size=1000, seed=1)
        assert result.total_hits > 0
        # Width 16: a row *is* its /64 identifier, and candidates never
        # repeat training, so every discovered prefix is new.
        assert result.discovered_prefixes64 == set(result.discovered)
        assert result.rounds[-1].new_prefixes64 == len(set(result.discovered))

    def test_per_round_counts_monotone(self):
        population = _prefix_population()
        responder = SimulatedResponder(population, ping_rate=1.0, seed=0)
        training = population.sample(400, np.random.default_rng(2))
        result = run_campaign(training, responder, probe_budget=4000,
                              round_size=1000, seed=3)
        counts = [r.new_prefixes64 for r in result.rounds]
        assert counts == sorted(counts)


class TestExhaustedSupportAccounting:
    """A partial round must charge ``spent`` once and terminate."""

    def _tiny_support(self):
        from repro.ipv6.sets import AddressSet

        # Only the subnet nybble varies: model support is 32 rows.
        values = [(0x20010DB8 << 96) | (s << 64) | 1 for s in range(32)]
        population = AddressSet.from_ints(values)
        training = population.sample(16, np.random.default_rng(0))
        return population, training

    def test_partial_round_charged_and_terminates(self):
        population, training = self._tiny_support()
        responder = SimulatedResponder(population, ping_rate=1.0)
        result = run_campaign(training, responder, probe_budget=10_000,
                              round_size=5_000)
        # Support (≤ 32 rows) cannot fill one 5K round: the campaign
        # must stop after that partial round, not loop on a dry model.
        assert len(result.rounds) == 1
        only = result.rounds[0]
        assert 0 < only.probes_sent < 5_000
        assert result.total_probes == only.probes_sent == only.cumulative_probes
        assert result.total_probes < 10_000
        # Every probe was a distinct, never-before-probed candidate.
        assert len(set(result.discovered)) == len(result.discovered)
        assert only.hits == len(result.discovered) <= only.probes_sent

    def test_adaptive_partial_round_terminates(self):
        population, training = self._tiny_support()
        responder = SimulatedResponder(population, ping_rate=1.0)
        result = run_campaign(training, responder, probe_budget=10_000,
                              round_size=5_000, adaptive=True)
        assert len(result.rounds) == 1
        assert result.total_probes < 10_000


class TestIncrementalAccounting:
    """The steady-state engine vs the retained re-seeding reference.

    ``ScanCampaign.run`` now keeps one persistent generation session
    and incremental /64 accounting; ``_run_reseed_reference`` is the
    old loop (vstack'd probed history, per-round ``prefixes64()`` +
    ``setdiff1d``).  Every observable outcome must be identical, round
    for round — in particular the regression this PR fixes: per-round
    ``new_prefixes64`` values from the running sorted-unique merge
    must equal the from-scratch recomputation.
    """

    @pytest.mark.parametrize("adaptive", [False, True])
    def test_rounds_identical_to_reseed_reference(self, setup, adaptive):
        _, responder, training = setup
        session = ScanCampaign(
            training, responder, probe_budget=8000, round_size=2000,
            adaptive=adaptive, seed=11,
        ).run()
        reseed = ScanCampaign(
            training, responder, probe_budget=8000, round_size=2000,
            adaptive=adaptive, seed=11,
        )._run_reseed_reference()
        assert len(session.rounds) >= 3  # actually multi-round
        assert [
            (r.index, r.probes_sent, r.hits, r.cumulative_probes,
             r.cumulative_hits, r.new_prefixes64)
            for r in session.rounds
        ] == [
            (r.index, r.probes_sent, r.hits, r.cumulative_probes,
             r.cumulative_hits, r.new_prefixes64)
            for r in reseed.rounds
        ]
        assert session.discovered == reseed.discovered
        assert session.discovered_prefixes64 == reseed.discovered_prefixes64

    def test_width16_prefix_mode_identical_to_reference(self):
        population = _prefix_population()
        responder = SimulatedResponder(population, ping_rate=1.0, seed=0)
        training = population.sample(400, np.random.default_rng(2))
        session = ScanCampaign(
            training, responder, probe_budget=4000, round_size=1000, seed=3
        ).run()
        reseed = ScanCampaign(
            training, responder, probe_budget=4000, round_size=1000, seed=3
        )._run_reseed_reference()
        assert [r.new_prefixes64 for r in session.rounds] == [
            r.new_prefixes64 for r in reseed.rounds
        ]
        assert session.discovered == reseed.discovered

    def test_no_per_round_reseeding(self, setup):
        """The O(total-probed) per-round copy is gone: however many
        rounds run, the campaign builds exactly one dedup table (the
        session's), while the reference builds one per round."""
        from repro.ipv6.sets import BucketTable

        _, responder, training = setup
        responder.oracle_masks(training)  # pre-warm the cached indexes

        real_init = BucketTable.__init__

        class Spy:
            def __init__(self):
                self.constructions = 0

            def __enter__(self):
                spy = self

                def counting_init(table, *args, **kwargs):
                    spy.constructions += 1
                    return real_init(table, *args, **kwargs)

                BucketTable.__init__ = counting_init
                return spy

            def __exit__(self, *exc):
                BucketTable.__init__ = real_init

        counts = {}
        for budget, rounds_label in ((4000, "short"), (8000, "long")):
            with Spy() as spy:
                result = ScanCampaign(
                    training, responder, probe_budget=budget,
                    round_size=2000, seed=5,
                ).run()
            assert len(result.rounds) == budget // 2000
            counts[rounds_label] = spy.constructions
        # Table constructions do not scale with the round count...
        assert counts["short"] == counts["long"] == 1
        # ...while the reference pays one re-seeded table per round.
        with Spy() as spy:
            ScanCampaign(
                training, responder, probe_budget=8000,
                round_size=2000, seed=5,
            )._run_reseed_reference()
        assert spy.constructions == 4

    def test_offered_rows_scale_with_probes_not_history(self, setup):
        """Rows offered to dedup tables stay linear in the drawn
        batches on the session path: the probed history is never
        re-fed, while the reference re-offers it every round."""
        from repro.ipv6.sets import BucketTable

        _, responder, training = setup
        responder.oracle_masks(training)  # pre-warm the cached indexes
        real = BucketTable.insert_packed
        offered = [0]

        def counting(table, words, *args, **kwargs):
            offered[0] += len(words)
            return real(table, words, *args, **kwargs)

        BucketTable.insert_packed = counting
        try:
            offered[0] = 0
            ScanCampaign(
                training, responder, probe_budget=8000,
                round_size=2000, seed=9,
            ).run()
            session_offered = offered[0]
            offered[0] = 0
            ScanCampaign(
                training, responder, probe_budget=8000,
                round_size=2000, seed=9,
            )._run_reseed_reference()
            reseed_offered = offered[0]
        finally:
            BucketTable.insert_packed = real
        # Session: the 600-row training seed once, plus each oversampled
        # batch once — a loose linear ceiling of 4x the budget.
        assert session_offered < 4 * 8000 + len(training)
        # The reference re-feeds the growing history every round.
        assert reseed_offered > session_offered + 2 * len(training)


class TestDeterminism:
    def test_same_seed_same_curve(self, setup):
        _, responder, training = setup
        runs = [
            run_campaign(training, responder, probe_budget=6000,
                         round_size=2000, seed=7)
            for _ in range(2)
        ]
        assert runs[0].discovery_curve() == runs[1].discovery_curve()
        assert runs[0].discovered == runs[1].discovered
        assert runs[0].discovered_prefixes64 == runs[1].discovered_prefixes64

    def test_same_seed_same_curve_adaptive(self, setup):
        _, responder, training = setup
        runs = [
            run_campaign(training, responder, probe_budget=6000,
                         round_size=2000, adaptive=True, seed=8)
            for _ in range(2)
        ]
        assert runs[0].discovery_curve() == runs[1].discovery_curve()
        assert runs[0].discovered == runs[1].discovered
