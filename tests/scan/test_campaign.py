"""Tests for budgeted scanning campaigns."""

import numpy as np
import pytest

from repro.scan.campaign import CampaignResult, ScanCampaign, run_campaign
from repro.scan.responder import SimulatedResponder


@pytest.fixture(scope="module")
def setup(r1_small):
    population = r1_small.population(0)
    responder = SimulatedResponder(population, ping_rate=0.9, seed=0)
    training = population.sample(600, np.random.default_rng(1))
    return population, responder, training


class TestCampaign:
    def test_budget_respected(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=5000,
                              round_size=2000)
        assert result.total_probes <= 5000
        assert len(result.rounds) >= 2

    def test_partial_final_round(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=5000,
                              round_size=2000)
        assert result.rounds[-1].probes_sent == 1000  # 5000 - 2*2000

    def test_cumulative_bookkeeping(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=6000,
                              round_size=3000)
        running_probes = 0
        running_hits = 0
        for round_ in result.rounds:
            running_probes += round_.probes_sent
            running_hits += round_.hits
            assert round_.cumulative_probes == running_probes
            assert round_.cumulative_hits == running_hits
        assert result.total_hits == running_hits

    def test_discovery_curve_monotone(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=8000,
                              round_size=2000)
        curve = result.discovery_curve()
        assert curve == sorted(curve)
        assert curve[-1] > 0  # R1 is scannable

    def test_hits_are_real(self, setup):
        population, responder, training = setup
        result = run_campaign(training, responder, probe_budget=4000,
                              round_size=2000)
        members = set(population.to_ints())
        assert all(v in members for v in result.discovered)

    def test_no_probe_repeats_training(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=4000,
                              round_size=2000)
        training_values = set(training.to_ints())
        assert not (set(result.discovered) & training_values)

    def test_new_prefixes_tracked(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=8000,
                              round_size=4000)
        assert result.rounds[-1].new_prefixes64 == len(
            result.discovered_prefixes64
        )
        assert result.discovered_prefixes64  # R1 yields unseen /64s

    def test_adaptive_refits(self, setup):
        _, responder, training = setup
        adaptive = run_campaign(training, responder, probe_budget=8000,
                                round_size=2000, adaptive=True, seed=3)
        static = run_campaign(training, responder, probe_budget=8000,
                              round_size=2000, adaptive=False, seed=3)
        # Both complete within budget and find targets; the adaptive
        # variant must never probe duplicates despite refitting.
        assert adaptive.total_probes <= 8000
        assert len(set(adaptive.discovered)) == len(adaptive.discovered)
        assert adaptive.total_hits > 0 and static.total_hits > 0

    def test_exhausted_support_stops_early(self):
        # A constant network: the model can generate only one candidate.
        from repro.ipv6.sets import AddressSet

        population = AddressSet.from_ints([42, 43])
        responder = SimulatedResponder(population, ping_rate=1.0)
        training = AddressSet.from_ints([42] * 20)
        result = run_campaign(training, responder, probe_budget=1000,
                              round_size=100)
        assert result.total_probes < 1000

    def test_validation(self, setup):
        _, responder, training = setup
        with pytest.raises(ValueError):
            ScanCampaign(training, responder, probe_budget=0)
        with pytest.raises(ValueError):
            ScanCampaign(training, responder, round_size=0)

    def test_result_type(self, setup):
        _, responder, training = setup
        result = run_campaign(training, responder, probe_budget=2000,
                              round_size=1000)
        assert isinstance(result, CampaignResult)
        assert all(0 <= r.hit_rate <= 1 for r in result.rounds)
