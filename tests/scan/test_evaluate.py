"""Tests for the Table 4/5/6 experiment harness (scaled down)."""

import pytest

from repro.datasets.networks import build_c5, build_r1, build_s3
from repro.scan.evaluate import (
    prefix_prediction_experiment,
    scan_experiment,
    training_size_sweep,
)


@pytest.fixture(scope="module")
def r1_result():
    network = build_r1(population_size=6000)
    return scan_experiment(
        network, train_size=300, n_candidates=3000, seed=0
    )


class TestScanExperiment:
    def test_result_consistency(self, r1_result):
        r = r1_result
        assert r.n_candidates <= 3000
        assert r.found_overall <= r.n_candidates
        assert r.found_test_set <= r.found_overall
        assert max(r.found_ping, r.found_rdns) <= r.found_overall
        assert 0 <= r.success_rate <= 1

    def test_routers_scannable(self, r1_result):
        # R1's ::1/::2 pattern is learnable → nonzero success.
        assert r1_result.found_overall > 0

    def test_new_prefixes_found(self, r1_result):
        # The paper's headline: /64s never seen in training are found.
        assert r1_result.new_prefixes64 > 0

    def test_row_rendering(self, r1_result):
        row = r1_result.row()
        assert "R1" in row and "success" in row

    def test_deterministic(self):
        network = build_s3(population_size=5000)
        a = scan_experiment(network, train_size=200, n_candidates=500, seed=3)
        b = scan_experiment(network, train_size=200, n_candidates=500, seed=3)
        assert a == b

    def test_dense_network_high_success(self):
        network = build_s3(population_size=20000)
        result = scan_experiment(
            network, train_size=500, n_candidates=2000, seed=1
        )
        # At this scaled-down population the host-space density is
        # ~3.8%, and generated candidates hit at roughly that rate.
        assert result.success_rate > 0.02


class TestPrefixPrediction:
    def test_result_consistency(self):
        network = build_c5(population_size=20000)
        result = prefix_prediction_experiment(
            network, train_size=300, n_candidates=3000, seed=0
        )
        assert result.predicted_day <= result.predicted_week
        assert result.predicted_week <= result.n_candidates
        assert 0 <= result.success_rate_week <= 1
        assert "C5" in result.row()

    def test_dense_client_predictable(self):
        network = build_c5(population_size=20000)
        result = prefix_prediction_experiment(
            network, train_size=300, n_candidates=3000, seed=0
        )
        assert result.success_rate_week > 0.02


class TestTrainingSizeSweep:
    def test_sweep_returns_requested_sizes(self):
        network = build_s3(population_size=8000)
        results = training_size_sweep(
            network,
            train_sizes=(100, 500),
            n_candidates=1000,
            seed=0,
        )
        assert set(results) == {100, 500}
        assert all(0 <= v <= 1 for v in results.values())

    def test_oversized_training_skipped(self):
        network = build_s3(population_size=3000)
        results = training_size_sweep(
            network,
            train_sizes=(100, 10_000),
            n_candidates=500,
            seed=0,
        )
        assert 10_000 not in results

    def test_prefix_mode(self):
        network = build_c5(population_size=10000)
        results = training_size_sweep(
            network,
            train_sizes=(200,),
            n_candidates=1000,
            prefix_mode=True,
            seed=0,
        )
        assert set(results) == {200}


class _PrefixNetwork:
    """A width-16 (/64-identifier) 'network' for prefix-mode scans."""

    name = "P16"
    ping_rate = 1.0
    rdns_rate = 0.5

    def population(self, seed=0):
        import numpy as np

        from repro.ipv6.sets import AddressSet

        rng = np.random.default_rng(seed + 40)
        subnets = rng.integers(0, 8, size=4000)
        hosts = rng.integers(0, 1 << 12, size=4000)
        values = [
            0x20010DB8_0000_0000 | (int(s) << 16) | int(h)
            for s, h in zip(subnets, hosts)
        ]
        return AddressSet.from_ints(values, width=16, already_truncated=True)


class TestWidth16ScanExperiment:
    """Regression for the hardcoded ``prefixes64(..., 32)`` width bug.

    In prefix mode a candidate row *is* its /64 identifier and training
    is excluded from candidates, so every overall hit sits in a new /64:
    ``new_prefixes64`` must equal ``found_overall``.  The seed code
    shifted the overall side by 64 bits before subtracting, collapsing
    the count to garbage (and in fact could not run width-16 at all —
    it fitted the model at the default width 32).
    """

    def test_new_prefixes_equal_overall(self):
        result = scan_experiment(
            _PrefixNetwork(), train_size=300, n_candidates=2000, seed=0
        )
        assert result.found_overall > 0
        assert result.new_prefixes64 == result.found_overall

    def test_deterministic(self):
        a = scan_experiment(_PrefixNetwork(), train_size=200,
                            n_candidates=500, seed=3)
        b = scan_experiment(_PrefixNetwork(), train_size=200,
                            n_candidates=500, seed=3)
        assert a == b
