"""Tests for the baseline methods (addr6 classifier, IID patterns)."""

import numpy as np
import pytest

from repro.baselines.addr6 import (
    IIDClass,
    classify_address,
    classify_iid,
    looks_predictable,
)
from repro.baselines.iid_patterns import IIDPatternModel
from repro.ipv6.address import IPv6Address
from repro.ipv6.eui64 import iid_from_ipv4_decimal_words, iid_from_mac
from repro.ipv6.sets import AddressSet


class TestAddr6Classifier:
    def test_eui64(self):
        iid = iid_from_mac("00:11:22:33:44:55")
        assert classify_iid(iid) is IIDClass.EUI64

    def test_embedded_ipv4_decimal_words(self):
        iid = iid_from_ipv4_decimal_words("192.168.1.10")
        assert classify_iid(iid) is IIDClass.EMBEDDED_IPV4

    def test_embedded_ipv4_hex(self):
        assert classify_iid(0xC0A8_0A01) is IIDClass.EMBEDDED_IPV4

    def test_service_port(self):
        assert classify_iid(443) is IIDClass.EMBEDDED_PORT
        assert classify_iid(80) is IIDClass.EMBEDDED_PORT

    def test_low_byte(self):
        assert classify_iid(1) is IIDClass.LOW_BYTE
        assert classify_iid(0x2F0) is IIDClass.LOW_BYTE

    def test_pattern_bytes(self):
        assert classify_iid(0xFFFF_FFFF_FFFF_0000) is IIDClass.PATTERN_BYTES

    def test_randomized(self):
        rng = np.random.default_rng(0)
        iid = int(rng.integers(1 << 60, 1 << 63))
        assert classify_iid(iid) is IIDClass.RANDOMIZED

    def test_classify_full_address(self):
        assert classify_address("2001:db8::443") is IIDClass.EMBEDDED_PORT

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            classify_iid(1 << 64)

    def test_predictability_verdicts(self):
        assert looks_predictable(IIDClass.LOW_BYTE)
        assert not looks_predictable(IIDClass.RANDOMIZED)

    def test_paper_section1_misclassification(self):
        """The §1 example: addr6 calls this IID randomized even though
        a thousand siblings share its /104 prefix — statelessness is
        the baseline's structural weakness."""
        address = IPv6Address("2001:db8:221:ffff:ffff:ffff:ffc0:122a")
        assert classify_address(address) is IIDClass.RANDOMIZED


class TestEntropyIPGetsSection1Right:
    def test_set_level_analysis_sees_structure(self):
        # The same §1 case, with the sibling context addr6 ignores:
        # 1000 addresses in 2001:db8:221:ffff:ffff:ffff:ff::/104.
        from repro.core.pipeline import EntropyIP
        from repro.stats.entropy import nybble_entropies

        rng = np.random.default_rng(1)
        base = IPv6Address("2001:db8:221:ffff:ffff:ffff:ff00:0").value
        values = [base | int(v) for v in rng.choice(1 << 24, 1000, replace=False)]
        address_set = AddressSet.from_ints(values)
        entropy = nybble_entropies(address_set)
        # Entropy exposes the truth: nybbles 1-26 constant (structured),
        # only the last 6 vary.
        assert np.all(entropy[:26] == 0)
        analysis = EntropyIP.fit(address_set)
        constant = [
            m for m in analysis.encoder.mined_segments if m.cardinality == 1
        ]
        assert len(constant) >= 2  # the /104 structure is captured


class TestIIDPatternBaseline:
    @pytest.fixture(scope="class")
    def r1_training(self, r1_small):
        return r1_small.sample(800, seed=0)

    def test_fit_learns_recurring_values(self, r1_training):
        model = IIDPatternModel.fit(r1_training)
        # R1 IIDs are ::1/::2 → the pattern space is tiny.
        assert model.pattern_space_size() <= 4

    def test_generated_iids_match_pattern(self, r1_training, rng):
        model = IIDPatternModel.fit(r1_training)
        iids = model.generate_iids(100, rng)
        assert set(iids) <= {1, 2}

    def test_targets_require_known_prefixes(self, r1_training, rng):
        model = IIDPatternModel.fit(r1_training)
        with pytest.raises(ValueError):
            model.generate_targets([], 10, rng)

    def test_targets_are_prefix_times_pattern(self, r1_training, rng):
        model = IIDPatternModel.fit(r1_training)
        prefixes = [0x20010DB8 << 32 | i for i in range(5)]
        targets = model.generate_targets(prefixes, 9, rng)
        assert len(targets) == 9
        assert len(set(targets)) == 9
        for target in targets:
            assert target >> 64 in set(prefixes)
            assert target & ((1 << 64) - 1) in {1, 2}

    def test_small_space_returns_partial(self, r1_training, rng):
        model = IIDPatternModel.fit(r1_training)
        targets = model.generate_targets([0x1], 100, rng)
        assert len(targets) <= 2  # only ::1/::2 exist under one prefix

    def test_random_iids_keep_full_pools(self, rng):
        # A privacy-address set has no recurring values → uniform pools.
        values = [
            (0x20010DB8 << 96) | int(rng.integers(0, 1 << 63))
            for _ in range(500)
        ]
        model = IIDPatternModel.fit(AddressSet.from_ints(values))
        assert model.pattern_space_size() >= 16 ** 14

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            IIDPatternModel.fit(AddressSet.from_ints([1], width=16))
        with pytest.raises(ValueError):
            IIDPatternModel.fit(AddressSet.empty())
