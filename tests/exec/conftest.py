"""Shared fixtures for the exec suite.

``REPRO_EXEC_BACKEND`` selects the execution backend the parallel
calls in this suite run on (``thread`` default, ``process``).  The CI
matrix re-runs the suite with ``REPRO_EXEC_BACKEND=process`` so the
bit-identity assertions — parallel output equals serial output — are
exercised across the process boundary too, with zero duplicated test
code.
"""

import os

import pytest


@pytest.fixture(scope="session")
def exec_backend():
    backend = os.environ.get("REPRO_EXEC_BACKEND", "thread")
    assert backend in ("thread", "process"), backend
    return backend
