"""Determinism and correctness tests for the sharded execution engine.

The engine's contract: the shard decomposition (sizes, RNG streams) is
a pure function of the caller's seed and the ``shards`` count, and the
worker count only decides how many shards run concurrently — the
``exec_backend`` only *where*.  Everything here pins that —
``workers=4`` must be bit-identical to ``workers=1`` across
generation, scan experiments and whole campaigns, on either backend
(the CI matrix re-runs this suite with ``REPRO_EXEC_BACKEND=process``).
"""

import os

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.errors import ExecBackendError
from repro.exec import (
    DEFAULT_SHARDS,
    WorkerPool,
    available_cpus,
    derive_seed_sequence,
    resolve_exec_backend,
    resolve_workers,
    shard_bounds,
    shard_sizes,
    sharded_map_rows,
)
from repro.exec.engine import _draw_shard_task
from repro.exec.sharding import spawn_generators
from repro.scan.campaign import run_campaign
from repro.scan.evaluate import scan_experiment
from repro.scan.responder import SimulatedResponder


@pytest.fixture(scope="module")
def s1_model():
    network = build_network("S1")
    train = network.sample(600, seed=3)
    return EntropyIP.fit(train).model, train


@pytest.fixture(scope="module")
def r1_model():
    network = build_network("R1")
    train = network.sample(600, seed=3)
    return EntropyIP.fit(train).model, train


class TestSharding:
    def test_shard_sizes_sum_and_balance(self):
        for total in (0, 1, 7, 8, 9, 1000, 12345):
            for shards in (1, 2, 8, 13):
                sizes = shard_sizes(total, shards)
                assert sizes.sum() == total
                assert len(sizes) == shards
                assert sizes.max() - sizes.min() <= 1

    def test_shard_sizes_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shard_sizes(-1, 4)
        with pytest.raises(ValueError):
            shard_sizes(10, 0)

    def test_shard_bounds_cover_range(self):
        bounds = shard_bounds(103, 8)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 103
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_derived_sequence_is_deterministic(self):
        a = derive_seed_sequence(np.random.default_rng(11))
        b = derive_seed_sequence(np.random.default_rng(11))
        c = derive_seed_sequence(np.random.default_rng(12))
        assert a.entropy == b.entropy
        assert a.entropy != c.entropy

    def test_spawned_generators_are_independent_and_reproducible(self):
        first = spawn_generators(derive_seed_sequence(np.random.default_rng(5)), 4)
        second = spawn_generators(derive_seed_sequence(np.random.default_rng(5)), 4)
        draws_first = [g.random(8).tolist() for g in first]
        draws_second = [g.random(8).tolist() for g in second]
        assert draws_first == draws_second
        # Distinct shards see distinct streams.
        assert draws_first[0] != draws_first[1]

    def test_spawn_advances_across_rounds(self):
        sequence = derive_seed_sequence(np.random.default_rng(5))
        round1 = [np.random.default_rng(c).random(4).tolist() for c in sequence.spawn(3)]
        round2 = [np.random.default_rng(c).random(4).tolist() for c in sequence.spawn(3)]
        assert round1 != round2


class TestWorkerPool:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_negative_workers_respect_affinity_mask(self, monkeypatch):
        """Regression: ``resolve_workers(-1)`` must size by the
        scheduling-affinity mask, not ``os.cpu_count()`` — a cgroup-
        restricted container pinned to 2 of 64 cores gets 2 workers."""
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(
                os, "sched_getaffinity", lambda pid: {0, 1}, raising=False
            )
            assert available_cpus() == 2
            assert resolve_workers(-1) == 2
            assert resolve_workers(-4) == 2
        else:  # pragma: no cover - non-Linux fallback
            assert available_cpus() == 64

    def test_negative_workers_fall_back_to_cpu_count(self, monkeypatch):
        """Platforms without sched_getaffinity use os.cpu_count()."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_cpus() == 6
        assert resolve_workers(-1) == 6

    def test_resolve_exec_backend(self):
        assert resolve_exec_backend(None) == "thread"
        assert resolve_exec_backend("thread") == "thread"
        assert resolve_exec_backend("process") == "process"
        with pytest.raises(ExecBackendError):
            resolve_exec_backend("mpi")
        # The typed error is also a ValueError (and a ReproError).
        with pytest.raises(ValueError):
            resolve_exec_backend("mpi")

    def test_map_preserves_order(self):
        pool = WorkerPool(4)
        assert pool.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_map_serial_when_one_worker(self):
        pool = WorkerPool(1)
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_map_propagates_exceptions(self):
        pool = WorkerPool(4)

        def boom(x):
            if x == 3:
                raise RuntimeError("shard failed")
            return x

        with pytest.raises(RuntimeError):
            pool.map(boom, range(6))


class TestPoolLifetime:
    def test_executor_is_long_lived_and_reused(self):
        pool = WorkerPool(2)
        assert pool.closed  # lazy: nothing spawned yet
        pool.map(lambda x: x, range(8))
        assert not pool.closed
        first = pool._executor
        pool.map(lambda x: x, range(8))
        assert pool._executor is first  # reused, not rebuilt per map
        pool.close()
        assert pool.closed

    def test_close_is_idempotent_and_pool_recreates(self):
        pool = WorkerPool(2)
        pool.map(lambda x: x, range(4))
        pool.close()
        pool.close()
        # A closed pool transparently comes back on the next map.
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        pool.close()

    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            pool.map(lambda x: x, range(4))
            assert not pool.closed
        assert pool.closed

    def test_serial_pool_never_spawns_executor(self):
        pool = WorkerPool(1)
        pool.map(lambda x: x, range(8))
        assert pool._executor is None

    def test_session_reuses_one_pool_and_closes_it(self, s1_model):
        model, train = s1_model
        session = model.session(exclude=train)
        rng = np.random.default_rng(7)
        model.generate_set(2000, rng, state=session, workers=2)
        pool = session.get_pool(2, None)
        assert not pool.closed
        model.generate_set(2000, rng, state=session, workers=2)
        assert session.get_pool(2, None) is pool  # same pool, same executor
        session.close()
        assert pool.closed

    def test_session_context_manager_closes_pools(self, s1_model):
        model, train = s1_model
        with model.session(exclude=train) as session:
            model.generate_set(
                1000, np.random.default_rng(7), state=session, workers=2
            )
            pool = session.get_pool(2, None)
        assert pool.closed


class TestProcessBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecBackendError):
            WorkerPool(2, backend="mpi")

    def test_unpicklable_task_degrades_to_threads(self):
        pool = WorkerPool(2, backend="process")
        captured = []  # closures cannot cross a process boundary
        out = pool.map(lambda x: (captured.append(x) or x * 2), [1, 2, 3])
        assert out == [2, 4, 6]
        assert pool.active_backend == "thread"
        assert pool.backend == "process"  # the request is remembered
        assert "->" in repr(pool)
        pool.close()

    def test_unpicklable_task_without_fallback_raises(self):
        pool = WorkerPool(2, backend="process", fallback=False)
        with pytest.raises(ExecBackendError):
            pool.map(lambda x: x * 2, [1, 2, 3])
        pool.close()

    def test_module_level_task_runs_on_processes(self):
        pool = WorkerPool(2, backend="process")
        try:
            out = pool.map(_square, [1, 2, 3, 4])
        except ExecBackendError:  # pragma: no cover - sandboxed hosts
            pytest.skip("process pool cannot start here")
        assert out == [1, 4, 9, 16]
        # No fallback happened (or, on fork-less sandboxes, the pool
        # degraded and said so) — either way the output is identical.
        assert pool.active_backend in ("process", "thread")
        pool.close()

    def test_generate_process_backend_bit_identical(self, s1_model):
        model, train = s1_model
        ref = model.generate_set(
            8000, np.random.default_rng(7), exclude=train, workers=1
        )
        prc = model.generate_set(
            8000,
            np.random.default_rng(7),
            exclude=train,
            workers=2,
            exec_backend="process",
        )
        assert np.array_equal(ref.matrix, prc.matrix)
        assert np.array_equal(ref.packed_rows(), prc.packed_rows())

    def test_generate_process_two_step_bit_identical(self, s1_model):
        model, train = s1_model
        ref = model.generate_set(
            4000,
            np.random.default_rng(5),
            exclude=train,
            workers=1,
            fused=False,
        )
        prc = model.generate_set(
            4000,
            np.random.default_rng(5),
            exclude=train,
            workers=2,
            fused=False,
            exec_backend="process",
        )
        assert np.array_equal(ref.matrix, prc.matrix)

    def test_evidence_process_backend_bit_identical(self, s1_model):
        model, _ = s1_model
        label = model.encoder.variable_names[0]
        ref = model.generate_set(
            500, np.random.default_rng(13), evidence={label: 0}, workers=1
        )
        prc = model.generate_set(
            500,
            np.random.default_rng(13),
            evidence={label: 0},
            workers=2,
            exec_backend="process",
        )
        assert np.array_equal(ref.matrix, prc.matrix)

    def test_exec_backend_alone_keeps_serial_stream(self, s1_model):
        """Regression: ``exec_backend`` is a pure throughput knob.  With
        ``workers``/``shards`` unset it must NOT select the sharded
        route (whose stream legitimately differs from serial), so
        passing it alone is output-identical to the plain serial call
        — the contract the CLI help and ``SessionSpec`` document."""
        model, train = s1_model
        ref = model.generate_set(
            3000, np.random.default_rng(3), exclude=train
        )
        for backend in ("thread", "process"):
            out = model.generate_set(
                3000,
                np.random.default_rng(3),
                exclude=train,
                exec_backend=backend,
            )
            assert np.array_equal(ref.matrix, out.matrix), backend

    def test_unpicklable_model_degrades_to_threads(
        self, s1_model, monkeypatch
    ):
        """A model that cannot cross the process boundary degrades the
        pool to threads like every other process-path failure — it must
        not raise raw out of the model-pickling step."""
        import pickle

        import repro.exec.engine as engine_mod

        model, train = s1_model

        def refuse(obj, *args, **kwargs):
            raise pickle.PicklingError("model refuses to pickle")

        monkeypatch.setattr(engine_mod.pickle, "dumps", refuse)
        session = model.session(exclude=train)
        try:
            out = model.generate_set(
                2000,
                np.random.default_rng(11),
                state=session,
                workers=2,
                exec_backend="process",
            )
            pool = session.get_pool(2, "process")
            assert pool.active_backend == "thread"
            assert pool.backend == "process"  # the request is remembered
        finally:
            session.close()
        ref = model.generate_set(
            2000, np.random.default_rng(11), exclude=train, workers=2
        )
        assert np.array_equal(ref.matrix, out.matrix)

    def test_degrade_without_fallback_raises(self):
        pool = WorkerPool(2, backend="process", fallback=False)
        with pytest.raises(ExecBackendError):
            pool.degrade_to_threads(RuntimeError("boom"))
        pool.close()

    def test_multithreaded_parent_avoids_fork(self):
        """Forking a multithreaded parent can copy another thread's
        held lock into the child permanently locked; with other
        threads alive the pool must pick forkserver, not fork."""
        import multiprocessing
        import threading

        if "forkserver" not in multiprocessing.get_all_start_methods():
            pytest.skip("forkserver unavailable on this platform")
        pool = WorkerPool(2, backend="process")
        release = threading.Event()
        helper = threading.Thread(target=release.wait)
        helper.start()
        try:
            executor = pool._make_executor("process")
            try:
                assert (
                    executor._mp_context.get_start_method() == "forkserver"
                )
            finally:
                executor.shutdown(wait=False)
        finally:
            release.set()
            helper.join()

    def test_single_threaded_parent_keeps_fork(self):
        import multiprocessing
        import threading

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork unavailable on this platform")
        if threading.active_count() > 1:
            pytest.skip("test runner has background threads")
        pool = WorkerPool(2, backend="process")
        executor = pool._make_executor("process")
        try:
            assert executor._mp_context.get_start_method() == "fork"
        finally:
            executor.shutdown(wait=False)


def _square(x):
    return x * x


class TestEmptyShards:
    """A batch smaller than ``shards`` produces zero-size shards; they
    must never reach a sampler (size=0 draws are skipped entirely)."""

    @pytest.mark.parametrize("fused", [None, False])
    @pytest.mark.parametrize("backend", [None, "process"])
    def test_n_smaller_than_shards(self, s1_model, fused, backend):
        model, train = s1_model
        out = model.generate_set(
            10,
            np.random.default_rng(9),
            exclude=train,
            workers=2,
            shards=5000,  # far beyond the 4096-row batch floor
            fused=fused,
            exec_backend=backend,
        )
        assert len(out) == 10
        uniques = {tuple(row) for row in out.matrix.tolist()}
        assert len(uniques) == 10
        assert not train.contains_rows(out).any()

    @pytest.mark.parametrize("backend", [None, "process"])
    def test_n_zero(self, s1_model, backend):
        model, train = s1_model
        out = model.generate_set(
            0,
            np.random.default_rng(9),
            exclude=train,
            workers=2,
            exec_backend=backend,
        )
        assert len(out) == 0
        assert out.width == model.encoder.width

    @pytest.mark.parametrize("use_fused", [True, False])
    def test_zero_size_task_returns_shaped_empties(self, s1_model, use_fused):
        import pickle

        model, _ = s1_model
        payload = pickle.dumps(model)
        child = np.random.SeedSequence(0)
        matrix, words = _draw_shard_task(
            ("tok", payload, use_fused, None, 0, child, 0, 0)
        )
        width = model.encoder.width
        assert words.shape == (0, (width + 15) // 16)
        assert words.dtype == np.uint64
        if use_fused:
            assert matrix is None
        else:
            assert matrix.shape == (0, width)


class TestShardedMapRows:
    def test_matches_inline_result(self):
        values = np.arange(100_000, dtype=np.int64)

        def fn(start, stop):
            return values[start:stop] % 7 == 0

        serial = sharded_map_rows(fn, len(values), workers=None)
        parallel = sharded_map_rows(fn, len(values), workers=4)
        assert np.array_equal(serial, parallel)

    def test_small_inputs_run_inline(self):
        calls = []

        def fn(start, stop):
            calls.append((start, stop))
            return np.zeros(stop - start, dtype=bool)

        sharded_map_rows(fn, 100, workers=4)
        assert calls == [(0, 100)]


class TestGenerationDeterminism:
    """Same seed, any worker count → bit-identical generate_set output."""

    @pytest.mark.parametrize("fixture", ["s1_model", "r1_model"])
    def test_workers_bit_identical(self, fixture, request, exec_backend):
        model, train = request.getfixturevalue(fixture)
        # The workers=1 reference always runs the thread (inline) path;
        # the parallel runs use the suite's backend — under
        # REPRO_EXEC_BACKEND=process this asserts serial-thread ≡
        # parallel-process, the full cross-backend contract.
        rng = np.random.default_rng(7)
        results = [
            model.generate_set(20_000, rng, exclude=train, workers=1)
        ]
        for workers in (2, 4):
            rng = np.random.default_rng(7)
            results.append(
                model.generate_set(
                    20_000,
                    rng,
                    exclude=train,
                    workers=workers,
                    exec_backend=exec_backend,
                )
            )
        assert np.array_equal(results[0].matrix, results[1].matrix)
        assert np.array_equal(results[0].matrix, results[2].matrix)
        # The packed words travel with the rows and must agree too.
        assert np.array_equal(
            results[0].packed_rows(), results[2].packed_rows()
        )

    def test_changing_shards_changes_decomposition_not_contract(self, s1_model):
        model, train = s1_model
        rng = np.random.default_rng(7)
        base = model.generate_set(5000, rng, exclude=train, workers=1, shards=4)
        rng = np.random.default_rng(7)
        same = model.generate_set(5000, rng, exclude=train, workers=4, shards=4)
        assert np.array_equal(base.matrix, same.matrix)
        # Output rows are distinct and never in the exclusion set.
        assert len(base) == 5000
        assert not train.contains_rows(base).any()
        uniques = {tuple(row) for row in base.matrix.tolist()}
        assert len(uniques) == len(base)

    def test_default_shard_count_used(self, s1_model):
        model, train = s1_model
        rng = np.random.default_rng(7)
        explicit = model.generate_set(
            3000, rng, exclude=train, workers=1, shards=DEFAULT_SHARDS
        )
        rng = np.random.default_rng(7)
        implicit = model.generate_set(3000, rng, exclude=train, workers=1)
        assert np.array_equal(explicit.matrix, implicit.matrix)

    def test_evidence_path_is_worker_invariant(self, s1_model):
        model, _ = s1_model
        label = model.encoder.variable_names[0]
        results = []
        for workers in (1, 4):
            rng = np.random.default_rng(13)
            results.append(
                model.generate_set(
                    500, rng, evidence={label: 0}, workers=workers
                )
            )
        assert np.array_equal(results[0].matrix, results[1].matrix)


class TestScanDeterminism:
    def test_scan_experiment_workers_bit_identical(self, exec_backend):
        network = build_network("S1")
        counts = []
        for workers, backend in ((1, None), (4, exec_backend)):
            result = scan_experiment(
                network,
                train_size=400,
                n_candidates=20_000,
                seed=1,
                workers=workers,
                exec_backend=backend,
            )
            counts.append(
                (
                    result.found_test_set,
                    result.found_ping,
                    result.found_rdns,
                    result.found_overall,
                    result.new_prefixes64,
                )
            )
        assert counts[0] == counts[1]

    def test_campaign_workers_bit_identical(self, exec_backend):
        network = build_network("R1")
        train = network.sample(400, seed=2)
        responder = SimulatedResponder(
            network.population(2),
            ping_rate=network.ping_rate,
            rdns_rate=network.rdns_rate,
            seed=2,
        )
        outcomes = []
        for workers, backend in ((1, None), (4, exec_backend)):
            result = run_campaign(
                train,
                responder,
                probe_budget=9000,
                round_size=3000,
                adaptive=True,
                seed=2,
                workers=workers,
                exec_backend=backend,
            )
            outcomes.append(
                (
                    len(result.rounds),
                    tuple(result.discovery_curve()),
                    tuple(r.new_prefixes64 for r in result.rounds),
                    tuple(result.discovered),
                    tuple(sorted(result.discovered_prefixes64)),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_oracle_masks_match_serial_masks(self):
        network = build_network("S1")
        population = network.population(4)
        responder = SimulatedResponder(
            population,
            ping_rate=network.ping_rate,
            rdns_rate=network.rdns_rate,
            seed=4,
        )
        candidates = population.sample(
            min(20_000, len(population)), np.random.default_rng(0)
        )
        member, ping, rdns = responder.oracle_masks(candidates, workers=4)
        assert np.array_equal(member, responder.member_mask(candidates))
        assert np.array_equal(ping, responder.ping_mask(candidates))
        assert np.array_equal(rdns, responder.rdns_mask(candidates))
