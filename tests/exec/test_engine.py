"""Determinism and correctness tests for the sharded execution engine.

The engine's contract: the shard decomposition (sizes, RNG streams) is
a pure function of the caller's seed and the ``shards`` count, and the
worker count only decides how many shards run concurrently.  Everything
here pins that — ``workers=4`` must be bit-identical to ``workers=1``
across generation, scan experiments and whole campaigns.
"""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.exec import (
    DEFAULT_SHARDS,
    WorkerPool,
    derive_seed_sequence,
    resolve_workers,
    shard_bounds,
    shard_sizes,
    sharded_map_rows,
)
from repro.exec.sharding import spawn_generators
from repro.scan.campaign import run_campaign
from repro.scan.evaluate import scan_experiment
from repro.scan.responder import SimulatedResponder


@pytest.fixture(scope="module")
def s1_model():
    network = build_network("S1")
    train = network.sample(600, seed=3)
    return EntropyIP.fit(train).model, train


@pytest.fixture(scope="module")
def r1_model():
    network = build_network("R1")
    train = network.sample(600, seed=3)
    return EntropyIP.fit(train).model, train


class TestSharding:
    def test_shard_sizes_sum_and_balance(self):
        for total in (0, 1, 7, 8, 9, 1000, 12345):
            for shards in (1, 2, 8, 13):
                sizes = shard_sizes(total, shards)
                assert sizes.sum() == total
                assert len(sizes) == shards
                assert sizes.max() - sizes.min() <= 1

    def test_shard_sizes_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            shard_sizes(-1, 4)
        with pytest.raises(ValueError):
            shard_sizes(10, 0)

    def test_shard_bounds_cover_range(self):
        bounds = shard_bounds(103, 8)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 103
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_derived_sequence_is_deterministic(self):
        a = derive_seed_sequence(np.random.default_rng(11))
        b = derive_seed_sequence(np.random.default_rng(11))
        c = derive_seed_sequence(np.random.default_rng(12))
        assert a.entropy == b.entropy
        assert a.entropy != c.entropy

    def test_spawned_generators_are_independent_and_reproducible(self):
        first = spawn_generators(derive_seed_sequence(np.random.default_rng(5)), 4)
        second = spawn_generators(derive_seed_sequence(np.random.default_rng(5)), 4)
        draws_first = [g.random(8).tolist() for g in first]
        draws_second = [g.random(8).tolist() for g in second]
        assert draws_first == draws_second
        # Distinct shards see distinct streams.
        assert draws_first[0] != draws_first[1]

    def test_spawn_advances_across_rounds(self):
        sequence = derive_seed_sequence(np.random.default_rng(5))
        round1 = [np.random.default_rng(c).random(4).tolist() for c in sequence.spawn(3)]
        round2 = [np.random.default_rng(c).random(4).tolist() for c in sequence.spawn(3)]
        assert round1 != round2


class TestWorkerPool:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(-1) >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_map_preserves_order(self):
        pool = WorkerPool(4)
        assert pool.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_map_serial_when_one_worker(self):
        pool = WorkerPool(1)
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_map_propagates_exceptions(self):
        pool = WorkerPool(4)

        def boom(x):
            if x == 3:
                raise RuntimeError("shard failed")
            return x

        with pytest.raises(RuntimeError):
            pool.map(boom, range(6))


class TestShardedMapRows:
    def test_matches_inline_result(self):
        values = np.arange(100_000, dtype=np.int64)

        def fn(start, stop):
            return values[start:stop] % 7 == 0

        serial = sharded_map_rows(fn, len(values), workers=None)
        parallel = sharded_map_rows(fn, len(values), workers=4)
        assert np.array_equal(serial, parallel)

    def test_small_inputs_run_inline(self):
        calls = []

        def fn(start, stop):
            calls.append((start, stop))
            return np.zeros(stop - start, dtype=bool)

        sharded_map_rows(fn, 100, workers=4)
        assert calls == [(0, 100)]


class TestGenerationDeterminism:
    """Same seed, any worker count → bit-identical generate_set output."""

    @pytest.mark.parametrize("fixture", ["s1_model", "r1_model"])
    def test_workers_bit_identical(self, fixture, request):
        model, train = request.getfixturevalue(fixture)
        results = []
        for workers in (1, 2, 4):
            rng = np.random.default_rng(7)
            results.append(
                model.generate_set(20_000, rng, exclude=train, workers=workers)
            )
        assert np.array_equal(results[0].matrix, results[1].matrix)
        assert np.array_equal(results[0].matrix, results[2].matrix)
        # The packed words travel with the rows and must agree too.
        assert np.array_equal(
            results[0].packed_rows(), results[2].packed_rows()
        )

    def test_changing_shards_changes_decomposition_not_contract(self, s1_model):
        model, train = s1_model
        rng = np.random.default_rng(7)
        base = model.generate_set(5000, rng, exclude=train, workers=1, shards=4)
        rng = np.random.default_rng(7)
        same = model.generate_set(5000, rng, exclude=train, workers=4, shards=4)
        assert np.array_equal(base.matrix, same.matrix)
        # Output rows are distinct and never in the exclusion set.
        assert len(base) == 5000
        assert not train.contains_rows(base).any()
        uniques = {tuple(row) for row in base.matrix.tolist()}
        assert len(uniques) == len(base)

    def test_default_shard_count_used(self, s1_model):
        model, train = s1_model
        rng = np.random.default_rng(7)
        explicit = model.generate_set(
            3000, rng, exclude=train, workers=1, shards=DEFAULT_SHARDS
        )
        rng = np.random.default_rng(7)
        implicit = model.generate_set(3000, rng, exclude=train, workers=1)
        assert np.array_equal(explicit.matrix, implicit.matrix)

    def test_evidence_path_is_worker_invariant(self, s1_model):
        model, _ = s1_model
        label = model.encoder.variable_names[0]
        results = []
        for workers in (1, 4):
            rng = np.random.default_rng(13)
            results.append(
                model.generate_set(
                    500, rng, evidence={label: 0}, workers=workers
                )
            )
        assert np.array_equal(results[0].matrix, results[1].matrix)


class TestScanDeterminism:
    def test_scan_experiment_workers_bit_identical(self):
        network = build_network("S1")
        counts = []
        for workers in (1, 4):
            result = scan_experiment(
                network,
                train_size=400,
                n_candidates=20_000,
                seed=1,
                workers=workers,
            )
            counts.append(
                (
                    result.found_test_set,
                    result.found_ping,
                    result.found_rdns,
                    result.found_overall,
                    result.new_prefixes64,
                )
            )
        assert counts[0] == counts[1]

    def test_campaign_workers_bit_identical(self):
        network = build_network("R1")
        train = network.sample(400, seed=2)
        responder = SimulatedResponder(
            network.population(2),
            ping_rate=network.ping_rate,
            rdns_rate=network.rdns_rate,
            seed=2,
        )
        outcomes = []
        for workers in (1, 4):
            result = run_campaign(
                train,
                responder,
                probe_budget=9000,
                round_size=3000,
                adaptive=True,
                seed=2,
                workers=workers,
            )
            outcomes.append(
                (
                    len(result.rounds),
                    tuple(result.discovery_curve()),
                    tuple(r.new_prefixes64 for r in result.rounds),
                    tuple(result.discovered),
                    tuple(sorted(result.discovered_prefixes64)),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_oracle_masks_match_serial_masks(self):
        network = build_network("S1")
        population = network.population(4)
        responder = SimulatedResponder(
            population,
            ping_rate=network.ping_rate,
            rdns_rate=network.rdns_rate,
            seed=4,
        )
        candidates = population.sample(
            min(20_000, len(population)), np.random.default_rng(0)
        )
        member, ping, rdns = responder.oracle_masks(candidates, workers=4)
        assert np.array_equal(member, responder.member_mask(candidates))
        assert np.array_equal(ping, responder.ping_mask(candidates))
        assert np.array_equal(rdns, responder.rdns_mask(candidates))
