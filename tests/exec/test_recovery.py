"""Mid-run worker-loss recovery: deterministic faults, identical output.

The tentpole contract under test: losing process workers mid-``map``
(a dispatch error, a worker killed between shards) is recovered by
rebuilding the executor and re-dispatching only the unfinished shards
— and because shard draws are pure functions of ``(seed, shard)``, the
recovered output is **bit-identical** to the fault-free run.  Faults
are injected deterministically through :mod:`repro.faults`, so every
assertion here means the same thing run after run.

The worker-kill scenarios run in a subprocess: ``os._exit`` faults
must be armed before any executor (or its manager thread) exists so
the pool's fork path carries the plan into the workers, and a stray
kill in this process would take the whole test session down with it.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.errors import ExecBackendError
from repro.exec import WorkerPool
from repro.faults import FaultPlan, active_plan

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning"  # fork-with-threads notice on 3.12+
)


def _double(x):
    return x * 2


class TestDispatchFaultRecovery:
    """Parent-side dispatch faults: retried without losing results."""

    def test_recovers_and_counts_one_retry(self):
        with WorkerPool(workers=2, backend="process") as pool:
            with FaultPlan.parse("pool.dispatch@2:raise=OSError").armed():
                assert pool.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
            assert pool.retries == 1
            assert pool.degradations == 0
            assert pool.active_backend == "process"

    def test_exhausted_retries_degrade_to_threads(self):
        plan = FaultPlan.parse(
            "pool.dispatch@1:raise=OSError;pool.dispatch@2:raise=OSError"
        )
        with WorkerPool(workers=2, backend="process", max_retries=1,
                        retry_backoff=0.0) as pool:
            with plan.armed():
                assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.retries == 1
            assert pool.degradations == 1
            assert pool.active_backend == "thread"
            assert pool.stats()["degradations"] == 1

    def test_fallback_false_raises_typed_error(self):
        plan = FaultPlan.parse("pool.dispatch@1:raise=OSError")
        with WorkerPool(workers=2, backend="process", fallback=False,
                        max_retries=0) as pool:
            with plan.armed():
                with pytest.raises(ExecBackendError,
                                   match="process exec backend failed"):
                    pool.map(_double, [1, 2, 3])

    def test_disarmed_pool_runs_clean(self):
        if active_plan() is not None:
            pytest.skip("disarmed-baseline test: an external fault plan "
                        "is armed (CI fault-injection leg)")
        with WorkerPool(workers=2, backend="process") as pool:
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.retries == 0
            assert pool.degradations == 0


#: One deterministic sharded draw; prints a digest of the emitted rows
#: and (when a plan is armed via the environment) asserts the fault
#: actually fired and a retry was recorded.  The plan rides in on
#: ``REPRO_FAULT_PLAN``/``REPRO_FAULT_BOARD`` from process launch — the
#: only arming that reaches pool workers regardless of which
#: multiprocessing start method the executor ends up on.
_DRAW_SCRIPT = textwrap.dedent("""
    import hashlib
    import os

    import numpy as np
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network
    from repro.faults import active_plan

    train = build_network("S1").sample(300, seed=3)
    model = EntropyIP.fit(train).model
    session = model.session(exclude=train)
    out = model.generate_set(
        800, np.random.default_rng(11), state=session,
        workers=2, exec_backend="process",
    )
    if os.environ.get("REPRO_FAULT_PLAN"):
        plan = active_plan()
        assert plan is not None
        assert plan.fired() == 1, f"kill fault never fired: {plan!r}"
        assert session.exec_stats()["retries"] >= 1, \\
            "worker loss recovered without recording a retry"
    session.close()
    print(len(out), hashlib.sha256(
        np.ascontiguousarray(out.packed_rows()).tobytes()
    ).hexdigest())
""")

#: The same kill with recovery disabled: ``fallback=False`` +
#: ``max_retries=0`` on the session-owned pool must surface a typed
#: :class:`ExecBackendError` instead of degrading.
_NO_FALLBACK_SCRIPT = textwrap.dedent("""
    import numpy as np
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network
    from repro.errors import ExecBackendError

    train = build_network("S1").sample(300, seed=3)
    model = EntropyIP.fit(train).model
    session = model.session(exclude=train)
    pool = session.get_pool(2, "process")
    pool._fallback = False
    pool.max_retries = 0
    try:
        model.generate_set(
            800, np.random.default_rng(11), state=session,
            workers=2, exec_backend="process",
        )
    except ExecBackendError:
        print("TYPED-ERROR-OK")
    else:
        raise AssertionError("fallback=False survived a worker kill")
    finally:
        session.close()
""")


def _run_driver(script, tmp_path, plan=None):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    env["PYTHONPATH"] = os.path.join(root, "src")
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_FAULT_BOARD", None)
    if plan is not None:
        board = tmp_path / "board"
        board.mkdir(exist_ok=True)
        env["REPRO_FAULT_PLAN"] = plan
        env["REPRO_FAULT_BOARD"] = str(board)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"driver failed (plan={plan!r})\nstdout: {proc.stdout}"
        f"\nstderr: {proc.stderr}"
    )
    return proc.stdout


class TestWorkerKillRecovery:
    def test_killed_worker_mid_run_is_bit_identical(self, tmp_path):
        clean = _run_driver(_DRAW_SCRIPT, tmp_path)
        faulted = _run_driver(
            _DRAW_SCRIPT, tmp_path, plan="pool.shard@0.1:kill"
        )
        assert clean == faulted, (
            "run recovered from a killed worker emitted different rows"
        )

    def test_no_fallback_surfaces_typed_error(self, tmp_path):
        out = _run_driver(
            _NO_FALLBACK_SCRIPT, tmp_path, plan="pool.shard@0.1:kill"
        )
        assert "TYPED-ERROR-OK" in out


class TestSessionExecStats:
    def test_engine_counts_surface_through_session(self):
        """A dispatch fault during a session draw lands in the
        session's aggregated exec counters (the health-verb path)."""
        import numpy as np

        from repro.core.pipeline import EntropyIP
        from repro.datasets.networks import build_network

        train = build_network("S1").sample(300, seed=3)
        model = EntropyIP.fit(train).model
        session = model.session(exclude=train)
        try:
            rng = np.random.default_rng(5)
            with FaultPlan.parse("pool.dispatch@2:raise=OSError").armed():
                model.generate_set(
                    400, rng, state=session, workers=2,
                    exec_backend="process",
                )
            stats = session.exec_stats()
            assert stats["retries"] >= 1
        finally:
            session.close()
