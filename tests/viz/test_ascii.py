"""Tests for the ASCII plotting primitives."""

import pytest

from repro.viz.ascii import HEAT_RAMP, bar, heat_char, line_plot, sparkline


class TestHeatChar:
    def test_extremes(self):
        assert heat_char(0.0) == HEAT_RAMP[0]
        assert heat_char(1.0) == HEAT_RAMP[-1]

    def test_clamps(self):
        assert heat_char(-5) == HEAT_RAMP[0]
        assert heat_char(99) == HEAT_RAMP[-1]

    def test_degenerate_range(self):
        assert heat_char(0.5, low=1, high=1) == HEAT_RAMP[0]

    def test_monotone(self):
        indices = [HEAT_RAMP.index(heat_char(v / 10)) for v in range(11)]
        assert indices == sorted(indices)


class TestSparkline:
    def test_length(self):
        assert len(sparkline([0, 0.5, 1])) == 3

    def test_extremes(self):
        line = sparkline([0, 1])
        assert line[0] == "▁" and line[1] == "█"


class TestBar:
    def test_proportional(self):
        assert bar(0.5, width=10) == "#####     "
        assert bar(1.0, width=4) == "####"
        assert bar(0.0, width=4) == "    "

    def test_clamps(self):
        assert bar(5.0, width=4) == "####"

    def test_rejects_bad_high(self):
        with pytest.raises(ValueError):
            bar(0.5, high=0)


class TestLinePlot:
    def test_dimensions(self):
        rows = line_plot([[0, 0.5, 1]], height=5)
        assert len(rows) == 5
        assert all(len(r) == 3 for r in rows)

    def test_markers(self):
        rows = line_plot([[1, 1], [0, 0]], height=4, markers="*o")
        assert "*" in rows[0]
        assert "o" in rows[-1]

    def test_empty(self):
        assert line_plot([]) == []
        assert line_plot([[]]) == []
