"""Tests for the figure-level text renderings."""

import pytest

from repro.core.pipeline import EntropyIP
from repro.viz.figures import (
    render_acr_entropy_plot,
    render_mi_heatmap,
    render_snapshot_delta,
    render_bn_graph,
    render_browser,
    render_mining_table,
    render_segment_histogram,
    render_windowing_map,
)


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


class TestEntropyPlot:
    def test_contains_stats(self, analysis):
        text = render_acr_entropy_plot(analysis, title="demo")
        assert "demo" in text
        assert "H_S=" in text
        assert "n=2000" in text

    def test_marks_segments(self, analysis):
        text = render_acr_entropy_plot(analysis)
        assert "|" in text
        assert "A" in text


class TestBrowserRendering:
    def test_unconditioned(self, analysis):
        text = render_browser(analysis.browse())
        assert "unconditioned" in text
        assert "segment A" in text

    def test_conditioned_shows_click(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1")
        text = render_browser(browser)
        assert f"{label}={label}1" in text
        assert "▶" in text


class TestBnGraph:
    def test_lists_edges_or_says_none(self, analysis):
        text = render_bn_graph(analysis)
        assert "Bayesian network" in text
        edges = analysis.model.network.edges()
        if edges:
            parent, child = edges[0]
            assert f"{parent} -> {child}" in text
        else:
            assert "no edges" in text

    def test_highlight(self, analysis):
        target = analysis.segments[-1].label
        text = render_bn_graph(analysis, highlight=target)
        assert f"segment {target} depends directly on" in text


class TestMiningTable:
    def test_contains_codes_and_frequencies(self, analysis):
        text = render_mining_table(analysis)
        assert "A1" in text
        assert "%" in text


class TestHistogram:
    def test_renders_annotations(self, analysis):
        mined = analysis.encoder.mined_segments[-1]
        text = render_segment_histogram(mined, analysis)
        assert f"segment {mined.segment.label}" in text
        assert mined.values[0].code in text


class TestWindowingMap:
    def test_renders_rows(self, analysis):
        text = render_windowing_map(analysis.windowing())
        assert "windowed entropy" in text
        assert "   0 " in text


class TestMiHeatmap:
    def test_renders(self, structured_set):
        text = render_mi_heatmap(structured_set)
        assert "mutual information" in text
        assert len(text.splitlines()) == 33  # header + 32 rows


class TestSnapshotDelta:
    def test_renders(self, structured_set):
        from repro.core.temporal import compare_snapshots

        analysis = EntropyIP.fit(structured_set)
        delta = compare_snapshots(analysis, analysis)
        text = render_snapshot_delta(delta)
        assert "temporal snapshot comparison" in text
        assert "stable" in text
