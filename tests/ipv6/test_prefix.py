"""Tests for CIDR prefixes and aggregate counting."""

import pytest
from hypothesis import given, strategies as st

from repro.ipv6.address import IPv6Address
from repro.ipv6.prefix import (
    Prefix,
    aggregate_counts,
    count_prefixes,
    distinct_prefixes,
    group_by_prefix,
    iter_addresses,
)


class TestPrefix:
    def test_parse_slash_form(self):
        p = Prefix("2001:db8::/32")
        assert p.length == 32
        assert p.network == IPv6Address("2001:db8::")

    def test_network_is_masked(self):
        p = Prefix("2001:db8::1/32")
        assert p.network == IPv6Address("2001:db8::")

    def test_two_argument_form(self):
        assert Prefix("2001:db8::", 32) == Prefix("2001:db8::/32")

    def test_copy_constructor(self):
        p = Prefix("2001:db8::/32")
        assert Prefix(p) == p

    def test_rejects_missing_slash(self):
        with pytest.raises(ValueError):
            Prefix("2001:db8::")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix("2001:db8::/129")

    def test_contains(self):
        p = Prefix("2001:db8::/32")
        assert IPv6Address("2001:db8::1") in p
        assert IPv6Address("2001:db9::1") not in p
        assert p.contains("2001:db8:ffff::")

    def test_subsumes(self):
        outer = Prefix("2001:db8::/32")
        inner = Prefix("2001:db8:1::/48")
        assert outer.subsumes(inner)
        assert not inner.subsumes(outer)
        assert outer.subsumes(outer)

    def test_first_last_and_size(self):
        p = Prefix("2001:db8::/126")
        assert p.num_addresses() == 4
        assert p.first_address() == IPv6Address("2001:db8::")
        assert p.last_address() == IPv6Address("2001:db8::3")

    def test_child(self):
        p = Prefix("2001:db8::/32")
        child = p.child(1, 48)
        assert child == Prefix("2001:db8:1::/48")
        with pytest.raises(ValueError):
            p.child(0, 16)
        with pytest.raises(ValueError):
            p.child(1 << 16, 48)

    def test_ordering_and_str(self):
        a = Prefix("2001:db8::/32")
        b = Prefix("2001:db9::/32")
        assert a < b
        assert str(a) == "2001:db8::/32"

    def test_iter_addresses(self):
        p = Prefix("2001:db8::/126")
        addresses = list(iter_addresses(p))
        assert len(addresses) == 4
        assert addresses[-1] == IPv6Address("2001:db8::3")


class TestAggregateCounting:
    def setup_method(self):
        self.addresses = [
            IPv6Address("2001:db8::1"),
            IPv6Address("2001:db8::2"),
            IPv6Address("2001:db9::1"),
            IPv6Address("3001:db8::1"),
        ]

    def test_count_prefixes(self):
        assert count_prefixes(self.addresses, 0) == 1
        assert count_prefixes(self.addresses, 16) == 2  # 2001, 3001
        assert count_prefixes(self.addresses, 32) == 3
        assert count_prefixes(self.addresses, 128) == 4

    def test_count_rejects_bad_length(self):
        with pytest.raises(ValueError):
            count_prefixes(self.addresses, 129)

    def test_distinct_prefixes(self):
        found = distinct_prefixes(self.addresses, 32)
        assert Prefix("2001:db8::/32") in found
        assert len(found) == 3

    def test_aggregate_counts_default_lengths(self):
        counts = aggregate_counts(self.addresses)
        assert set(counts) == set(range(0, 129, 4))
        assert counts[0] == 1
        assert counts[128] == 4

    def test_aggregate_counts_monotone(self):
        counts = aggregate_counts(self.addresses)
        ordered = [counts[i] for i in sorted(counts)]
        assert ordered == sorted(ordered)

    def test_group_by_prefix(self):
        groups = group_by_prefix(self.addresses, 32)
        assert len(groups[Prefix("2001:db8::/32")]) == 2

    @given(st.lists(st.integers(0, (1 << 128) - 1), min_size=1, max_size=50))
    def test_counts_bounded_by_set_size(self, values):
        for length in (0, 32, 64, 128):
            count = count_prefixes(values, length)
            assert 1 <= count <= len(set(values))
