"""Tests for the Section 3 anonymization scheme."""

import pytest

from repro.ipv6.address import IPv6Address
from repro.ipv6.anonymize import (
    AnonymizationError,
    Anonymizer,
    anonymize_address,
    anonymize_embedded_ipv4,
    anonymize_set,
)


class TestAnonymizer:
    def test_first_prefix_maps_to_documentation(self):
        result = anonymize_address(IPv6Address("2a00:1450:4001::1"))
        assert result.hex32().startswith("20010db8")

    def test_low_bits_preserved(self):
        original = IPv6Address("2a00:1450:4001:0815::dead:beef")
        result = anonymize_address(original)
        assert (int(result) & ((1 << 96) - 1)) == (int(original) & ((1 << 96) - 1))

    def test_second_prefix_increments_first_nybble(self):
        anonymizer = Anonymizer()
        first = anonymizer.anonymize(IPv6Address("2a00:1450::1"))
        second = anonymizer.anonymize(IPv6Address("2a03:2880::1"))
        assert first.hex32().startswith("20010db8")
        assert second.hex32().startswith("30010db8")

    def test_same_prefix_same_mapping(self):
        anonymizer = Anonymizer()
        a = anonymizer.anonymize(IPv6Address("2a00:1450::1"))
        b = anonymizer.anonymize(IPv6Address("2a00:1450::2"))
        assert a.hex32()[:8] == b.hex32()[:8]

    def test_mapping_property(self):
        anonymizer = Anonymizer()
        anonymizer.anonymize(IPv6Address("2a00:1450::1"))
        assert 0x2A001450 in anonymizer.mapping

    def test_overflow_after_14_prefixes(self):
        anonymizer = Anonymizer()
        for i in range(14):
            anonymizer.anonymize(IPv6Address((0x20000000 + i) << 96))
        with pytest.raises(AnonymizationError):
            anonymizer.anonymize(IPv6Address(0x2F000000 << 96))

    def test_anonymize_set_shares_mapping(self):
        addresses = [
            IPv6Address("2a00:1450::1"),
            IPv6Address("2a03:2880::1"),
            IPv6Address("2a00:1450::2"),
        ]
        result = anonymize_set(addresses)
        assert result[0].hex32()[:8] == result[2].hex32()[:8]
        assert result[0].hex32()[:8] != result[1].hex32()[:8]


class TestEmbeddedIPv4Anonymization:
    def test_first_octet_becomes_127(self):
        assert anonymize_embedded_ipv4("203.0.113.9") == "127.0.113.9"

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            anonymize_embedded_ipv4("1.2.3")
