"""Tests for Modified EUI-64 and embedded-IPv4 conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.ipv6.address import IPv6Address
from repro.ipv6.eui64 import (
    EUI64_FILLER,
    U_BIT,
    decode_ipv4_decimal_words,
    embedded_ipv4_dotted_quad,
    iid_from_ipv4_decimal_words,
    iid_from_ipv4_hex,
    iid_from_mac,
    is_eui64_iid,
    mac_from_iid,
    split_mac,
)

MACS = st.integers(min_value=0, max_value=(1 << 48) - 1)
IPV4S = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestEui64:
    def test_known_example(self):
        # RFC 4291 Appendix A example: MAC 34-56-78-9A-BC-DE
        iid = iid_from_mac("34:56:78:9a:bc:de")
        assert iid == 0x36567_8FFFE_9ABCDE or iid == int("365678fffe9abcde", 16)

    def test_filler_present(self):
        iid = iid_from_mac("00:11:22:33:44:55")
        assert (iid >> 24) & 0xFFFF == EUI64_FILLER
        assert is_eui64_iid(iid)

    def test_u_bit_flipped(self):
        # A MAC with u/l bit 0 must yield an IID with the bit set.
        iid = iid_from_mac(0)
        assert iid & U_BIT

    def test_not_eui64(self):
        assert not is_eui64_iid(0)
        assert not is_eui64_iid(0xFFFFFFFFFFFFFFFF & ~(0xFFFF << 24))

    def test_is_eui64_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            is_eui64_iid(1 << 64)

    def test_mac_from_non_eui64_is_none(self):
        assert mac_from_iid(0) is None

    def test_rejects_bad_mac(self):
        with pytest.raises(ValueError):
            iid_from_mac("00:11:22:33:44")
        with pytest.raises(ValueError):
            iid_from_mac(1 << 48)

    def test_split_mac(self):
        assert split_mac("00:11:22:33:44:55") == (0x001122, 0x334455)

    @given(MACS)
    def test_round_trip(self, mac):
        iid = iid_from_mac(mac)
        recovered = mac_from_iid(iid)
        assert recovered is not None
        assert int(recovered.replace(":", ""), 16) == mac


class TestEmbeddedIPv4:
    def test_hex_embedding(self):
        assert iid_from_ipv4_hex("192.0.2.1") == 0xC0000201

    def test_decimal_words_example(self):
        # 203.0.113.5 → words 0203:0000:0113:0005
        iid = iid_from_ipv4_decimal_words("203.0.113.5")
        assert iid == 0x0203_0000_0113_0005

    def test_decimal_words_round_trip_string(self):
        assert decode_ipv4_decimal_words(0x0203_0000_0113_0005) == "203.0.113.5"

    def test_decode_rejects_hex_digits(self):
        assert decode_ipv4_decimal_words(0x0A0B_0000_0000_0000) is None

    def test_decode_rejects_over_255(self):
        # 0x0999 reads as decimal 999 > 255.
        assert decode_ipv4_decimal_words(0x0999_0000_0000_0000) is None

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode_ipv4_decimal_words(1 << 64)

    def test_dotted_quad_of_low_bits(self):
        addr = IPv6Address("2001:db8::c000:0201")
        assert embedded_ipv4_dotted_quad(addr) == "192.0.2.1"

    def test_rejects_bad_ipv4(self):
        with pytest.raises(ValueError):
            iid_from_ipv4_hex("300.1.2.3")
        with pytest.raises(ValueError):
            iid_from_ipv4_hex("1.2.3")

    @given(IPV4S)
    def test_decimal_words_round_trip(self, value):
        iid = iid_from_ipv4_decimal_words(value)
        text = decode_ipv4_decimal_words(iid)
        assert text is not None
        octets = [int(o) for o in text.split(".")]
        recomposed = (
            (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        )
        assert recomposed == value
