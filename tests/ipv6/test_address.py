"""Unit + property tests for IPv6 address parsing and formatting."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.ipv6.address import (
    AddressParseError,
    IPv6Address,
    NYBBLES_PER_ADDRESS,
    addresses_from_text,
    parse_hex32,
    parse_ipv6,
)

ADDRESS_INTS = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestParsing:
    def test_full_form(self):
        addr = IPv6Address("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert addr.value == 0x20010DB8000000000000000000000001

    def test_compressed_form(self):
        assert IPv6Address("2001:db8::1").value == (0x20010DB8 << 96) | 1

    def test_all_zeros(self):
        assert IPv6Address("::").value == 0

    def test_loopback(self):
        assert IPv6Address("::1").value == 1

    def test_trailing_compression(self):
        assert IPv6Address("fe80::").value == 0xFE80 << 112

    def test_ipv4_suffix(self):
        addr = IPv6Address("::ffff:192.0.2.1")
        assert addr.value == (0xFFFF << 32) | (192 << 24) | (2 << 8) | 1

    def test_hex32_form(self):
        addr = IPv6Address("20010db8000000000000000000000001")
        assert addr == IPv6Address("2001:db8::1")

    def test_uppercase(self):
        assert IPv6Address("2001:DB8::A") == IPv6Address("2001:db8::a")

    def test_zone_index_stripped(self):
        assert IPv6Address("fe80::1%eth0") == IPv6Address("fe80::1")

    def test_from_int(self):
        assert IPv6Address(1).compressed() == "::1"

    def test_from_address(self):
        original = IPv6Address("2001:db8::1")
        assert IPv6Address(original) == original

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":::",
            "2001:db8",
            "2001:db8::1::2",
            "g001:db8::1",
            "2001:db8:1:2:3:4:5:6:7",
            "12345::1",
            "1.2.3.4",
            "::1.2.3.4.5",
            "::256.1.1.1",
            "2001:db8::01.2.3.4:5",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressParseError):
            parse_ipv6(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(AddressParseError):
            IPv6Address(1 << 128)
        with pytest.raises(AddressParseError):
            IPv6Address(-1)

    def test_rejects_wrong_type(self):
        with pytest.raises(AddressParseError):
            IPv6Address(3.14)

    def test_hex32_rejects_wrong_length(self):
        with pytest.raises(AddressParseError):
            parse_hex32("20010db8")

    def test_hex32_rejects_non_hex(self):
        with pytest.raises(AddressParseError):
            parse_hex32("z" * 32)


class TestFormatting:
    def test_hex32_fixed_width(self):
        assert IPv6Address("::1").hex32() == "0" * 31 + "1"
        assert len(IPv6Address("2001:db8::").hex32()) == NYBBLES_PER_ADDRESS

    def test_exploded(self):
        assert (
            IPv6Address("2001:db8::1").exploded()
            == "2001:0db8:0000:0000:0000:0000:0000:0001"
        )

    def test_compressed_longest_run(self):
        # RFC 5952: compress the longest zero run.
        assert IPv6Address("2001:0:0:1:0:0:0:1").compressed() == "2001:0:0:1::1"

    def test_compressed_never_single_group(self):
        # RFC 5952: a lone zero group is not compressed.
        assert IPv6Address("2001:db8:0:1:1:1:1:1").compressed() == (
            "2001:db8:0:1:1:1:1:1"
        )

    def test_compressed_all_zero(self):
        assert IPv6Address(0).compressed() == "::"

    def test_str_and_repr(self):
        addr = IPv6Address("2001:db8::1")
        assert str(addr) == "2001:db8::1"
        assert "2001:db8::1" in repr(addr)


class TestAccessors:
    def test_nybble_positions(self):
        addr = IPv6Address("20010db840011111000000000000111c")
        assert addr.nybble(1) == 0x2
        assert addr.nybble(8) == 0x8
        assert addr.nybble(32) == 0xC

    def test_nybble_out_of_range(self):
        with pytest.raises(IndexError):
            IPv6Address(0).nybble(0)
        with pytest.raises(IndexError):
            IPv6Address(0).nybble(33)

    def test_nybbles_tuple(self):
        nybbles = IPv6Address("2001:db8::1").nybbles()
        assert len(nybbles) == 32
        assert nybbles[0] == 2 and nybbles[-1] == 1

    def test_bits(self):
        addr = IPv6Address("2001:db8::1")
        assert addr.bits(0, 16) == 0x2001
        assert addr.bits(16, 32) == 0x0DB8
        assert addr.bits(127, 128) == 1

    def test_bits_bad_range(self):
        with pytest.raises(IndexError):
            IPv6Address(0).bits(8, 8)
        with pytest.raises(IndexError):
            IPv6Address(0).bits(0, 129)

    def test_network_and_interface_identifier(self):
        addr = IPv6Address("2001:db8::dead:beef")
        assert addr.network_identifier() == 0x20010DB800000000
        assert addr.interface_identifier() == 0xDEADBEEF

    def test_truncate(self):
        addr = IPv6Address("2001:db8:ffff::1")
        assert addr.truncate(32) == IPv6Address("2001:db8::")
        assert addr.truncate(0) == IPv6Address(0)
        assert addr.truncate(128) == addr

    def test_replace_bits(self):
        addr = IPv6Address(0).replace_bits(0, 16, 0x2001)
        assert addr.nybble(1) == 2
        with pytest.raises(ValueError):
            IPv6Address(0).replace_bits(0, 4, 16)

    def test_ordering_and_hash(self):
        a, b = IPv6Address(1), IPv6Address(2)
        assert a < b and a <= b
        assert len({IPv6Address(1), IPv6Address(1)}) == 1
        assert IPv6Address(5) == 5


class TestTextIngestion:
    def test_skips_blank_and_comments(self):
        lines = ["# comment", "", "2001:db8::1", "  2001:db8::2  "]
        parsed = list(addresses_from_text(lines))
        assert parsed == [IPv6Address("2001:db8::1"), IPv6Address("2001:db8::2")]


class TestAgainstStdlib:
    """Cross-validate the from-scratch parser against ipaddress."""

    @given(ADDRESS_INTS)
    def test_exploded_matches_stdlib(self, value):
        ours = IPv6Address(value).exploded()
        theirs = ipaddress.IPv6Address(value).exploded
        assert ours == theirs

    @given(ADDRESS_INTS)
    def test_compressed_matches_stdlib(self, value):
        ours = IPv6Address(value).compressed()
        theirs = ipaddress.IPv6Address(value).compressed
        assert ours == theirs

    @given(ADDRESS_INTS)
    def test_parse_of_stdlib_forms(self, value):
        stdlib = ipaddress.IPv6Address(value)
        assert IPv6Address(stdlib.compressed).value == value
        assert IPv6Address(stdlib.exploded).value == value


class TestRoundTrips:
    @given(ADDRESS_INTS)
    def test_hex32_round_trip(self, value):
        assert IPv6Address(IPv6Address(value).hex32()).value == value

    @given(ADDRESS_INTS)
    def test_compressed_round_trip(self, value):
        assert IPv6Address(IPv6Address(value).compressed()).value == value

    @given(ADDRESS_INTS)
    def test_nybbles_recompose(self, value):
        addr = IPv6Address(value)
        recomposed = 0
        for nybble in addr.nybbles():
            recomposed = (recomposed << 4) | nybble
        assert recomposed == value
