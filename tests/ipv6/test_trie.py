"""Tests for the prefix trie and MRA analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ipv6.address import IPv6Address
from repro.ipv6.prefix import Prefix, aggregate_counts
from repro.ipv6.trie import (
    PrefixTrie,
    discover_subnets,
    mra_count_ratios,
)

ADDRESS_INTS = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestPrefixTrie:
    def test_insert_and_total(self):
        trie = PrefixTrie()
        trie.insert(IPv6Address("2001:db8::1"))
        trie.insert(IPv6Address("2001:db8::2"), multiplicity=3)
        assert trie.total == 4

    def test_count_prefix(self):
        trie = PrefixTrie.from_addresses(
            [IPv6Address("2001:db8::1"), IPv6Address("2001:db9::1")]
        )
        assert trie.count(Prefix("2001:db8::/32")) == 1
        assert trie.count(Prefix("2001::/16")) == 2
        assert trie.count(Prefix("3000::/8")) == 0

    def test_rejects_bad_input(self):
        trie = PrefixTrie()
        with pytest.raises(ValueError):
            trie.insert(1, multiplicity=0)
        with pytest.raises(ValueError):
            trie.insert(1 << 128)

    def test_aggregates(self):
        trie = PrefixTrie.from_addresses(
            [
                IPv6Address("2001:db8::1"),
                IPv6Address("2001:db8::2"),
                IPv6Address("2001:db9::1"),
            ]
        )
        aggregates = trie.aggregates(32)
        assert aggregates[Prefix("2001:db8::/32")] == 2
        assert aggregates[Prefix("2001:db9::/32")] == 1

    def test_aggregate_count_bad_length(self):
        with pytest.raises(ValueError):
            PrefixTrie().aggregates(129)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=40))
    def test_counts_match_set_based_computation(self, values):
        trie = PrefixTrie.from_addresses(values)
        reference = aggregate_counts(values)
        for length in (0, 4, 32, 64, 128):
            assert trie.aggregate_count(length) == reference[length]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=30))
    def test_root_count_is_total(self, values):
        trie = PrefixTrie.from_addresses(values)
        assert trie.count(Prefix("::/0")) == len(values)


class TestMraRatios:
    def test_single_address_all_ones(self):
        ratios = mra_count_ratios([IPv6Address("2001:db8::1")])
        assert ratios == [1.0] * 32

    def test_split_location(self):
        ratios = mra_count_ratios(
            [IPv6Address("2001:db8::1"), IPv6Address("2001:db8::2")]
        )
        assert ratios[31] == 2.0
        assert all(r == 1.0 for r in ratios[:31])

    def test_stride_16(self):
        ratios = mra_count_ratios(
            [IPv6Address("2001:db8::1"), IPv6Address("2001:db8::2")],
            bit_stride=16,
        )
        assert len(ratios) == 8
        assert ratios[-1] == 2.0

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            mra_count_ratios([1], bit_stride=3)


class TestDiscoverSubnets:
    def test_finds_dense_64(self):
        # 64 addresses spread across one /64's low bits.
        rng = np.random.default_rng(0)
        base = IPv6Address("2001:db8:1:2::").value
        values = [base | int(v) for v in rng.choice(1 << 16, 64, replace=False)]
        subnets = discover_subnets(values, min_members=16)
        assert any(
            s.prefix.subsumes(Prefix("2001:db8:1:2::/64")) or
            Prefix("2001:db8:1:2::/64").subsumes(s.prefix)
            for s in subnets
        )

    def test_separates_two_subnets(self):
        rng = np.random.default_rng(1)
        values = []
        for net in ("2001:db8:1:1::", "2001:db8:2:2::"):
            base = IPv6Address(net).value
            values += [base | int(v) for v in rng.choice(256, 32, replace=False)]
        subnets = discover_subnets(values, min_members=16)
        covers = {str(s.prefix) for s in subnets}
        assert len(covers) >= 2

    def test_min_members_threshold(self):
        values = [IPv6Address("2001:db8::1").value]
        assert discover_subnets(values, min_members=2) == []

    def test_members_accounting(self):
        rng = np.random.default_rng(2)
        base = IPv6Address("2001:db8::").value
        values = [base | int(v) for v in rng.choice(4096, 100, replace=False)]
        subnets = discover_subnets(values, min_members=10)
        assert sum(s.members for s in subnets) <= 100
        assert all(s.members >= 10 for s in subnets)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            discover_subnets([1], split_ratio=1.5)
