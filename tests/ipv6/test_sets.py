"""Tests for the vectorized AddressSet container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import (
    AddressSet,
    first_occurrence_positions,
    pack_rows,
    split_train_test,
    unpack_rows,
)

ADDRESS_INTS = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestConstruction:
    def test_from_strings(self):
        s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
        assert len(s) == 2 and s.width == 32

    def test_from_ints_full_width(self):
        s = AddressSet.from_ints([1, 2])
        assert s.column(32).tolist() == [1, 2]

    def test_from_ints_truncating_keeps_top(self):
        value = IPv6Address("2001:db8::1").value
        s = AddressSet.from_ints([value], width=16)
        assert list(s.hex_rows()) == ["20010db800000000"]

    def test_from_ints_already_truncated(self):
        s = AddressSet.from_ints([0x20010DB8], width=8, already_truncated=True)
        assert list(s.hex_rows()) == ["20010db8"]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            AddressSet.from_ints([1 << 32], width=8, already_truncated=True)

    def test_negative_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="negative address value"):
            AddressSet.from_ints([-1])
        with pytest.raises(ValueError, match="negative address value"):
            AddressSet.from_ints([0, -7], width=8, already_truncated=True)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            AddressSet.from_ints([1], width=0)
        with pytest.raises(ValueError):
            AddressSet.from_ints([1], width=33)

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            AddressSet(np.full((2, 4), 16, dtype=np.uint8))
        with pytest.raises(ValueError):
            AddressSet(np.zeros(4, dtype=np.uint8))

    def test_empty(self):
        s = AddressSet.empty(width=16)
        assert len(s) == 0 and s.width == 16

    def test_matrix_is_read_only(self):
        s = AddressSet.from_ints([1, 2])
        with pytest.raises(ValueError):
            s.matrix[0, 0] = 5


class TestAccessors:
    def test_column_indexing(self, tiny_set):
        # Fig. 3: last character takes 'c' twice and 'f' thrice.
        last = tiny_set.column(32).tolist()
        assert last.count(0xC) == 2 and last.count(0xF) == 3

    def test_column_out_of_range(self, tiny_set):
        with pytest.raises(IndexError):
            tiny_set.column(0)
        with pytest.raises(IndexError):
            tiny_set.column(33)

    def test_segment_values_narrow(self, tiny_set):
        values = tiny_set.segment_values(12, 16)
        assert int(values[0]) == 0x11111
        assert int(values[2]) == 0x31C13

    def test_segment_values_full_width_uint64(self):
        s = AddressSet.from_ints([0xFFFFFFFFFFFFFFFF], width=16,
                                 already_truncated=True)
        values = s.segment_values(1, 16)
        assert values.dtype == np.uint64
        assert int(values[0]) == 0xFFFFFFFFFFFFFFFF

    def test_segment_values_wider_than_64_bits(self):
        s = AddressSet.from_strings(["2001:db8::1"])
        values = s.segment_values(1, 32)
        assert values.dtype == object
        assert values[0] == IPv6Address("2001:db8::1").value

    def test_segment_values_bad_range(self, tiny_set):
        with pytest.raises(IndexError):
            tiny_set.segment_values(5, 4)
        with pytest.raises(IndexError):
            tiny_set.segment_values(0, 4)

    def test_row_int_and_addresses(self):
        s = AddressSet.from_strings(["2001:db8::1"])
        assert s.row_int(0) == IPv6Address("2001:db8::1").value
        assert s.addresses() == [IPv6Address("2001:db8::1")]

    def test_addresses_pad_narrow_width(self):
        s = AddressSet.from_ints([0x20010DB8], width=8, already_truncated=True)
        assert s.addresses() == [IPv6Address("2001:db8::")]

    def test_hex_rows(self, tiny_set):
        rows = list(tiny_set.hex_rows())
        assert rows[0] == "20010db840011111000000000000111c"


class TestOperations:
    def test_unique(self, tiny_set):
        assert len(tiny_set.unique()) == 4  # one duplicate in Fig. 3

    def test_sample_without_replacement(self, tiny_set, rng):
        sample = tiny_set.sample(3, rng)
        assert len(sample) == 3

    def test_sample_too_large(self, tiny_set, rng):
        with pytest.raises(ValueError):
            tiny_set.sample(10, rng)

    def test_truncate(self, tiny_set):
        t = tiny_set.truncate(8)
        assert t.width == 8
        assert set(t.hex_rows()) == {"20010db8"}

    def test_truncate_bad_width(self, tiny_set):
        with pytest.raises(ValueError):
            tiny_set.truncate(33)

    def test_concat(self):
        a = AddressSet.from_ints([1])
        b = AddressSet.from_ints([2])
        assert len(a.concat(b)) == 2

    def test_concat_width_mismatch(self):
        a = AddressSet.from_ints([1], width=8)
        b = AddressSet.from_ints([2], width=16)
        with pytest.raises(ValueError):
            a.concat(b)

    def test_take(self, tiny_set):
        taken = tiny_set.take([0, 2])
        assert len(taken) == 2
        assert list(taken.hex_rows())[1].endswith("200c")

    def test_equality(self):
        assert AddressSet.from_ints([1, 2]) == AddressSet.from_ints([1, 2])
        assert AddressSet.from_ints([1]) != AddressSet.from_ints([2])

    def test_split_train_test(self, rng):
        s = AddressSet.from_ints(list(range(100)))
        train, test = split_train_test(s, 30, rng)
        assert len(train) == 30 and len(test) == 70
        assert set(train.to_ints()) | set(test.to_ints()) == set(range(100))

    def test_split_train_test_too_big(self, rng):
        s = AddressSet.from_ints([1, 2])
        with pytest.raises(ValueError):
            split_train_test(s, 2, rng)


class TestVectorizedEquivalence:
    """The numpy fast paths must match the obvious per-row reference."""

    @settings(max_examples=50)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=30))
    def test_to_ints_matches_per_row_reference(self, values):
        s = AddressSet.from_ints(values)
        reference = []
        for row in range(len(s)):
            value = 0
            for nybble in s.matrix[row]:
                value = (value << 4) | int(nybble)
            reference.append(value)
        assert s.to_ints() == reference
        assert [s.row_int(r) for r in range(len(s))] == reference

    @settings(max_examples=50)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=30))
    def test_hex_rows_matches_format_reference(self, values):
        s = AddressSet.from_ints(values)
        assert list(s.hex_rows()) == [format(v, "032x") for v in values]

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(0, 2**40), min_size=0, max_size=30),
        st.lists(st.integers(0, 2**40), min_size=0, max_size=30),
        st.integers(1, 32),
    )
    def test_contains_rows_matches_set_reference(self, mine, theirs, width):
        a = AddressSet.from_ints([v % (1 << (4 * width)) for v in mine],
                                 width=width, already_truncated=True)
        b = AddressSet.from_ints([v % (1 << (4 * width)) for v in theirs],
                                 width=width, already_truncated=True)
        members = set(a.to_ints())
        expected = [v in members for v in b.to_ints()]
        assert a.contains_rows(b).tolist() == expected

    def test_contains_rows_width_mismatch(self):
        a = AddressSet.from_ints([1], width=8, already_truncated=True)
        b = AddressSet.from_ints([1], width=16, already_truncated=True)
        with pytest.raises(ValueError):
            a.contains_rows(b)

    @settings(max_examples=50)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=30), st.integers(1, 32))
    def test_pack_rows_preserves_row_identity(self, values, width):
        s = AddressSet.from_ints(values, width=width)
        words = pack_rows(s.matrix)
        assert words.shape == (len(s), (width + 15) // 16)
        # Packed equality must coincide with row equality.
        ints = s.to_ints()
        for i in range(len(s)):
            for j in range(len(s)):
                assert (ints[i] == ints[j]) == bool(
                    np.all(words[i] == words[j])
                )

    @settings(max_examples=50)
    @given(st.lists(ADDRESS_INTS, min_size=0, max_size=30), st.integers(1, 32))
    def test_unpack_rows_inverts_pack_rows(self, values, width):
        """unpack_rows is the exact inverse of pack_rows — the fused
        generation path relies on it to materialize nybble matrices
        only for the rows it keeps."""
        s = AddressSet.from_ints(values, width=width)
        matrix = unpack_rows(pack_rows(s.matrix), width)
        assert matrix.shape == s.matrix.shape
        assert matrix.dtype == s.matrix.dtype
        assert np.array_equal(matrix, s.matrix)
        assert matrix.flags["C_CONTIGUOUS"]

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(0, 30), min_size=0, max_size=60),
        st.lists(st.integers(0, 30), min_size=0, max_size=10),
    )
    def test_first_occurrence_matches_python_reference(self, stream, exclude):
        s = AddressSet.from_ints(stream, width=4, already_truncated=True)
        e = AddressSet.from_ints(exclude, width=4, already_truncated=True)
        positions = first_occurrence_positions(
            s.packed_rows(), e.packed_rows()
        )
        seen = set(exclude)
        expected = []
        for position, value in enumerate(stream):
            if value not in seen:
                seen.add(value)
                expected.append(position)
        assert positions.tolist() == expected


class TestRoundTrips:
    @settings(max_examples=50)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=20))
    def test_ints_round_trip(self, values):
        s = AddressSet.from_ints(values)
        assert s.to_ints() == values

    @settings(max_examples=50)
    @given(st.lists(ADDRESS_INTS, min_size=1, max_size=20))
    def test_segment_values_recompose(self, values):
        s = AddressSet.from_ints(values)
        top = s.segment_values(1, 16)
        bottom = s.segment_values(17, 32)
        for original, high, low in zip(values, top, bottom):
            assert (int(high) << 64) | int(low) == original


class TestArrayPrimitives:
    """The packed-word primitives the array-native scan layer rides on."""

    def test_from_words_round_trip(self):
        values = [0x20010DB8_0001_0000 | i for i in range(100)]
        words = np.array(values, dtype=np.uint64)
        built = AddressSet.from_words(words, width=16)
        assert built.to_ints() == values
        assert built == AddressSet.from_ints(
            values, width=16, already_truncated=True
        )

    def test_from_words_narrow_widths(self):
        built = AddressSet.from_words(np.array([0x1234, 0xF], dtype=np.uint64), 4)
        assert built.to_ints() == [0x1234, 0xF]
        assert built.width == 4

    def test_from_words_validation(self):
        with pytest.raises(ValueError):
            AddressSet.from_words(np.array([0x12345], dtype=np.uint64), 4)
        with pytest.raises(ValueError):
            AddressSet.from_words(np.array([1], dtype=np.uint64), 17)
        with pytest.raises(ValueError):
            AddressSet.from_words(np.array([[1]], dtype=np.uint64), 4)

    def test_from_words_empty(self):
        built = AddressSet.from_words(np.array([], dtype=np.uint64), 16)
        assert len(built) == 0 and built.width == 16

    @pytest.mark.parametrize("width", [32, 20, 16, 8])
    def test_value_words_match_row_ints(self, width):
        generator = np.random.default_rng(7)
        values = [
            int(v) >> (4 * (32 - width))
            for v in generator.integers(0, 1 << 63, size=50)
        ] + [0, (1 << (4 * width)) - 1]
        rows = AddressSet.from_ints(values, width=width, already_truncated=True)
        low, high = rows.value_words()
        rebuilt = [(int(hi) << 64) | int(lo) for lo, hi in zip(low, high)]
        assert rebuilt == [rows.row_int(i) for i in range(len(rows))]

    @pytest.mark.parametrize("width", [32, 24, 16])
    def test_prefixes64_matches_scalar_reference(self, width):
        generator = np.random.default_rng(13)
        values = [
            int(v) >> (4 * (32 - width))
            for v in generator.integers(0, 1 << 62, size=200)
        ]
        rows = AddressSet.from_ints(values, width=width, already_truncated=True)
        shift = 4 * (width - 16)
        reference = sorted({v >> shift for v in values})
        assert [int(p) for p in rows.prefixes64()] == reference

    def test_prefixes64_rejects_narrow(self):
        with pytest.raises(ValueError):
            AddressSet.from_ints([1], width=8, already_truncated=True).prefixes64()

    def test_prefixes64_empty(self):
        assert AddressSet.empty(32).prefixes64().tolist() == []

    def test_contains_rows_repeated_queries_use_cache(self):
        base = AddressSet.from_ints([10, 20, 30])
        hits = base.contains_rows(AddressSet.from_ints([20, 99]))
        assert hits.tolist() == [True, False]
        # Second query hits the cached sorted view; results unchanged.
        again = base.contains_rows(AddressSet.from_ints([10, 30, 40]))
        assert again.tolist() == [True, True, False]


class TestMatchRows:
    def test_positions_point_at_equal_rows(self):
        base = AddressSet.from_ints([(7 << 64) | i for i in (5, 9, 2, 5)])
        query = AddressSet.from_ints(
            [(7 << 64) | 2, (7 << 64) | 5, 123, (7 << 64) | 9]
        )
        positions = base.match_rows(query)
        assert positions[2] == -1
        for q, p in zip(range(len(query)), positions):
            if p >= 0:
                assert base.matrix[p].tolist() == query.matrix[q].tolist()
        # Duplicate rows in base: the first occurrence wins.
        assert positions[1] == 0

    def test_empty_sides(self):
        base = AddressSet.from_ints([1, 2])
        assert base.match_rows(AddressSet.empty(32)).tolist() == []
        assert AddressSet.empty(32).match_rows(base).tolist() == [-1, -1]

    def test_rank_fallback_index_equivalent(self):
        generator = np.random.default_rng(21)
        values = [int(v) for v in generator.integers(0, 1 << 60, size=300)]
        base = AddressSet.from_ints(values + values[:50])
        query = AddressSet.from_ints(
            values[::3] + [int(v) for v in generator.integers(0, 1 << 60, size=100)]
        )
        fast = base.match_rows(query)
        # The sorted reference path must agree with the bucket table.
        assert base._match_rows_sorted(query).tolist() == fast.tolist()
        # Force the collision-proof rank-composition index and re-match.
        from repro.ipv6.sets import first_occurrence_positions, pack_rows

        words = pack_rows(base.matrix)
        distinct = first_occurrence_positions(words)
        forced = AddressSet(base.matrix)
        forced._sorted_index = AddressSet._build_rank_index(
            words[distinct], distinct
        )
        assert forced._match_rows_sorted(query).tolist() == fast.tolist()
        assert forced.contains_rows(query).tolist() == (fast >= 0).tolist()

    def test_rank_fallback_single_word(self):
        values = [3, 9, 27, 81, 9]
        base = AddressSet.from_ints(values, width=16, already_truncated=True)
        query = AddressSet.from_ints(
            [9, 4, 81], width=16, already_truncated=True
        )
        from repro.ipv6.sets import first_occurrence_positions, pack_rows

        words = pack_rows(base.matrix)
        distinct = first_occurrence_positions(words)
        forced = AddressSet(base.matrix)
        forced._sorted_index = AddressSet._build_rank_index(
            words[distinct], distinct
        )
        assert forced._match_rows_sorted(query).tolist() == [1, -1, 3]

    def test_from_words_rejects_negative_and_float(self):
        with pytest.raises(ValueError):
            AddressSet.from_words(np.array([-1], dtype=np.int64), 16)
        with pytest.raises(ValueError):
            AddressSet.from_words(np.array([1.5]), 16)
        # Signed but non-negative is fine.
        built = AddressSet.from_words(np.array([7, 9], dtype=np.int64), 4)
        assert built.to_ints() == [7, 9]
