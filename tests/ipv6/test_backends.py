"""Tests for the pluggable AddressSet storage backends.

The sharded backend's contract is *exact* equivalence with the flat
:class:`~repro.ipv6.sets.BucketTable` (and hence with a Python-set
first-occurrence oracle): same fresh masks, same stored rows, same
stream ids, same ``insert_packed(limit=...)`` admissions — whatever
the batch sizes, the shard routing, or the fold collisions.  These
tests pin that across mixed batch schedules, same-shard/cross-shard
collision batches, per-shard rollback exactness, and end-to-end
through :class:`~repro.core.model.GenerationSession`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ipv6.backends import (
    ShardedBucketTable,
    make_backend,
)
from repro.ipv6.sets import BucketTable


def rows_from_values(values, word_count=2):
    """Two-word packed rows whose identity is the scalar value: word 0
    mimics a /64 prefix (clustered), word 1 the IID."""
    values = np.asarray(values, dtype=np.uint64)
    words = np.empty((len(values), word_count), dtype=np.uint64)
    words[:, 0] = np.uint64(0x20010DB8 << 32) + (values >> np.uint64(3))
    for column in range(1, word_count):
        words[:, column] = values
    return words


def stored_row_set(table):
    return {tuple(map(int, row)) for row in table.stored_words()}


class TestPythonSetOracle:
    """Both backends vs a first-occurrence Python-set oracle, over a
    mixed schedule of batch sizes (empty, single-row, large)."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 120), min_size=0, max_size=40),
            min_size=1,
            max_size=12,
        ),
        st.integers(1, 3),
    )
    def test_fresh_masks_match_oracle(self, batches, word_count):
        flat = BucketTable(word_count)
        sharded = ShardedBucketTable(word_count, shards=8)
        seen = set()
        offered = 0
        for batch in batches:
            words = rows_from_values(batch, word_count)
            expected = []
            for value in batch:
                key = tuple(map(int, words[len(expected)]))
                expected.append(key not in seen)
                seen.add(key)
            flat_fresh = flat.insert(words)
            sharded_fresh = sharded.insert(words)
            assert flat_fresh.tolist() == expected
            assert sharded_fresh.tolist() == expected
            offered += len(batch)
        assert len(flat) == len(sharded) == len(seen)
        assert flat.rows_offered == sharded.rows_offered == offered
        assert stored_row_set(flat) == stored_row_set(sharded) == seen

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 120), min_size=1, max_size=80),
        st.lists(st.integers(0, 160), min_size=1, max_size=40),
    )
    def test_lookup_ids_are_stream_positions(self, stream, probes):
        flat = BucketTable(2)
        sharded = ShardedBucketTable(2, shards=4)
        words = rows_from_values(stream)
        flat.insert(words)
        sharded.insert(words)
        first_seen = {}
        for position, value in enumerate(stream):
            first_seen.setdefault(int(value), position)
        probe_words = rows_from_values(probes)
        expected = [first_seen.get(int(v), -1) for v in probes]
        assert flat.lookup(probe_words).tolist() == expected
        assert sharded.lookup(probe_words).tolist() == expected
        assert sharded.contains(probe_words).tolist() == [
            e >= 0 for e in expected
        ]


class TestShardRouting:
    def test_equal_rows_share_a_shard(self):
        table = ShardedBucketTable(2, shards=16)
        words = rows_from_values(np.arange(2000) % 64)
        shards = table.shard_index(words)
        # Row identity is the value; equal values must route together.
        values = words[:, 1]
        for value in np.unique(values):
            assert len(np.unique(shards[values == value])) == 1

    def test_cross_shard_fold_collisions_stay_exact(self):
        """Rows engineered to collide in the same shard — and rows
        spread across every shard — dedup and look up exactly."""
        table = ShardedBucketTable(2, shards=8)
        words = rows_from_values(np.arange(4096))
        shards = table.shard_index(words)
        # A same-shard batch (maximal intra-shard collision pressure)
        # interleaved with rows from every other shard.
        target = int(np.bincount(shards, minlength=8).argmax())
        same = words[shards == target]
        other = words[shards != target]
        batch = np.vstack([same, other, same])  # second half: all dups
        fresh = table.insert(batch)
        assert fresh[: len(same)].all()
        assert fresh[len(same): len(same) + len(other)].all()
        assert not fresh[len(same) + len(other):].any()
        assert len(table) == len(words)
        assert table.contains(words).all()
        assert table.max_shard_rows == int(np.bincount(shards).max())

    def test_single_shard_degenerates_to_flat(self):
        flat = BucketTable(1)
        table = ShardedBucketTable(1, shards=1)
        words = rows_from_values(np.arange(100) % 37, word_count=1)
        assert np.array_equal(flat.insert(words), table.insert(words))
        assert stored_row_set(flat) == stored_row_set(table)

    def test_rejects_bad_shard_counts(self):
        for shards in (0, 3, 6, -2, 1 << 17):
            with pytest.raises(ValueError):
                ShardedBucketTable(1, shards=shards)


class TestLimitRollback:
    """``insert_packed(limit=)``: cross-shard exactness of the admit
    prefix and of the per-shard rollback."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=80),
        st.integers(0, 20),
        st.integers(0, 40),
    )
    def test_limited_insert_matches_flat_table(self, batch, limit, preload):
        flat = BucketTable(2)
        sharded = ShardedBucketTable(2, shards=8)
        pre = rows_from_values(np.arange(preload) * 3)
        flat.insert(pre)
        sharded.insert(pre)
        words = rows_from_values(batch)
        flat_mask = flat.insert_packed(words, limit=limit)
        sharded_mask = sharded.insert_packed(words, limit=limit)
        assert np.array_equal(flat_mask, sharded_mask)
        assert int(flat_mask.sum()) <= limit
        assert len(flat) == len(sharded)
        assert flat.rows_offered == sharded.rows_offered
        assert stored_row_set(flat) == stored_row_set(sharded)
        # Admitted rows carry their true stream positions.
        assert np.array_equal(
            flat.lookup(words), sharded.lookup(words)
        )

    def test_rollback_restores_every_touched_shard(self):
        table = ShardedBucketTable(2, shards=8)
        baseline = rows_from_values(np.arange(0, 400, 2))
        table.insert(baseline)
        before_rows = stored_row_set(table)
        before_offered = table.rows_offered
        per_shard_before = [len(s) for s in table._shards]
        # A batch that is all fresh and lands in many shards, capped to
        # admit only a prefix — the overshoot must vanish everywhere.
        batch = rows_from_values(np.arange(1000, 1200))
        mask = table.insert_packed(batch, limit=7)
        assert int(mask.sum()) == 7
        assert mask[:7].all() and not mask[7:].any()
        assert stored_row_set(table) == before_rows | {
            tuple(map(int, row)) for row in batch[:7]
        }
        assert table.rows_offered == before_offered + len(batch)
        admitted_shards = table.shard_index(batch[:7])
        for index, shard in enumerate(table._shards):
            expected = per_shard_before[index] + int(
                np.count_nonzero(admitted_shards == index)
            )
            assert len(shard) == expected, index

    def test_reversible_insert_round_trip(self):
        table = ShardedBucketTable(2, shards=4)
        table.insert(rows_from_values([1, 2, 3]))
        mark_rows, mark_offered = len(table), table.rows_offered
        fresh = table.insert_reversible(rows_from_values([2, 10, 11]))
        assert fresh.tolist() == [False, True, True]
        table.revert_insert()
        assert len(table) == mark_rows
        assert table.rows_offered == mark_offered
        with pytest.raises(RuntimeError):
            table.revert_insert()

    def test_plain_insert_invalidates_revert(self):
        table = ShardedBucketTable(2, shards=4)
        table.insert_reversible(rows_from_values([1, 2]))
        table.insert(rows_from_values([3]))
        with pytest.raises(RuntimeError):
            table.revert_insert()


class TestMakeBackend:
    def test_named_backends(self):
        assert isinstance(make_backend(None, 2), BucketTable)
        assert isinstance(make_backend("memory", 2), BucketTable)
        assert isinstance(make_backend("sharded64", 2), ShardedBucketTable)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("mmap", 2)

    def test_instance_passthrough_validates_word_count(self):
        table = ShardedBucketTable(2, shards=4)
        assert make_backend(table, 2) is table
        with pytest.raises(ValueError, match="word"):
            make_backend(table, 3)

    def test_callable_factory(self):
        built = make_backend(
            lambda wc, cap: ShardedBucketTable(wc, capacity=cap, shards=4),
            2,
            capacity=100,
        )
        assert isinstance(built, ShardedBucketTable)
        assert built.shard_count == 4
        assert built.slot_count > 0

    def test_capacity_reserve(self):
        table = make_backend("sharded64", 2, capacity=10_000)
        slots_before = table.slot_count
        table.insert(rows_from_values(np.arange(5000)))
        # Pre-sized: no shard needed to grow for its share.
        assert table.slot_count == slots_before


class TestGenerationSessionEquivalence:
    def test_sessions_emit_identical_sets(self, structured_set):
        """The same model, seed, and rounds through each backend emit
        bit-identical candidate sets and session accounting."""
        from repro.core.pipeline import EntropyIP

        model = EntropyIP.fit(structured_set).model
        outputs = {}
        for backend in ("memory", "sharded64"):
            session = model.session(exclude=structured_set, backend=backend)
            rng = np.random.default_rng(9)
            rounds = [
                model.generate_set(400, rng, state=session)
                for _ in range(3)
            ]
            outputs[backend] = (
                [r.matrix for r in rounds],
                session.excluded_rows,
                session.generated_rows,
                len(session),
            )
        memory_rounds, *memory_stats = outputs["memory"]
        sharded_rounds, *sharded_stats = outputs["sharded64"]
        assert memory_stats == sharded_stats
        for memory_round, sharded_round in zip(memory_rounds, sharded_rounds):
            assert np.array_equal(memory_round, sharded_round)

    def test_session_table_reports_backend(self, structured_set):
        from repro.core.pipeline import EntropyIP

        model = EntropyIP.fit(structured_set).model
        session = model.session(backend="sharded64")
        assert isinstance(session.table, ShardedBucketTable)
