"""Adversarial tests for the open-addressing bucket-table index.

Covers the failure modes a hash table earns the hard way: fold
collisions between distinct rows, growth (rehashing) across many
power-of-two boundaries, duplicate-heavy batches, empty tables and
empty queries — plus equivalence against both the sorted searchsorted
reference index and a plain Python-set oracle.
"""

import numpy as np
import pytest

import repro.ipv6.sets as sets_module
from repro.ipv6.sets import AddressSet, BucketTable, pack_rows


def _random_words(rng, n, k=2, bits=63):
    return rng.integers(0, 1 << bits, size=(n, k), dtype=np.uint64)


class TestBasics:
    def test_insert_and_lookup_roundtrip(self):
        rng = np.random.default_rng(0)
        words = _random_words(rng, 1000)
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.all()  # all distinct at 63 random bits
        assert len(table) == 1000
        assert np.array_equal(table.lookup(words), np.arange(1000))
        misses = _random_words(rng, 500)
        assert (table.lookup(misses) == -1).all()

    def test_duplicates_first_occurrence_wins(self):
        words = np.array(
            [[1, 2], [3, 4], [1, 2], [5, 6], [3, 4], [1, 2]], dtype=np.uint64
        )
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.tolist() == [True, True, False, True, False, False]
        assert len(table) == 3
        # Lookup reports the id of the first occurrence.
        assert table.lookup(words).tolist() == [0, 1, 0, 3, 1, 0]

    def test_incremental_ids_continue_across_batches(self):
        table = BucketTable(1)
        table.insert(np.array([[7], [8]], dtype=np.uint64))
        fresh = table.insert(np.array([[8], [9]], dtype=np.uint64))
        assert fresh.tolist() == [False, True]
        # Default ids count every offered row, so [9] is row 3 of the
        # stream (0-indexed).
        assert table.lookup(np.array([[9]], dtype=np.uint64)).tolist() == [3]

    def test_explicit_ids(self):
        table = BucketTable(1)
        table.insert(
            np.array([[4], [5]], dtype=np.uint64),
            ids=np.array([40, 50], dtype=np.int64),
        )
        assert table.lookup(np.array([[5], [4]], dtype=np.uint64)).tolist() == [
            50,
            40,
        ]

    def test_empty_table_and_empty_query(self):
        table = BucketTable(2)
        assert len(table) == 0
        assert table.lookup(np.empty((0, 2), dtype=np.uint64)).size == 0
        rng = np.random.default_rng(1)
        assert (table.lookup(_random_words(rng, 100)) == -1).all()
        assert table.insert(np.empty((0, 2), dtype=np.uint64)).size == 0

    def test_shape_validation(self):
        table = BucketTable(2)
        with pytest.raises(ValueError):
            table.insert(np.zeros((4, 3), dtype=np.uint64))
        with pytest.raises(ValueError):
            table.lookup(np.zeros(4, dtype=np.uint64))
        with pytest.raises(ValueError):
            table.insert(
                np.zeros((4, 2), dtype=np.uint64),
                ids=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            BucketTable(0)


class TestGrowth:
    def test_growth_across_many_boundaries(self):
        rng = np.random.default_rng(2)
        table = BucketTable(2)  # starts at the minimum slot count
        seen = []
        sizes = set()
        for _ in range(40):
            batch = _random_words(rng, 97)
            table.insert(batch)
            seen.append(batch)
            sizes.add(table.slot_count)
        all_words = np.vstack(seen)
        assert len(table) == len(all_words)  # 63-bit rows: no dups
        assert len(sizes) > 3  # actually crossed several boundaries
        assert (table.lookup(all_words) >= 0).all()
        assert (table.lookup(_random_words(rng, 1000)) == -1).all()

    def test_single_huge_insert_grows_once(self):
        rng = np.random.default_rng(3)
        words = _random_words(rng, 10_000, k=1)
        table = BucketTable(1)
        fresh = table.insert(words)
        assert fresh.all()
        assert table.slot_count >= 2 * len(words)
        assert np.array_equal(table.lookup(words), np.arange(10_000))

    def test_duplicates_do_not_trigger_spurious_growth(self):
        words = np.tile(np.array([[1, 9]], dtype=np.uint64), (5000, 1))
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.sum() == 1
        assert len(table) == 1

    def test_dup_heavy_batch_into_populated_table_keeps_size(self):
        # The saturated-generation regime: a batch far larger than the
        # table that contains nothing new must leave the slot array and
        # storage untouched (growth tracks fresh rows, not batch size).
        rng = np.random.default_rng(11)
        base = _random_words(rng, 4000)
        table = BucketTable(2, capacity=4000)
        table.insert(base)
        slots_before = table.slot_count
        fresh = table.insert(np.vstack([base, base, base, base]))
        assert not fresh.any()
        assert table.slot_count == slots_before
        assert len(table) == 4000


class TestFoldCollisions:
    """Distinct rows with identical mixed folds must stay distinct."""

    def test_weak_fold_is_still_exact(self, monkeypatch):
        # Degrade the fold to its low 3 bits: massive intentional
        # collisions.  The table must still answer exactly, because
        # every key match is word-verified and probing walks past
        # mismatches.
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: words[:, 0] & np.uint64(7),
        )
        rng = np.random.default_rng(4)
        words = _random_words(rng, 500)
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.all()
        assert np.array_equal(table.lookup(words), np.arange(500))
        misses = _random_words(rng, 200)
        assert (table.lookup(misses) == -1).all()

    def test_constant_fold_duplicates_and_growth(self, monkeypatch):
        # The pathological extreme: every row hashes to the same home
        # slot, turning the table into a linear scan.  Correctness
        # (dedup, first-occurrence ids, growth) must survive.
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: np.zeros(len(words), dtype=np.uint64),
        )
        rng = np.random.default_rng(5)
        distinct = _random_words(rng, 300, k=1)
        batch = np.vstack([distinct, distinct[::2]])
        table = BucketTable(1)
        fresh = table.insert(batch)
        assert fresh[:300].all()
        assert not fresh[300:].any()
        assert len(table) == 300
        assert np.array_equal(table.lookup(distinct), np.arange(300))

    def test_match_rows_with_weak_fold(self, monkeypatch):
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: words[:, 0] & np.uint64(15),
        )
        rng = np.random.default_rng(6)
        values = [int(v) for v in rng.integers(0, 1 << 60, size=400)]
        base = AddressSet.from_ints(values + values[:60])
        query = AddressSet.from_ints(
            values[::5] + [int(v) for v in rng.integers(0, 1 << 60, size=150)]
        )
        positions = base.match_rows(query)
        # Python-set oracle.
        base_ints = base.to_ints()
        first_position = {}
        for i, v in enumerate(base_ints):
            first_position.setdefault(v, i)
        expected = [first_position.get(v, -1) for v in query.to_ints()]
        assert positions.tolist() == expected


class TestPersistentSession:
    """The incremental API a campaign-lifetime table runs on:
    ``insert_packed`` batches with growth mid-stream, fold collisions
    across batches, bounded (``limit``) inserts with exact rollback,
    and the snapshot counters."""

    def test_insert_packed_unlimited_is_insert(self):
        rng = np.random.default_rng(20)
        words = _random_words(rng, 800)
        a, b = BucketTable(2), BucketTable(2)
        assert np.array_equal(a.insert_packed(words), b.insert(words))
        assert len(a) == len(b)
        assert np.array_equal(a.lookup(words), b.lookup(words))

    def test_many_batches_against_python_set_oracle(self):
        # A long campaign: 40 batches with heavy cross-batch repeats,
        # growth boundaries crossed mid-stream.  Fresh masks must match
        # a first-occurrence Python-set oracle at every step.
        rng = np.random.default_rng(21)
        pool = _random_words(rng, 1500)
        table = BucketTable(2)  # minimum slot count: forces growth
        seen = set()
        sizes = set()
        for _ in range(40):
            take = rng.integers(0, len(pool), size=97)
            batch = pool[take]
            fresh = table.insert_packed(batch)
            for i, row in enumerate(map(tuple, batch.tolist())):
                assert fresh[i] == (row not in seen), row
                seen.add(row)
            sizes.add(table.slot_count)
        assert len(table) == len(seen)
        assert len(sizes) > 2  # growth actually happened mid-campaign
        assert table.rows_offered == 40 * 97

    def test_fold_collision_rows_across_batches(self, monkeypatch):
        # Distinct rows whose (weakened) folds collide, spread across
        # separate batches: later batches must still dedup against
        # them and keep distinct colliding rows individually findable.
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: words[:, 0] & np.uint64(3),
        )
        rng = np.random.default_rng(22)
        base = _random_words(rng, 200)
        table = BucketTable(2)
        assert table.insert_packed(base).all()
        for start in range(0, 200, 50):
            again = table.insert_packed(base[start:start + 50])
            assert not again.any()
        extra = _random_words(rng, 100)
        assert table.insert_packed(extra).all()
        assert np.array_equal(table.lookup(base), np.arange(200))
        assert (table.lookup(extra) >= 0).all()

    def test_limit_admits_first_fresh_rows_only(self):
        words = np.array(
            [[1, 1], [2, 2], [1, 1], [3, 3], [4, 4]], dtype=np.uint64
        )
        table = BucketTable(2)
        fresh = table.insert_packed(words, limit=2)
        # Fresh rows in batch order are [1,1],[2,2],[3,3],[4,4]; only
        # the first two are admitted.
        assert fresh.tolist() == [True, True, False, False, False]
        assert len(table) == 2
        assert (table.lookup(words[3:]) == -1).all()
        # Rolled-back rows are re-insertable later as fresh.
        again = table.insert_packed(words, limit=10)
        assert again.tolist() == [False, False, False, True, True]
        assert len(table) == 4

    def test_limit_rollback_is_exact_state(self):
        # After a limited insert the table must behave exactly like a
        # table that only ever saw the admitted rows.
        rng = np.random.default_rng(23)
        base = _random_words(rng, 500)
        batch = _random_words(rng, 400)
        limited = BucketTable(2, capacity=900)
        limited.insert_packed(base)
        fresh = limited.insert_packed(batch, limit=100)
        assert fresh.sum() == 100
        reference = BucketTable(2, capacity=900)
        reference.insert_packed(base)
        reference.insert_packed(batch[np.flatnonzero(fresh)])
        probe = np.vstack([base, batch, _random_words(rng, 300)])
        assert np.array_equal(
            limited.lookup(probe) >= 0, reference.lookup(probe) >= 0
        )
        assert len(limited) == len(reference) == 600

    def test_limit_rollback_across_growth_boundary(self):
        # The limited batch itself triggers growth (rehash): rollback
        # must rebuild the slot array, not leak phantom rows.
        rng = np.random.default_rng(24)
        table = BucketTable(1)  # minimum size
        seed_rows = _random_words(rng, 10, k=1)
        table.insert_packed(seed_rows)
        big = _random_words(rng, 5000, k=1)
        fresh = table.insert_packed(big, limit=7)
        assert fresh.sum() == 7
        assert len(table) == 17
        admitted = big[np.flatnonzero(fresh)]
        assert (table.lookup(admitted) >= 0).all()
        dropped = big[~fresh]
        assert (table.lookup(dropped) == -1).all()
        # The table remains fully functional after the rollback.
        assert table.insert_packed(big[:100], limit=None).sum() >= 93
        assert (table.lookup(seed_rows) >= 0).all()

    def test_limit_zero_and_validation(self):
        table = BucketTable(2)
        words = np.array([[5, 5], [6, 6]], dtype=np.uint64)
        fresh = table.insert_packed(words, limit=0)
        assert not fresh.any()
        assert len(table) == 0
        assert table.rows_offered == 2  # offered counts the full batch
        with pytest.raises(ValueError):
            table.insert_packed(words, limit=-1)

    def test_snapshot_counters(self):
        table = BucketTable(1)
        table.insert_packed(np.array([[1], [2], [1]], dtype=np.uint64))
        assert table.rows_stored == len(table) == 2
        assert table.rows_offered == 3
        table.insert_packed(np.array([[2], [3]], dtype=np.uint64), limit=0)
        assert table.rows_stored == 2
        assert table.rows_offered == 5

    def test_workers_bit_identity_on_shared_prepopulated_session(self):
        # Two identically pre-populated sessions, one driven at
        # workers=1 and one at workers=4, across several generate_set
        # calls: rows and session contents must stay bit-identical.
        from repro.core.pipeline import EntropyIP

        rng = np.random.default_rng(25)
        values = [
            (0x20010DB8 << 96) | (int(s) << 64) | int(h)
            for s, h in zip(
                rng.integers(0, 8, size=1200),
                rng.integers(0, 1 << 16, size=1200),
            )
        ]
        train = AddressSet.from_ints(values)
        model = EntropyIP.fit(train).model
        serial_session = model.session(exclude=train)
        parallel_session = model.session(exclude=train)
        serial_rng = np.random.default_rng(7)
        parallel_rng = np.random.default_rng(7)
        for n in (300, 300, 200):
            serial = model.generate_set(
                n, serial_rng, state=serial_session, workers=1
            )
            parallel = model.generate_set(
                n, parallel_rng, state=parallel_session, workers=4
            )
            assert np.array_equal(serial.matrix, parallel.matrix)
        assert len(serial_session) == len(parallel_session)
        probe = serial_session.table
        assert np.array_equal(
            probe.lookup(train.packed_rows()),
            parallel_session.table.lookup(train.packed_rows()),
        )


class TestAgainstReferences:
    def test_match_rows_agrees_with_sorted_reference(self):
        rng = np.random.default_rng(7)
        values = [int(v) for v in rng.integers(0, 1 << 62, size=2000)]
        base = AddressSet.from_ints(values + values[:300])
        query = AddressSet.from_ints(
            values[::2] + [int(v) for v in rng.integers(0, 1 << 62, size=800)]
        )
        assert (
            base.match_rows(query).tolist()
            == base._match_rows_sorted(query).tolist()
        )

    def test_prefix_width_rows(self):
        rng = np.random.default_rng(8)
        values = [int(v) for v in rng.integers(0, 1 << 60, size=500)]
        base = AddressSet.from_ints(values, width=16, already_truncated=False)
        query = AddressSet.from_ints(
            values[::3], width=16, already_truncated=False
        )
        assert (base.match_rows(query) >= 0).all()
        assert (
            base.match_rows(query).tolist()
            == base._match_rows_sorted(query).tolist()
        )

    def test_table_consistent_with_pack_rows(self):
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 16, size=(300, 32), dtype=np.uint8)
        base = AddressSet(matrix)
        table = base._membership_index()
        assert (table.lookup(pack_rows(matrix)) >= 0).all()
