"""Adversarial tests for the open-addressing bucket-table index.

Covers the failure modes a hash table earns the hard way: fold
collisions between distinct rows, growth (rehashing) across many
power-of-two boundaries, duplicate-heavy batches, empty tables and
empty queries — plus equivalence against both the sorted searchsorted
reference index and a plain Python-set oracle.
"""

import numpy as np
import pytest

import repro.ipv6.sets as sets_module
from repro.ipv6.sets import AddressSet, BucketTable, pack_rows


def _random_words(rng, n, k=2, bits=63):
    return rng.integers(0, 1 << bits, size=(n, k), dtype=np.uint64)


class TestBasics:
    def test_insert_and_lookup_roundtrip(self):
        rng = np.random.default_rng(0)
        words = _random_words(rng, 1000)
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.all()  # all distinct at 63 random bits
        assert len(table) == 1000
        assert np.array_equal(table.lookup(words), np.arange(1000))
        misses = _random_words(rng, 500)
        assert (table.lookup(misses) == -1).all()

    def test_duplicates_first_occurrence_wins(self):
        words = np.array(
            [[1, 2], [3, 4], [1, 2], [5, 6], [3, 4], [1, 2]], dtype=np.uint64
        )
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.tolist() == [True, True, False, True, False, False]
        assert len(table) == 3
        # Lookup reports the id of the first occurrence.
        assert table.lookup(words).tolist() == [0, 1, 0, 3, 1, 0]

    def test_incremental_ids_continue_across_batches(self):
        table = BucketTable(1)
        table.insert(np.array([[7], [8]], dtype=np.uint64))
        fresh = table.insert(np.array([[8], [9]], dtype=np.uint64))
        assert fresh.tolist() == [False, True]
        # Default ids count every offered row, so [9] is row 3 of the
        # stream (0-indexed).
        assert table.lookup(np.array([[9]], dtype=np.uint64)).tolist() == [3]

    def test_explicit_ids(self):
        table = BucketTable(1)
        table.insert(
            np.array([[4], [5]], dtype=np.uint64),
            ids=np.array([40, 50], dtype=np.int64),
        )
        assert table.lookup(np.array([[5], [4]], dtype=np.uint64)).tolist() == [
            50,
            40,
        ]

    def test_empty_table_and_empty_query(self):
        table = BucketTable(2)
        assert len(table) == 0
        assert table.lookup(np.empty((0, 2), dtype=np.uint64)).size == 0
        rng = np.random.default_rng(1)
        assert (table.lookup(_random_words(rng, 100)) == -1).all()
        assert table.insert(np.empty((0, 2), dtype=np.uint64)).size == 0

    def test_shape_validation(self):
        table = BucketTable(2)
        with pytest.raises(ValueError):
            table.insert(np.zeros((4, 3), dtype=np.uint64))
        with pytest.raises(ValueError):
            table.lookup(np.zeros(4, dtype=np.uint64))
        with pytest.raises(ValueError):
            table.insert(
                np.zeros((4, 2), dtype=np.uint64),
                ids=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ValueError):
            BucketTable(0)


class TestGrowth:
    def test_growth_across_many_boundaries(self):
        rng = np.random.default_rng(2)
        table = BucketTable(2)  # starts at the minimum slot count
        seen = []
        sizes = set()
        for _ in range(40):
            batch = _random_words(rng, 97)
            table.insert(batch)
            seen.append(batch)
            sizes.add(table.slot_count)
        all_words = np.vstack(seen)
        assert len(table) == len(all_words)  # 63-bit rows: no dups
        assert len(sizes) > 3  # actually crossed several boundaries
        assert (table.lookup(all_words) >= 0).all()
        assert (table.lookup(_random_words(rng, 1000)) == -1).all()

    def test_single_huge_insert_grows_once(self):
        rng = np.random.default_rng(3)
        words = _random_words(rng, 10_000, k=1)
        table = BucketTable(1)
        fresh = table.insert(words)
        assert fresh.all()
        assert table.slot_count >= 2 * len(words)
        assert np.array_equal(table.lookup(words), np.arange(10_000))

    def test_duplicates_do_not_trigger_spurious_growth(self):
        words = np.tile(np.array([[1, 9]], dtype=np.uint64), (5000, 1))
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.sum() == 1
        assert len(table) == 1

    def test_dup_heavy_batch_into_populated_table_keeps_size(self):
        # The saturated-generation regime: a batch far larger than the
        # table that contains nothing new must leave the slot array and
        # storage untouched (growth tracks fresh rows, not batch size).
        rng = np.random.default_rng(11)
        base = _random_words(rng, 4000)
        table = BucketTable(2, capacity=4000)
        table.insert(base)
        slots_before = table.slot_count
        fresh = table.insert(np.vstack([base, base, base, base]))
        assert not fresh.any()
        assert table.slot_count == slots_before
        assert len(table) == 4000


class TestFoldCollisions:
    """Distinct rows with identical mixed folds must stay distinct."""

    def test_weak_fold_is_still_exact(self, monkeypatch):
        # Degrade the fold to its low 3 bits: massive intentional
        # collisions.  The table must still answer exactly, because
        # every key match is word-verified and probing walks past
        # mismatches.
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: words[:, 0] & np.uint64(7),
        )
        rng = np.random.default_rng(4)
        words = _random_words(rng, 500)
        table = BucketTable(2)
        fresh = table.insert(words)
        assert fresh.all()
        assert np.array_equal(table.lookup(words), np.arange(500))
        misses = _random_words(rng, 200)
        assert (table.lookup(misses) == -1).all()

    def test_constant_fold_duplicates_and_growth(self, monkeypatch):
        # The pathological extreme: every row hashes to the same home
        # slot, turning the table into a linear scan.  Correctness
        # (dedup, first-occurrence ids, growth) must survive.
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: np.zeros(len(words), dtype=np.uint64),
        )
        rng = np.random.default_rng(5)
        distinct = _random_words(rng, 300, k=1)
        batch = np.vstack([distinct, distinct[::2]])
        table = BucketTable(1)
        fresh = table.insert(batch)
        assert fresh[:300].all()
        assert not fresh[300:].any()
        assert len(table) == 300
        assert np.array_equal(table.lookup(distinct), np.arange(300))

    def test_match_rows_with_weak_fold(self, monkeypatch):
        monkeypatch.setattr(
            sets_module,
            "_mix_words",
            lambda words: words[:, 0] & np.uint64(15),
        )
        rng = np.random.default_rng(6)
        values = [int(v) for v in rng.integers(0, 1 << 60, size=400)]
        base = AddressSet.from_ints(values + values[:60])
        query = AddressSet.from_ints(
            values[::5] + [int(v) for v in rng.integers(0, 1 << 60, size=150)]
        )
        positions = base.match_rows(query)
        # Python-set oracle.
        base_ints = base.to_ints()
        first_position = {}
        for i, v in enumerate(base_ints):
            first_position.setdefault(v, i)
        expected = [first_position.get(v, -1) for v in query.to_ints()]
        assert positions.tolist() == expected


class TestAgainstReferences:
    def test_match_rows_agrees_with_sorted_reference(self):
        rng = np.random.default_rng(7)
        values = [int(v) for v in rng.integers(0, 1 << 62, size=2000)]
        base = AddressSet.from_ints(values + values[:300])
        query = AddressSet.from_ints(
            values[::2] + [int(v) for v in rng.integers(0, 1 << 62, size=800)]
        )
        assert (
            base.match_rows(query).tolist()
            == base._match_rows_sorted(query).tolist()
        )

    def test_prefix_width_rows(self):
        rng = np.random.default_rng(8)
        values = [int(v) for v in rng.integers(0, 1 << 60, size=500)]
        base = AddressSet.from_ints(values, width=16, already_truncated=False)
        query = AddressSet.from_ints(
            values[::3], width=16, already_truncated=False
        )
        assert (base.match_rows(query) >= 0).all()
        assert (
            base.match_rows(query).tolist()
            == base._match_rows_sorted(query).tolist()
        )

    def test_table_consistent_with_pack_rows(self):
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 16, size=(300, 32), dtype=np.uint8)
        base = AddressSet(matrix)
        table = base._membership_index()
        assert (table.lookup(pack_rows(matrix)) >= 0).all()
