"""Drift detector edge cases: exact zeros, windows, rebasing."""

import numpy as np
import pytest

from repro.ingest.drift import DEFAULT_DRIFT_THRESHOLD, DriftDetector
from repro.ingest.stats import variable_code_counts
from repro.stats.entropy import nybble_counts, nybble_entropies


def make_detector(rows, codes, cards, **kwargs):
    return DriftDetector(
        nybble_entropies(rows),
        variable_code_counts(codes, cards),
        **kwargs,
    )


@pytest.fixture(scope="module")
def fitted():
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network

    rows = build_network("S1").sample(500, seed=1)
    analysis = EntropyIP.fit(rows)
    codes = analysis.encoder.encode_set(rows)
    return rows, analysis, codes


class TestValidation:
    def test_rejects_nonpositive_threshold(self, fitted):
        rows, analysis, codes = fitted
        with pytest.raises(ValueError, match="threshold"):
            make_detector(
                rows, codes, analysis.encoder.cardinalities, threshold=0.0
            )

    def test_rejects_nonpositive_min_rows(self, fitted):
        rows, analysis, codes = fitted
        with pytest.raises(ValueError, match="min_rows"):
            make_detector(
                rows, codes, analysis.encoder.cardinalities, min_rows=0
            )

    def test_default_threshold_matches_temporal_change_detection(self):
        assert DEFAULT_DRIFT_THRESHOLD == 0.15


class TestSignal:
    def test_empty_window_scores_zero_and_never_fires(self, fitted):
        rows, analysis, codes = fitted
        detector = make_detector(rows, codes, analysis.encoder.cardinalities)
        signal = detector.signal()
        assert signal.score == 0.0
        assert signal.pending_rows == 0
        assert not signal.fired

    def test_zero_row_update_is_a_no_op(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards)
        detector.update(
            np.zeros_like(nybble_counts(rows)),
            [np.zeros(c, dtype=np.int64) for c in cards],
            0,
        )
        assert detector.pending_rows == 0
        assert not detector.signal().fired

    def test_window_identical_to_training_scores_exactly_zero(self, fitted):
        """Same integer counts → same float expressions → score is an
        exact 0.0, so an identical-to-training batch can never refit."""
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards, threshold=1e-12)
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        signal = detector.signal()
        assert signal.entropy_shift == 0.0
        assert signal.code_divergence == 0.0
        assert signal.score == 0.0
        assert not signal.fired

    def test_flipped_window_fires(self, fitted):
        """A value-flipped window keeps per-nybble entropy (bijection)
        but moves the code histograms — the divergence leg catches it."""
        from repro.ipv6.sets import AddressSet

        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        flipped = AddressSet(15 - rows.matrix)
        flipped_codes = analysis.encoder.encode_set(flipped)
        detector = make_detector(rows, codes, cards, threshold=0.05)
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(flipped_codes, cards),
            len(flipped),
        )
        signal = detector.signal()
        assert signal.code_divergence > 0.05
        assert signal.score >= signal.entropy_shift
        assert signal.fired

    def test_min_rows_suppresses_firing(self, fitted):
        from repro.ipv6.sets import AddressSet

        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        flipped = AddressSet(15 - rows.matrix)
        detector = make_detector(
            rows, codes, cards, threshold=0.05, min_rows=len(rows) + 1
        )
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(analysis.encoder.encode_set(flipped), cards),
            len(flipped),
        )
        signal = detector.signal()
        assert signal.score > 0.05
        assert not signal.fired  # window too small to mean anything yet

    def test_signal_reports_threshold_and_rows(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards, threshold=0.4)
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        signal = detector.signal()
        assert signal.threshold == 0.4
        assert signal.pending_rows == len(rows)


class TestRebase:
    def test_rebase_clears_window(self, fitted):
        from repro.ipv6.sets import AddressSet

        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        flipped = AddressSet(15 - rows.matrix)
        flipped_codes = analysis.encoder.encode_set(flipped)
        detector = make_detector(rows, codes, cards, threshold=0.05)
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(flipped_codes, cards),
            len(flipped),
        )
        assert detector.signal().fired
        detector.rebase(
            nybble_entropies(flipped),
            variable_code_counts(flipped_codes, cards),
        )
        assert detector.pending_rows == 0
        assert detector.signal().score == 0.0
        # The adopted distribution is now the baseline: replaying it
        # scores an exact zero, replaying the *old* one diverges.
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(flipped_codes, cards),
            len(flipped),
        )
        assert detector.signal().score == 0.0
        detector.rebase(
            nybble_entropies(flipped),
            variable_code_counts(flipped_codes, cards),
        )
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        assert detector.signal().fired
