"""Drift detector edge cases: exact zeros, windows, caps, rebasing."""

import numpy as np
import pytest

from repro.errors import DriftWindowOverflowError, ReproError
from repro.ingest.drift import DEFAULT_DRIFT_THRESHOLD, DriftDetector
from repro.ingest.stats import variable_code_counts
from repro.stats.entropy import nybble_counts, nybble_entropies


def make_detector(rows, codes, cards, **kwargs):
    return DriftDetector(
        nybble_entropies(rows),
        variable_code_counts(codes, cards),
        **kwargs,
    )


@pytest.fixture(scope="module")
def fitted():
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network

    rows = build_network("S1").sample(500, seed=1)
    analysis = EntropyIP.fit(rows)
    codes = analysis.encoder.encode_set(rows)
    return rows, analysis, codes


class TestValidation:
    def test_rejects_nonpositive_threshold(self, fitted):
        rows, analysis, codes = fitted
        with pytest.raises(ValueError, match="threshold"):
            make_detector(
                rows, codes, analysis.encoder.cardinalities, threshold=0.0
            )

    def test_rejects_nonpositive_min_rows(self, fitted):
        rows, analysis, codes = fitted
        with pytest.raises(ValueError, match="min_rows"):
            make_detector(
                rows, codes, analysis.encoder.cardinalities, min_rows=0
            )

    def test_default_threshold_matches_temporal_change_detection(self):
        assert DEFAULT_DRIFT_THRESHOLD == 0.15

    def test_rejects_negative_max_pending_rows(self, fitted):
        rows, analysis, codes = fitted
        with pytest.raises(ValueError, match="max_pending_rows"):
            make_detector(
                rows,
                codes,
                analysis.encoder.cardinalities,
                max_pending_rows=-1,
            )


class TestWindowCap:
    def test_uncapped_detector_never_overflows(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards)  # max_pending_rows=0
        for _ in range(5):
            detector.update(
                nybble_counts(rows),
                variable_code_counts(codes, cards),
                len(rows),
            )
        assert detector.pending_rows == 5 * len(rows)

    def test_overflow_raises_with_no_partial_mutation(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(
            rows, codes, cards, max_pending_rows=len(rows) + 10
        )
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        before_counts = detector._pending_counts.copy()
        with pytest.raises(DriftWindowOverflowError):
            detector.update(
                nybble_counts(rows),
                variable_code_counts(codes, cards),
                len(rows),
            )
        # Nothing folded in: rows and counts are exactly pre-batch.
        assert detector.pending_rows == len(rows)
        assert np.array_equal(detector._pending_counts, before_counts)

    def test_overflow_error_is_typed_under_repro_error(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards, max_pending_rows=1)
        with pytest.raises(ReproError):
            detector.update(
                nybble_counts(rows),
                variable_code_counts(codes, cards),
                len(rows),
            )

    def test_exact_fit_to_cap_is_admitted(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(
            rows, codes, cards, max_pending_rows=len(rows)
        )
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        assert detector.pending_rows == len(rows)

    def test_rebase_resets_the_cap_headroom(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(
            rows, codes, cards, max_pending_rows=len(rows)
        )
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        detector.rebase(
            nybble_entropies(rows), variable_code_counts(codes, cards)
        )
        # Full headroom again after the refit rebased the window.
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        assert detector.pending_rows == len(rows)

    def test_capped_scoring_unchanged_exact_zero(self, fitted):
        """The cap must not perturb scoring: a training-identical
        window under a cap still scores an exact 0.0."""
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(
            rows, codes, cards, threshold=1e-12, max_pending_rows=len(rows)
        )
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        signal = detector.signal()
        assert signal.score == 0.0
        assert not signal.fired

    def test_pipeline_overflow_keeps_stats_consistent(self, fitted):
        """An over-cap ingest batch is rejected before *any* state —
        incremental stats included — folds it in."""
        from repro.ingest import IngestConfig, IngestPipeline

        rows, analysis, codes = fitted
        pipeline = IngestPipeline(
            "s1",
            analysis,
            config=IngestConfig(
                threshold=10.0,  # never fires: the cap must save us
                max_pending_rows=len(rows) + 10,
            ),
        )
        first = pipeline.ingest(rows)
        assert first.rows == len(rows)
        total_before = pipeline.total_rows
        with pytest.raises(DriftWindowOverflowError):
            pipeline.ingest(rows)
        assert pipeline.total_rows == total_before
        assert pipeline.pending_rows == len(rows)
        # An explicit refit rebases the window; ingestion resumes.
        pipeline.refit()
        assert pipeline.pending_rows == 0
        assert pipeline.ingest(rows).rows == len(rows)


class TestSignal:
    def test_empty_window_scores_zero_and_never_fires(self, fitted):
        rows, analysis, codes = fitted
        detector = make_detector(rows, codes, analysis.encoder.cardinalities)
        signal = detector.signal()
        assert signal.score == 0.0
        assert signal.pending_rows == 0
        assert not signal.fired

    def test_zero_row_update_is_a_no_op(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards)
        detector.update(
            np.zeros_like(nybble_counts(rows)),
            [np.zeros(c, dtype=np.int64) for c in cards],
            0,
        )
        assert detector.pending_rows == 0
        assert not detector.signal().fired

    def test_window_identical_to_training_scores_exactly_zero(self, fitted):
        """Same integer counts → same float expressions → score is an
        exact 0.0, so an identical-to-training batch can never refit."""
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards, threshold=1e-12)
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        signal = detector.signal()
        assert signal.entropy_shift == 0.0
        assert signal.code_divergence == 0.0
        assert signal.score == 0.0
        assert not signal.fired

    def test_flipped_window_fires(self, fitted):
        """A value-flipped window keeps per-nybble entropy (bijection)
        but moves the code histograms — the divergence leg catches it."""
        from repro.ipv6.sets import AddressSet

        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        flipped = AddressSet(15 - rows.matrix)
        flipped_codes = analysis.encoder.encode_set(flipped)
        detector = make_detector(rows, codes, cards, threshold=0.05)
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(flipped_codes, cards),
            len(flipped),
        )
        signal = detector.signal()
        assert signal.code_divergence > 0.05
        assert signal.score >= signal.entropy_shift
        assert signal.fired

    def test_min_rows_suppresses_firing(self, fitted):
        from repro.ipv6.sets import AddressSet

        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        flipped = AddressSet(15 - rows.matrix)
        detector = make_detector(
            rows, codes, cards, threshold=0.05, min_rows=len(rows) + 1
        )
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(analysis.encoder.encode_set(flipped), cards),
            len(flipped),
        )
        signal = detector.signal()
        assert signal.score > 0.05
        assert not signal.fired  # window too small to mean anything yet

    def test_signal_reports_threshold_and_rows(self, fitted):
        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        detector = make_detector(rows, codes, cards, threshold=0.4)
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        signal = detector.signal()
        assert signal.threshold == 0.4
        assert signal.pending_rows == len(rows)


class TestRebase:
    def test_rebase_clears_window(self, fitted):
        from repro.ipv6.sets import AddressSet

        rows, analysis, codes = fitted
        cards = analysis.encoder.cardinalities
        flipped = AddressSet(15 - rows.matrix)
        flipped_codes = analysis.encoder.encode_set(flipped)
        detector = make_detector(rows, codes, cards, threshold=0.05)
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(flipped_codes, cards),
            len(flipped),
        )
        assert detector.signal().fired
        detector.rebase(
            nybble_entropies(flipped),
            variable_code_counts(flipped_codes, cards),
        )
        assert detector.pending_rows == 0
        assert detector.signal().score == 0.0
        # The adopted distribution is now the baseline: replaying it
        # scores an exact zero, replaying the *old* one diverges.
        detector.update(
            nybble_counts(flipped),
            variable_code_counts(flipped_codes, cards),
            len(flipped),
        )
        assert detector.signal().score == 0.0
        detector.rebase(
            nybble_entropies(flipped),
            variable_code_counts(flipped_codes, cards),
        )
        detector.update(
            nybble_counts(rows), variable_code_counts(codes, cards), len(rows)
        )
        assert detector.signal().fired
