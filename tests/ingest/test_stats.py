"""Incremental sufficient statistics: exactness vs the one-pass fit."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.ingest.stats import (
    IncrementalStats,
    same_code_mapping,
    variable_code_counts,
)
from repro.ipv6.sets import AddressSet
from repro.stats.entropy import nybble_entropies


@pytest.fixture(scope="module")
def feed():
    """One S1 sample split into a training slice and three batches."""
    rows = build_network("S1").sample(800, seed=3)
    slices = [rows.take(range(lo, hi)) for lo, hi in
              [(0, 350), (350, 500), (500, 650), (650, 800)]]
    return rows, slices


@pytest.fixture(scope="module")
def seeded(feed):
    _, slices = feed
    analysis = EntropyIP.fit(slices[0])
    stats = IncrementalStats(analysis.address_set, analysis.encoder)
    for batch in slices[1:]:
        stats.update(batch)
    return analysis, stats


class TestVariableCodeCounts:
    def test_matches_manual_bincount(self):
        codes = np.array([[0, 2], [1, 2], [0, 0]])
        counts = variable_code_counts(codes, [2, 3])
        assert np.array_equal(counts[0], [2, 1])
        assert np.array_equal(counts[1], [1, 0, 2])

    def test_pads_to_cardinality(self):
        counts = variable_code_counts(np.zeros((4, 1), dtype=int), [5])
        assert np.array_equal(counts[0], [4, 0, 0, 0, 0])


class TestSameCodeMapping:
    def test_identity(self, seeded):
        analysis, _ = seeded
        assert same_code_mapping(analysis.encoder, analysis.encoder)

    def test_different_fit_differs(self, seeded, feed):
        analysis, _ = seeded
        rows, _ = feed
        other = EntropyIP.fit(AddressSet(15 - rows.matrix))
        assert not same_code_mapping(analysis.encoder, other.encoder)


class TestIncrementalStats:
    def test_rejects_empty_seed(self, seeded):
        analysis, _ = seeded
        empty = analysis.address_set.take([])
        with pytest.raises(ValueError, match="empty"):
            IncrementalStats(empty, analysis.encoder)

    def test_rejects_width_mismatch(self, seeded):
        analysis, _ = seeded
        narrow = analysis.address_set.truncate(16)
        with pytest.raises(ValueError, match="width"):
            IncrementalStats(narrow, analysis.encoder)

    def test_rejects_batch_width_mismatch(self, seeded):
        analysis, stats = seeded
        with pytest.raises(ValueError, match="width"):
            stats.update(analysis.address_set.truncate(16))

    def test_rows_accumulate(self, seeded, feed):
        rows, _ = feed
        _, stats = seeded
        assert stats.rows == len(rows)

    def test_entropies_bit_identical_to_full_pass(self, seeded, feed):
        rows, _ = feed
        _, stats = seeded
        full = nybble_entropies(stats.materialize())
        assert np.array_equal(stats.entropies(), full)
        assert np.array_equal(stats.entropies(), nybble_entropies(rows))

    def test_materialize_is_arrival_order_concat(self, seeded, feed):
        rows, _ = feed
        _, stats = seeded
        assert np.array_equal(stats.materialize().matrix, rows.matrix)

    def test_codes_equal_full_encode(self, seeded, feed):
        rows, _ = feed
        analysis, stats = seeded
        assert np.array_equal(
            stats.codes(), analysis.encoder.encode_set(rows)
        )

    def test_family_counts_match_cumulative(self, seeded, feed):
        rows, _ = feed
        analysis, stats = seeded
        from repro.bayes.scores import FamilyStats

        fresh = FamilyStats(
            analysis.encoder.encode_set(rows), analysis.encoder.cardinalities
        )
        assert stats.family.n_samples == fresh.n_samples
        n_vars = len(analysis.encoder.cardinalities)
        for child in range(n_vars):
            for parent in range(n_vars):
                if parent == child:
                    continue
                assert np.array_equal(
                    stats.family.counts2d(child, (parent,)),
                    fresh.counts2d(child, (parent,)),
                )

    def test_rebase_rejects_short_codes(self, seeded):
        analysis, stats = seeded
        with pytest.raises(ValueError, match="rows"):
            stats.rebase(analysis.encoder, np.zeros((3, 2), dtype=np.int64))
