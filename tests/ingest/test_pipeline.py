"""The ingest pipeline: bit-identity, drift gating, live model rolls."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.errors import (
    IngestDriftError,
    SessionCapacityError,
    StaleModelError,
)
from repro.ingest import IngestConfig, IngestPipeline
from repro.ipv6.sets import AddressSet
from repro.serve import HitlistService, ModelRegistry, SessionManager
from repro.serve.registry import model_digest
from tests.core.test_fit_golden import GOLDEN_DIGESTS, SEED, TRAIN_SIZE

#: Never fires: streams statistics without ever triggering a refit.
QUIET = IngestConfig(threshold=10.0)


def slices(rows, bounds):
    return [rows.take(range(lo, hi)) for lo, hi in bounds]


@pytest.fixture(scope="module")
def s1_feed():
    rows = build_network("S1").sample(700, seed=5)
    train, batches = rows.take(range(0, 400)), slices(
        rows, [(400, 550), (550, 700)]
    )
    return train, batches


def quiet_pipeline(train, batches, **kwargs):
    pipeline = IngestPipeline(
        "m", EntropyIP.fit(train), config=QUIET, **kwargs
    )
    for batch in batches:
        pipeline.ingest(batch)
    return pipeline


class TestGoldenBitIdentity:
    """The headline contract: an incremental refit reproduces the
    pinned from-scratch digest on the same cumulative rows."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_DIGESTS))
    def test_refit_matches_pinned_digest(self, name):
        rows = build_network(name).sample(TRAIN_SIZE, seed=SEED)
        train = rows.take(range(0, 400))
        pipeline = IngestPipeline(name, EntropyIP.fit(train), config=QUIET)
        for lo, hi in [(400, 600), (600, 800), (800, TRAIN_SIZE)]:
            report = pipeline.ingest(rows.take(range(lo, hi)))
            assert not report.refit
        pipeline.refit()
        assert pipeline.digest == GOLDEN_DIGESTS[name], (
            f"{name}: incremental refit diverged from the from-scratch "
            "fit on the same cumulative rows"
        )
        assert model_digest(pipeline.analysis) == GOLDEN_DIGESTS[name]

    def test_repeated_refits_stay_identical(self, s1_feed):
        train, batches = s1_feed
        pipeline = quiet_pipeline(train, batches)
        pipeline.refit()
        cumulative = AddressSet(
            np.concatenate(
                [train.matrix] + [b.matrix for b in batches], axis=0
            )
        )
        assert pipeline.digest == model_digest(EntropyIP.fit(cumulative))
        # A second refit on unchanged rows is a fixed point.
        first = pipeline.digest
        pipeline.refit()
        assert pipeline.digest == first


class TestDriftGating:
    def test_empty_batch_is_a_legal_no_op(self, s1_feed):
        train, _ = s1_feed
        pipeline = IngestPipeline(
            "m", EntropyIP.fit(train), config=IngestConfig(threshold=1e-9)
        )
        report = pipeline.ingest(train.take(np.array([], dtype=np.intp)))
        assert report.rows == 0
        assert report.total_rows == len(train)
        assert not report.refit
        assert not report.signal.fired
        assert pipeline.refits == 0

    def test_batch_identical_to_training_never_refits(self, s1_feed):
        """Identical counts score an exact 0.0 — below any positive
        threshold, so replaying the training set cannot refit."""
        train, _ = s1_feed
        pipeline = IngestPipeline(
            "m", EntropyIP.fit(train), config=IngestConfig(threshold=1e-12)
        )
        report = pipeline.ingest(train)
        assert report.signal.score == 0.0
        assert not report.refit
        assert pipeline.refits == 0

    def test_adversarial_flip_refits_exactly_once(self, s1_feed):
        """A flip-every-nybble batch maximally moves the code histograms;
        one ingest call pays one refit, and the rebased baseline does
        not fire again without new evidence."""
        train, _ = s1_feed
        pipeline = IngestPipeline(
            "m", EntropyIP.fit(train), config=IngestConfig(threshold=0.05)
        )
        flipped = AddressSet(15 - train.matrix)
        report = pipeline.ingest(flipped)
        assert report.signal.fired
        assert report.refit
        assert pipeline.refits == 1
        assert pipeline.pending_rows == 0
        follow_up = pipeline.ingest(train.take(np.array([], dtype=np.intp)))
        assert not follow_up.refit
        assert pipeline.refits == 1

    def test_auto_refit_off_raises_and_keeps_the_batch(self, s1_feed):
        train, _ = s1_feed
        pipeline = IngestPipeline(
            "m",
            EntropyIP.fit(train),
            config=IngestConfig(threshold=0.05, auto_refit=False),
        )
        flipped = AddressSet(15 - train.matrix)
        with pytest.raises(IngestDriftError, match="kept"):
            pipeline.ingest(flipped)
        # The batch folded before the raise: nothing to re-send.
        assert pipeline.total_rows == 2 * len(train)
        assert pipeline.pending_rows == len(train)
        pipeline.refit()
        assert pipeline.refits == 1
        assert pipeline.pending_rows == 0
        cumulative = AddressSet(
            np.concatenate([train.matrix, flipped.matrix], axis=0)
        )
        assert pipeline.digest == model_digest(EntropyIP.fit(cumulative))

    def test_min_refit_rows_defers_firing(self, s1_feed):
        train, _ = s1_feed
        pipeline = IngestPipeline(
            "m",
            EntropyIP.fit(train),
            config=IngestConfig(
                threshold=0.05, min_refit_rows=len(train) + 1
            ),
        )
        flipped = AddressSet(15 - train.matrix)
        report = pipeline.ingest(flipped)
        assert report.signal.score > 0.05
        assert not report.refit  # window below min_refit_rows
        report = pipeline.ingest(flipped.take(range(0, 1)))
        assert report.refit  # one more row tips the window over


class TestRegistryIntegration:
    def test_refit_bumps_version_in_registry(self, s1_feed):
        train, batches = s1_feed
        registry = ModelRegistry()
        pipeline = quiet_pipeline(train, batches, registry=registry)
        assert pipeline.version == 1
        pipeline.refit()
        assert pipeline.version == 2
        entry = registry.get("m")
        assert entry.digest == pipeline.digest
        assert entry.version == 2

    def test_stale_registry_entry_refuses_refit(self, s1_feed):
        train, batches = s1_feed
        registry = ModelRegistry()
        pipeline = quiet_pipeline(train, batches, registry=registry)
        # Another writer replaces the entry behind the pipeline's back.
        other = EntropyIP.fit(AddressSet(15 - train.matrix))
        registry.register("m", other)
        with pytest.raises(StaleModelError, match="replaced"):
            pipeline.refit()

    def test_library_only_mode_tracks_versions_locally(self, s1_feed):
        train, batches = s1_feed
        pipeline = quiet_pipeline(train, batches)
        assert pipeline.version == 1
        pipeline.refit()
        assert pipeline.version == 2
        stats = pipeline.stats()
        assert stats["refits"] == 1
        assert stats["total_rows"] == pipeline.total_rows
        assert stats["digest"] == pipeline.digest


class TestSessionRoll:
    def test_sessions_preserve_dedup_state_across_refit(self, s1_feed):
        """The tentpole guarantee: a drift-triggered roll keeps every
        live stream's exclusion table and RNG position, so clients
        never see a repeat across the model swap."""
        train, batches = s1_feed
        registry = ModelRegistry()
        sessions = SessionManager(registry)
        pipeline = quiet_pipeline(
            train, batches, registry=registry, sessions=sessions
        )
        session = sessions.open("m", "alice", seed=7)
        before = session.generate(300)
        old_digest = session.entry.digest
        pipeline.refit()
        assert session.entry.digest == pipeline.digest != old_digest
        assert not session.closed
        assert sessions.get("m", "alice") is session  # same warm object
        # Everything served pre-roll stays retired post-roll.
        assert session.membership(before).all()
        after = session.generate(300)
        assert before.contains_rows(after).sum() == 0

    def test_rollover_remains_the_full_reset_escape_hatch(self, s1_feed):
        train, batches = s1_feed
        registry = ModelRegistry()
        sessions = SessionManager(registry)
        pipeline = quiet_pipeline(
            train, batches, registry=registry, sessions=sessions
        )
        session = sessions.open("m", "alice", seed=7)
        served = session.generate(100)
        pipeline.refit()
        rolled = sessions.rollover("m", "alice")
        assert rolled is not session
        assert session.closed
        assert rolled.entry.digest == pipeline.digest
        assert not rolled.membership(served).any()  # state reset

    def test_adopt_skips_sessions_already_current(self, s1_feed):
        train, batches = s1_feed
        registry = ModelRegistry()
        sessions = SessionManager(registry)
        pipeline = quiet_pipeline(
            train, batches, registry=registry, sessions=sessions
        )
        sessions.open("m", "alice", seed=1)
        pipeline.refit()
        # Pipeline already adopted during refit; nothing left to do.
        assert sessions.adopt_model("m") == 0

    def test_refit_during_capacity_pressure_rolls_back_observe(
        self, s1_feed
    ):
        """A capped session survives the model roll at its cap, and an
        over-cap observe afterwards fails atomically — the retired set
        is exactly what it was before the failed call."""
        train, batches = s1_feed
        registry = ModelRegistry()
        sessions = SessionManager(registry)
        pipeline = quiet_pipeline(
            train, batches, registry=registry, sessions=sessions
        )
        session = sessions.open("m", "alice", seed=7, capacity=350)
        served = session.generate(300)
        assert len(served) == 300
        pipeline.refit()  # roll lands while the session is near its cap
        assert session.entry.digest == pipeline.digest
        retired_before = len(session.session)
        oversized = batches[0]  # 150 rows > 50 remaining slots
        mask_before = session.membership(oversized)
        with pytest.raises(SessionCapacityError, match="capacity"):
            session.observe(oversized)
        assert len(session.session) == retired_before
        assert session.membership(served).all()
        assert np.array_equal(session.membership(oversized), mask_before)
        # Within-cap observes still work after the failed one.
        fresh = session.observe(oversized.take(range(0, 30)))
        assert 0 < fresh <= 30
        assert len(session.session) == retired_before + fresh


class TestServiceIntegration:
    def test_service_ingest_end_to_end(self, s1_feed):
        train, batches = s1_feed
        with HitlistService() as service:
            service.fit("m", train)
            service.open_ingest("m", config=IngestConfig(threshold=0.05))
            session = service.open_session("m", "alice", seed=3)
            before = service.generate("m", "alice", 200)
            flipped = AddressSet(15 - train.matrix)
            report = service.ingest("m", flipped)
            assert report.refit
            assert report.version == 2
            assert session.entry.version == 2
            assert service.membership("m", "alice", before).all()
            after = service.generate("m", "alice", 200)
            assert before.contains_rows(after).sum() == 0
            stats = service.stats()
            assert stats["kinds"]["ingest"]["requests"] == 1

    def test_open_ingest_is_idempotent_per_model(self, s1_feed):
        train, _ = s1_feed
        with HitlistService() as service:
            service.fit("m", train)
            first = service.open_ingest("m")
            second = service.open_ingest("m")
            assert first is second
