"""Ingest checkpoint/resume: a resumed feed continues bit-identically."""

import numpy as np
import pytest

from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.faults import FaultPlan
from repro.ingest import IngestConfig, IngestPipeline
from repro.serve import HitlistService, ModelRegistry

QUIET = IngestConfig(threshold=10.0)


@pytest.fixture(scope="module")
def s1_feed():
    rows = build_network("S1").sample(700, seed=5)
    train = rows.take(range(0, 400))
    batches = [rows.take(range(400, 550)), rows.take(range(550, 700))]
    return train, batches


class TestSnapshotRestore:
    def test_resumed_feed_matches_uninterrupted_run(self, s1_feed, tmp_path):
        train, batches = s1_feed
        full = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)
        interrupted = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)

        report_full_1 = full.ingest(batches[0])
        interrupted.ingest(batches[0])
        path = str(tmp_path / "feed.ckpt")
        save_checkpoint(path, "ingest", interrupted.snapshot())
        del interrupted  # the "killed" process

        resumed = IngestPipeline.restore(
            load_checkpoint(path, kind="ingest"), config=QUIET
        )
        assert resumed.batches == 1
        assert resumed.rows_ingested == report_full_1.rows
        report_full_2 = full.ingest(batches[1])
        report_resumed_2 = resumed.ingest(batches[1])
        assert report_resumed_2.total_rows == report_full_2.total_rows
        assert (
            report_resumed_2.signal.score == report_full_2.signal.score
        )
        # The headline: a refit after resume lands on the identical
        # model bytes the uninterrupted run produces.
        full.refit()
        resumed.refit()
        assert resumed.digest == full.digest

    def test_snapshot_preserves_pending_drift_window(self, s1_feed):
        train, batches = s1_feed
        pipeline = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)
        pipeline.ingest(batches[0])
        restored = IngestPipeline.restore(pipeline.snapshot(), config=QUIET)
        assert restored.pending_rows == pipeline.pending_rows
        assert restored.total_rows == pipeline.total_rows
        assert restored.digest == pipeline.digest
        assert restored.version == pipeline.version

    def test_restore_into_service_rolls_refits_forward(self, s1_feed,
                                                       tmp_path):
        """A pipeline resumed through the service is wired to its
        registry: a later refit rolls a new version in as usual."""
        train, batches = s1_feed
        library = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)
        library.ingest(batches[0])
        path = str(tmp_path / "feed.ckpt")
        save_checkpoint(path, "ingest", library.snapshot())

        registry = ModelRegistry()
        registry.register("m", EntropyIP.fit(train))
        with HitlistService(registry=registry) as svc:
            pipeline = svc.restore_ingest(
                load_checkpoint(path, kind="ingest"), config=QUIET
            )
            assert svc.open_ingest("m") is pipeline
            pipeline.ingest(batches[1])
            pipeline.refit()
            assert registry.get("m").digest == pipeline.digest
            assert registry.get("m").version == pipeline.version

    def test_resumed_version_lineage_never_regresses(self, s1_feed,
                                                     tmp_path):
        """A fresh process's registry counter restarts at 1; the
        checkpointed version is the lineage high-water mark and must
        carry over, with later refits continuing from it."""
        train, batches = s1_feed
        registry = ModelRegistry()
        pipeline = IngestPipeline("m", EntropyIP.fit(train), config=QUIET,
                                  registry=registry)
        pipeline.ingest(batches[0])
        pipeline.refit()
        assert pipeline.version == 2
        path = str(tmp_path / "feed.ckpt")
        save_checkpoint(path, "ingest", pipeline.snapshot())

        fresh = ModelRegistry()  # the "new process" after a crash
        with HitlistService(registry=fresh) as svc:
            resumed = svc.restore_ingest(
                load_checkpoint(path, kind="ingest"), config=QUIET
            )
            assert resumed.version == 2
            assert fresh.get("m").version == 2
            resumed.ingest(batches[1])
            resumed.refit()
            assert resumed.version == 3
            assert fresh.get("m").version == 3


class TestRefitFaultSite:
    def test_injected_refit_fault_is_recoverable(self, s1_feed):
        """A refit that dies mid-flight loses nothing: the batch's
        statistics were already folded, so the caller just refits
        again."""
        train, batches = s1_feed
        pipeline = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)
        pipeline.ingest(batches[0])
        before = pipeline.digest
        with FaultPlan.parse("ingest.refit@1:raise=RuntimeError").armed():
            with pytest.raises(RuntimeError, match="injected fault"):
                pipeline.refit()
            assert pipeline.digest == before  # nothing rolled
            pipeline.refit()  # the retry succeeds under the same plan
        assert pipeline.digest != before
        reference = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)
        reference.ingest(batches[0])
        reference.refit()
        assert pipeline.digest == reference.digest

    def test_checkpoint_save_fault_leaves_no_partial_file(self, s1_feed,
                                                          tmp_path):
        train, batches = s1_feed
        pipeline = IngestPipeline("m", EntropyIP.fit(train), config=QUIET)
        pipeline.ingest(batches[0])
        path = tmp_path / "feed.ckpt"
        with FaultPlan.parse("checkpoint.save@1:raise=OSError").armed():
            with pytest.raises(OSError, match="injected fault"):
                save_checkpoint(str(path), "ingest", pipeline.snapshot())
            assert not path.exists()
            save_checkpoint(str(path), "ingest", pipeline.snapshot())
        restored = IngestPipeline.restore(
            load_checkpoint(str(path), kind="ingest")
        )
        assert restored.total_rows == pipeline.total_rows
