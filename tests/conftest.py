"""Shared fixtures: small, deterministic address sets and networks."""

import numpy as np
import pytest

from repro.datasets.networks import (
    build_japanese_telco,
    build_r1,
    build_s1,
    build_s3,
)
from repro.ipv6.sets import AddressSet


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_set():
    """The five Fig. 3 example addresses."""
    return AddressSet.from_strings(
        [
            "20010db840011111000000000000111c",
            "20010db840011111000000000000111f",
            "20010db840031c13000000000000200c",
            "20010db8400a2f2a000000000000200f",
            "20010db840011111000000000000111f",
        ]
    )


@pytest.fixture(scope="session")
def structured_set():
    """2K addresses with clear segment structure and a dependency.

    Layout: fixed /32 | subnet nybble s | zeros | IID: with probability
    0.6 the IID is exactly ``s`` (dependent!), else random 16 bits.
    """
    generator = np.random.default_rng(42)
    values = []
    for _ in range(2000):
        subnet = int(generator.integers(0, 8))
        if generator.random() < 0.6:
            iid = subnet
        else:
            iid = int(generator.integers(0x100, 0x10000))
        values.append((0x20010DB8 << 96) | (subnet << 64) | iid)
    return AddressSet.from_ints(values)


@pytest.fixture(scope="session")
def jp_small():
    """Japanese telco model with a small population (fast fits)."""
    return build_japanese_telco(population_size=6000)


@pytest.fixture(scope="session")
def s1_small():
    return build_s1(population_size=8000)


@pytest.fixture(scope="session")
def s3_small():
    return build_s3(population_size=20000)


@pytest.fixture(scope="session")
def r1_small():
    return build_r1(population_size=8000)
