"""Tests for the from-scratch DBSCAN implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.dbscan import DBSCAN, NOISE, dbscan_labels


def brute_force_dbscan(points, weights, eps, min_samples):
    """Reference implementation with O(n^2) region queries."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = len(points)
    weights = np.ones(n) if weights is None else np.asarray(weights, float)
    distance = np.sqrt(
        ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    )
    neighbor_sets = [np.nonzero(distance[i] <= eps)[0] for i in range(n)]
    core = np.array([weights[ns].sum() >= min_samples for ns in neighbor_sets])
    labels = np.full(n, NOISE)
    cluster = 0
    for start in range(n):
        if labels[start] != NOISE or not core[start]:
            continue
        stack = [start]
        while stack:
            i = stack.pop()
            if labels[i] != NOISE:
                continue
            labels[i] = cluster
            if core[i]:
                stack.extend(j for j in neighbor_sets[i] if labels[j] == NOISE)
        cluster += 1
    return labels


def same_partition(a, b):
    """Cluster labels equal up to renaming (noise must match exactly)."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        return False
    if not np.array_equal(a == NOISE, b == NOISE):
        return False
    mapping = {}
    for x, y in zip(a, b):
        if x == NOISE:
            continue
        if mapping.setdefault(x, y) != y:
            return False
    return len(set(mapping.values())) == len(mapping)


class TestBasics:
    def test_one_cluster_and_noise(self):
        labels = dbscan_labels([[0.0], [0.1], [0.2], [9.0]], eps=0.5, min_samples=2)
        assert labels[0] == labels[1] == labels[2] != NOISE
        assert labels[3] == NOISE

    def test_two_clusters(self):
        points = [[0], [1], [2], [100], [101], [102]]
        labels = dbscan_labels(points, eps=1.5, min_samples=2)
        assert labels[0] == labels[2]
        assert labels[3] == labels[5]
        assert labels[0] != labels[3]

    def test_all_noise(self):
        labels = dbscan_labels([[0], [10], [20]], eps=1, min_samples=2)
        assert all(label == NOISE for label in labels)

    def test_border_point_joins_cluster(self):
        # 0,0.5,1 core chain; 1.4 is a border point (1 neighbor weight 2).
        labels = dbscan_labels(
            [[0.0], [0.5], [1.0], [1.4]], eps=0.5, min_samples=3
        )
        assert labels[3] == labels[2] != NOISE

    def test_2d_clusters(self):
        cloud_a = [[x / 10, y / 10] for x in range(3) for y in range(3)]
        cloud_b = [[5 + x / 10, 5 + y / 10] for x in range(3) for y in range(3)]
        labels = dbscan_labels(cloud_a + cloud_b, eps=0.3, min_samples=4)
        assert len(set(labels[:9])) == 1
        assert len(set(labels[9:])) == 1
        assert labels[0] != labels[9]

    def test_empty_input(self):
        assert dbscan_labels(np.empty((0, 1)), eps=1, min_samples=2).size == 0

    def test_clusters_accessor(self):
        model = DBSCAN(eps=0.5, min_samples=2).fit([[0.0], [0.1], [9.0]])
        clusters = model.clusters()
        assert clusters == {0: [0, 1]}

    def test_clusters_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DBSCAN(eps=1, min_samples=1).clusters()


class TestWeights:
    def test_weight_makes_core(self):
        # A single point with weight 5 is its own dense cluster.
        labels = dbscan_labels([[0.0], [9.0]], eps=0.5, min_samples=5,
                               weights=[5, 1])
        assert labels[0] != NOISE and labels[1] == NOISE

    def test_weight_sum_in_neighborhood(self):
        # Two points, each weight 3, within eps: both core at min 5.
        labels = dbscan_labels([[0.0], [0.3]], eps=0.5, min_samples=5,
                               weights=[3, 3])
        assert labels[0] == labels[1] != NOISE

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            dbscan_labels([[0.0]], eps=1, min_samples=1, weights=[-1])

    def test_rejects_weight_shape_mismatch(self):
        with pytest.raises(ValueError):
            dbscan_labels([[0.0]], eps=1, min_samples=1, weights=[1, 2])


class TestValidation:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0, min_samples=1)

    def test_rejects_bad_min_samples(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=1, min_samples=0)


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=40),
        st.floats(0.1, 10),
        st.integers(1, 5),
    )
    def test_1d_matches_reference(self, xs, eps, min_samples):
        points = [[x] for x in xs]
        ours = dbscan_labels(points, eps=eps, min_samples=min_samples)
        reference = brute_force_dbscan(points, None, eps, min_samples)
        # Core-point partition must match; border-point assignment is
        # order-dependent in DBSCAN, so compare noise sets and count.
        assert np.array_equal(ours == NOISE, reference == NOISE)
        assert len(set(ours[ours != NOISE])) == len(
            set(reference[reference != NOISE])
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 20, allow_nan=False),
                      st.floats(0, 20, allow_nan=False)),
            min_size=1,
            max_size=25,
        ),
        st.floats(0.5, 5),
    )
    def test_2d_noise_matches_reference(self, pts, eps):
        points = [list(p) for p in pts]
        ours = dbscan_labels(points, eps=eps, min_samples=3)
        reference = brute_force_dbscan(points, None, eps, 3)
        assert np.array_equal(ours == NOISE, reference == NOISE)
