"""Tests for the interval algebra behind mined ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.intervals import (
    Interval,
    clusters_to_intervals,
    covered_count,
    merge_intervals,
    subtract_intervals,
)

INTERVALS = st.builds(
    lambda a, b: Interval(min(a, b), max(a, b)),
    st.integers(0, 1000),
    st.integers(0, 1000),
)


class TestInterval:
    def test_contains(self):
        assert 5 in Interval(1, 10)
        assert 0 not in Interval(1, 10)

    def test_len(self):
        assert len(Interval(3, 7)) == 5
        assert len(Interval(3, 3)) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_overlaps_and_touches(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert not Interval(1, 5).overlaps(Interval(6, 9))
        assert Interval(1, 5).touches(Interval(6, 9))  # adjacent
        assert not Interval(1, 5).touches(Interval(7, 9))

    def test_union(self):
        assert Interval(1, 5).union(Interval(6, 9)) == Interval(1, 9)
        with pytest.raises(ValueError):
            Interval(1, 2).union(Interval(9, 10))

    def test_intersect(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        with pytest.raises(ValueError):
            Interval(1, 2).intersect(Interval(5, 6))

    def test_ordering(self):
        assert Interval(1, 2) < Interval(2, 3)


class TestMerge:
    def test_merges_overlaps_and_adjacency(self):
        merged = merge_intervals([Interval(5, 9), Interval(1, 3), Interval(4, 4)])
        assert merged == [Interval(1, 9)]

    def test_keeps_disjoint(self):
        merged = merge_intervals([Interval(1, 2), Interval(10, 12)])
        assert merged == [Interval(1, 2), Interval(10, 12)]

    def test_empty(self):
        assert merge_intervals([]) == []

    @given(st.lists(INTERVALS, max_size=20))
    def test_merged_are_disjoint_and_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for a, b in zip(merged, merged[1:]):
            assert a.high + 1 < b.low

    @given(st.lists(INTERVALS, max_size=20))
    def test_merge_preserves_coverage(self, intervals):
        covered = set()
        for interval in intervals:
            covered.update(range(interval.low, interval.high + 1))
        merged_covered = set()
        for interval in merge_intervals(intervals):
            merged_covered.update(range(interval.low, interval.high + 1))
        assert covered == merged_covered


class TestSubtract:
    def test_hole_in_middle(self):
        remaining = subtract_intervals(Interval(0, 10), [Interval(3, 5)])
        assert remaining == [Interval(0, 2), Interval(6, 10)]

    def test_hole_covers_all(self):
        assert subtract_intervals(Interval(3, 5), [Interval(0, 10)]) == []

    def test_no_holes(self):
        assert subtract_intervals(Interval(0, 5), []) == [Interval(0, 5)]

    @given(INTERVALS, st.lists(INTERVALS, max_size=10))
    def test_subtraction_disjoint_from_holes(self, universe, holes):
        remaining = subtract_intervals(universe, holes)
        for part in remaining:
            for hole in holes:
                assert not part.overlaps(hole)

    @given(INTERVALS, st.lists(INTERVALS, max_size=10))
    def test_subtraction_partition(self, universe, holes):
        remaining = subtract_intervals(universe, holes)
        kept = covered_count(remaining) if remaining else 0
        hole_inside = 0
        for hole in merge_intervals(holes):
            if hole.overlaps(universe):
                hole_inside += len(hole.intersect(universe))
        assert kept + hole_inside == len(universe)


class TestClustersToIntervals:
    def test_basic(self):
        values = [1, 2, 3, 10, 11, 50]
        labels = [0, 0, 0, 1, 1, -1]
        pairs = clusters_to_intervals(values, labels)
        assert pairs == [(0, Interval(1, 3)), (1, Interval(10, 11))]

    def test_noise_skipped(self):
        assert clusters_to_intervals([5], [-1]) == []

    def test_vectorized_matches_scalar_on_uint64_array(self):
        import numpy as np

        values = np.asarray([1, 2, 3, 10, 11, 50], dtype=np.uint64)
        labels = np.asarray([0, 0, 0, 1, 1, -1])
        assert clusters_to_intervals(values, labels) == [
            (0, Interval(1, 3)),
            (1, Interval(10, 11)),
        ]

    def test_python_ints_above_2_63_stay_exact(self):
        # A plain int list with entries above 2**63 coerces to float64
        # under np.asarray; the exact scalar path must handle it, not
        # the vectorized branch (which would round the bounds).
        low, high = 2**63 + 12345, 2**63 + 12346
        pairs = clusters_to_intervals([low, high, 5], [0, 0, -1])
        assert pairs == [(0, Interval(low, high))]
