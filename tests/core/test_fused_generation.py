"""Bit-identity tests for the fused sample→packed generation path.

:func:`repro.bayes.sampling.sample_packed` draws BN states straight
into the packed-uint64 row layout that
:meth:`AddressEncoder.fused_plan` derives from the encoder's
``_word_plan`` — skipping the ``(n, num_vars)`` code matrix, the
``(n, width)`` nybble matrix, and the whole ``decode_to_set`` pass.
The two-step ``sample_codes`` → ``decode_to_set`` pipeline survives as
the reference, and the fusion's hard contract is bit-identity with it:
the fused path must consume the RNG stream in exactly the reference's
order (ancestral draws, then ranged-offset draws per segment) and emit
exactly :func:`~repro.ipv6.sets.pack_rows` of the rows the reference
would have built.  These tests pin that contract on the benchmark
golden models (field by field and as packed-word digests), across the
serial/sharded ``generate_set`` routes, and — via hypothesis — on
random CPD/segment layouts, including word-straddling segments where
``fused_plan()`` is None and the fused route must fall back to the
reference with identical output.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import sample_packed
from repro.core.encoding import AddressEncoder
from repro.core.mining import MinedSegment, SegmentValue
from repro.core.model import AddressModel
from repro.core.pipeline import EntropyIP
from repro.core.segmentation import Segment
from repro.datasets.networks import build_network
from repro.ipv6.sets import unpack_rows

TRAIN_SIZE = 1000
SEED = 0


@pytest.fixture(scope="module", params=["S1", "R1"])
def fitted(request):
    train = build_network(request.param).sample(TRAIN_SIZE, seed=SEED)
    return request.param, EntropyIP.fit(train).model


def _digest(words: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(words).tobytes()).hexdigest()


class TestGoldenModels:
    """The fused path vs the two-step reference on S1/R1 at seed 0."""

    N = 50_000

    def test_packed_rows_bit_identical(self, fitted):
        name, model = fitted
        plan = model.encoder.fused_plan()
        assert plan is not None, f"{name}: golden model lost its word plan"
        rng_ref = np.random.default_rng(7)
        rng_fused = np.random.default_rng(7)
        codes = model.sample_codes(self.N, rng_ref)
        reference = model.encoder.decode_to_set(
            codes, rng_ref, validate=False
        )
        fused = sample_packed(model.network, plan, self.N, rng_fused)
        # Packed-word digests must coincide...
        assert _digest(fused) == _digest(reference.packed_rows()), name
        # ...because the rows themselves do, field by field (the
        # unpacked nybble matrix is the per-segment field view).
        assert np.array_equal(
            unpack_rows(fused, model.encoder.width), reference.matrix
        ), name

    def test_rng_stream_position_identical(self, fitted):
        """The fused path consumes exactly the reference's draws, so a
        caller interleaving other draws on the same generator sees the
        same stream afterwards."""
        name, model = fitted
        plan = model.encoder.fused_plan()
        rng_ref = np.random.default_rng(11)
        rng_fused = np.random.default_rng(11)
        codes = model.sample_codes(self.N, rng_ref)
        model.encoder.decode_to_set(codes, rng_ref, validate=False)
        sample_packed(model.network, plan, self.N, rng_fused)
        assert (
            rng_ref.bit_generator.state == rng_fused.bit_generator.state
        ), name

    def test_generate_set_fused_matches_twostep(self, fitted):
        """The full exclusion-loop route emits identical sets whether a
        batch is drawn fused or through the retained two-step path."""
        name, model = fitted
        fused = model.generate_set(
            20_000, np.random.default_rng(3), fused=True
        )
        twostep = model.generate_set(
            20_000, np.random.default_rng(3), fused=False
        )
        assert np.array_equal(fused.matrix, twostep.matrix), name

    def test_workers_invariant_through_fused_route(self, fitted):
        """workers=4 ≡ workers=1 with the fused batch draw."""
        name, model = fitted
        serial = model.generate_set(
            20_000, np.random.default_rng(5), workers=1, fused=True
        )
        parallel = model.generate_set(
            20_000, np.random.default_rng(5), workers=4, fused=True
        )
        assert np.array_equal(serial.matrix, parallel.matrix), name


def _random_layout(rng: np.random.Generator):
    """A random mined-segment layout over a random address width."""
    width = int(rng.integers(4, 33))
    mined = []
    first = 1
    index = 0
    while first <= width:
        seg_width = int(rng.integers(1, min(16, width - first + 1) + 1))
        last = first + seg_width - 1
        bound = 16**seg_width - 1  # up to 2**64 - 1: draw as uint64
        values = []
        for v in range(int(rng.integers(1, 5))):
            low = int(rng.integers(0, bound, dtype=np.uint64, endpoint=True))
            if rng.random() < 0.5:
                high = low  # point value
            else:
                high = int(
                    rng.integers(low, bound, dtype=np.uint64, endpoint=True)
                )
            values.append(
                SegmentValue(f"V{index}_{v}", low, high, 1.0, "outlier")
            )
        mined.append(
            MinedSegment(Segment(f"V{index}", first, last), tuple(values))
        )
        first = last + 1
        index += 1
    return mined


def _random_network(encoder: AddressEncoder, rng: np.random.Generator):
    """Random CPDs over the encoder's variables: roots and chains."""
    names = encoder.variable_names
    cards = encoder.cardinalities
    cpds = []
    for i, (name, card) in enumerate(zip(names, cards)):
        if i and rng.random() < 0.5:
            raw = rng.random((card, cards[i - 1])) + 0.1
            cpds.append(CPD(name, [names[i - 1]], raw / raw.sum(axis=0)))
        else:
            raw = rng.random(card) + 0.1
            cpds.append(CPD(name, [], raw / raw.sum()))
    return BayesianNetwork(names, cpds)


class TestRandomLayouts:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_fused_matches_reference_or_falls_back(self, seed):
        rng = np.random.default_rng(seed)
        encoder = AddressEncoder(_random_layout(rng))
        network = _random_network(encoder, rng)
        model = AddressModel(encoder, network)
        n = 256

        rng_ref = np.random.default_rng(seed + 1)
        codes = model.sample_codes(n, rng_ref)
        reference = model.encoder.decode_to_set(
            codes, rng_ref, validate=False
        )
        plan = encoder.fused_plan()
        if plan is None:
            # A segment straddles a 16-nybble word boundary: the fused
            # plan must refuse, and the fused generate_set route must
            # fall back to the reference with identical output.
            assert encoder._word_plan is None
        else:
            rng_fused = np.random.default_rng(seed + 1)
            fused = sample_packed(network, plan, n, rng_fused)
            assert np.array_equal(fused, reference.packed_rows())
            assert np.array_equal(
                unpack_rows(fused, encoder.width), reference.matrix
            )
            assert (
                rng_ref.bit_generator.state == rng_fused.bit_generator.state
            )
        fused_set = model.generate_set(
            64, np.random.default_rng(seed + 2), fused=True
        )
        twostep_set = model.generate_set(
            64, np.random.default_rng(seed + 2), fused=False
        )
        assert np.array_equal(fused_set.matrix, twostep_set.matrix)


class TestStraddlingFallback:
    def test_straddling_segment_disables_plan(self):
        """A segment crossing nybble 16/17 has no one-word home: no
        fused plan, and the fused route falls back bit-identically."""
        mined = [
            MinedSegment(
                Segment("A", 1, 14),
                (SegmentValue("A1", 0x2001, 0x2001, 1.0, "outlier"),),
            ),
            MinedSegment(
                Segment("B", 15, 18),  # straddles words 0 and 1
                (
                    SegmentValue("B1", 0, 0xFF, 0.5, "tail"),
                    SegmentValue("B2", 0x100, 0x100, 0.5, "outlier"),
                ),
            ),
            MinedSegment(
                Segment("C", 19, 20),
                (SegmentValue("C1", 0, 0xFF, 1.0, "tail"),),
            ),
        ]
        encoder = AddressEncoder(mined)
        assert encoder._word_plan is None
        assert encoder.fused_plan() is None
        rng = np.random.default_rng(0)
        network = _random_network(encoder, rng)
        model = AddressModel(encoder, network)
        fused_set = model.generate_set(
            500, np.random.default_rng(1), fused=True
        )
        twostep_set = model.generate_set(
            500, np.random.default_rng(1), fused=False
        )
        assert np.array_equal(fused_set.matrix, twostep_set.matrix)

    def test_fused_plan_is_cached(self, fitted):
        _, model = fitted
        assert model.encoder.fused_plan() is model.encoder.fused_plan()
