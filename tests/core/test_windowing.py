"""Tests for the Fig. 5 windowing analysis."""

import math

import numpy as np
import pytest

from repro.core.windowing import (
    MEASURES,
    windowing_analysis,
)
from repro.stats.entropy import entropy_of_counts


class TestWindowing:
    def test_cells_cover_all_aligned_windows(self, tiny_set):
        result = windowing_analysis(tiny_set)
        keys = {(c.position_bits, c.length_bits) for c in result.cells}
        assert (0, 4) in keys
        assert (124, 4) in keys
        assert (0, 64) in keys
        assert (0, 68) not in keys  # capped at 64 bits

    def test_single_nybble_matches_entropy(self, tiny_set):
        result = windowing_analysis(tiny_set)
        by_key = {(c.position_bits, c.length_bits): c.score for c in result.cells}
        expected = entropy_of_counts([2, 3]) / math.log(2)
        assert by_key[(124, 4)] == pytest.approx(expected)

    def test_distinct_measure(self, tiny_set):
        result = windowing_analysis(tiny_set, measure="distinct")
        by_key = {(c.position_bits, c.length_bits): c.score for c in result.cells}
        assert by_key[(124, 4)] == 2  # values c and f

    def test_top_frequency_measure(self, tiny_set):
        result = windowing_analysis(tiny_set, measure="top-frequency")
        by_key = {(c.position_bits, c.length_bits): c.score for c in result.cells}
        assert by_key[(124, 4)] == pytest.approx(0.6)

    def test_unknown_measure(self, tiny_set):
        with pytest.raises(KeyError):
            windowing_analysis(tiny_set, measure="nope")

    def test_bad_bit_step(self, tiny_set):
        with pytest.raises(ValueError):
            windowing_analysis(tiny_set, bit_step=6)

    def test_wider_step(self, tiny_set):
        result = windowing_analysis(tiny_set, bit_step=16)
        assert all(
            c.position_bits % 16 == 0 and c.length_bits % 16 == 0
            for c in result.cells
        )

    def test_as_matrix(self, tiny_set):
        result = windowing_analysis(tiny_set)
        matrix = result.as_matrix()
        cell = next(
            c for c in result.cells
            if (c.position_bits, c.length_bits) == (0, 8)
        )
        assert matrix[0, 2] == pytest.approx(cell.score)
        # Out-of-triangle cells are NaN.
        assert np.isnan(matrix[31, 16])

    def test_max_score(self, structured_set):
        result = windowing_analysis(structured_set)
        assert result.max_score() == max(c.score for c in result.cells)

    def test_entropy_monotone_in_window_length(self, structured_set):
        by_key = {
            (c.position_bits, c.length_bits): c.score
            for c in windowing_analysis(structured_set).cells
        }
        for position in (64, 96):
            assert by_key[(position, 32)] >= by_key[(position, 16)] - 1e-9

    def test_all_measures_registered(self):
        assert set(MEASURES) == {"entropy", "distinct", "top-frequency"}
