"""Tests for the 4-bit Aggregate Count Ratio."""

import numpy as np
import pytest

from repro.core.acr import acr_from_counts, aggregate_count_ratio
from repro.ipv6.sets import AddressSet


class TestACR:
    def test_constant_set_is_zero(self):
        s = AddressSet.from_strings(["2001:db8::1"] * 5)
        assert np.all(aggregate_count_ratio(s) == 0)

    def test_split_at_last_nybble(self):
        s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
        acr = aggregate_count_ratio(s)
        assert np.all(acr[:31] == 0)
        # Two branches at the last nybble: log16(2).
        assert acr[31] == pytest.approx(np.log(2) / np.log(16))

    def test_full_branching_is_one(self):
        # All 16 values at one nybble → ACR = 1 there.
        s = AddressSet.from_ints(
            [i << 124 for i in range(16)]
        )
        acr = aggregate_count_ratio(s)
        assert acr[0] == pytest.approx(1.0)
        assert np.all(acr[1:] == 0)

    def test_saturation_no_further_splitting(self):
        # Random IIDs: once every row is a distinct aggregate, further
        # nybbles cannot split (ACR → 0) even though entropy stays 1.
        rng = np.random.default_rng(0)
        values = [
            (0x20010DB8 << 96) | int(rng.integers(0, 1 << 16)) << 80
            for _ in range(64)
        ]
        s = AddressSet.from_ints(sorted(set(values)))
        acr = aggregate_count_ratio(s)
        assert np.all(acr[12:] == 0)

    def test_empty_set(self):
        assert np.all(aggregate_count_ratio(AddressSet.empty()) == 0)

    def test_values_bounded(self, structured_set):
        acr = aggregate_count_ratio(structured_set)
        assert np.all(acr >= 0) and np.all(acr <= 1)

    def test_product_equals_total_aggregates(self, structured_set):
        # sum of log16 ratios telescopes: 16^(sum ACR) = #distinct rows.
        acr = aggregate_count_ratio(structured_set)
        distinct = len(structured_set.unique())
        assert 16 ** acr.sum() == pytest.approx(distinct, rel=1e-6)


class TestAcrFromCounts:
    def test_telescoping(self):
        acr = acr_from_counts([2, 2, 4])
        assert acr[0] == pytest.approx(0.25)  # log16(2)
        assert acr[1] == 0
        assert acr[2] == pytest.approx(0.25)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            acr_from_counts([4, 2])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            acr_from_counts([0, 1])
