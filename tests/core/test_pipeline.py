"""End-to-end tests for the EntropyIP facade."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.core.segmentation import SegmentationConfig
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet


class TestFit:
    def test_from_strings(self):
        analysis = EntropyIP.fit(["2001:db8::%x" % i for i in range(64)])
        assert analysis.segments[0].label == "A"
        assert len(analysis.address_set) == 64

    def test_from_ints(self):
        analysis = EntropyIP.fit([(0x20010DB8 << 96) | i for i in range(64)])
        assert analysis.address_set.width == 32

    def test_from_address_objects(self):
        addresses = [IPv6Address((0x20010DB8 << 96) | i) for i in range(64)]
        analysis = EntropyIP.fit(addresses)
        assert len(analysis.address_set) == 64

    def test_from_address_set(self, structured_set):
        analysis = EntropyIP.fit(structured_set)
        assert analysis.address_set is structured_set

    def test_prefix_mode(self, structured_set):
        analysis = EntropyIP.fit(structured_set, width=16)
        assert analysis.address_set.width == 16
        assert analysis.segments[-1].last_nybble == 16

    def test_width_upscale_rejected(self):
        narrow = AddressSet.from_ints([1, 2], width=8)
        with pytest.raises(ValueError):
            EntropyIP.fit(narrow, width=16)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EntropyIP.fit([])

    def test_custom_segmentation_config(self, structured_set):
        config = SegmentationConfig(hard_cut_32=False, hard_cut_64=False)
        analysis = EntropyIP.fit(structured_set, segmentation=config)
        starts = [s.first_nybble for s in analysis.segments]
        assert 9 not in starts or 17 not in starts


class TestExploration:
    @pytest.fixture(scope="class")
    def analysis(self, structured_set):
        return EntropyIP.fit(structured_set)

    def test_entropy_profile(self, analysis):
        entropy = analysis.entropy()
        assert entropy.shape == (32,)
        assert analysis.total_entropy() == pytest.approx(float(entropy.sum()))

    def test_acr_profile(self, analysis):
        acr = analysis.acr()
        assert acr.shape == (32,)
        assert np.all((acr >= 0) & (acr <= 1))

    def test_browse(self, analysis):
        assert analysis.browse().rows()

    def test_windowing(self, analysis):
        result = analysis.windowing()
        assert result.cells

    def test_segment_table(self, analysis):
        table = analysis.segment_table()
        assert set(table) == {s.label for s in analysis.segments}

    def test_describe_mentions_key_facts(self, analysis):
        text = analysis.describe()
        assert "H_S" in text and "segments" in text


class TestGeneration:
    @pytest.fixture(scope="class")
    def analysis(self, structured_set):
        return EntropyIP.fit(structured_set)

    def test_generate_excludes_training(self, analysis, structured_set):
        generated = analysis.generate(300, np.random.default_rng(0))
        training = set(structured_set.to_ints())
        assert not (set(generated.to_ints()) & training)

    def test_generate_with_training_allowed(self, analysis):
        generated = analysis.generate(
            100, np.random.default_rng(0), exclude_training=False
        )
        assert len(generated) == 100

    def test_generate_addresses(self, analysis):
        addresses = analysis.generate_addresses(10, np.random.default_rng(0))
        assert all(isinstance(a, IPv6Address) for a in addresses)
        assert all(a.hex32().startswith("20010db8") for a in addresses)

    def test_default_rng(self, analysis):
        assert len(analysis.generate(10)) == 10

    def test_prefix_mode_generation(self, structured_set):
        analysis = EntropyIP.fit(structured_set, width=16)
        generated = analysis.generate(50, np.random.default_rng(1))
        assert generated.width == 16
