"""Golden-fit regression tests for the vectorized fit path.

The PR-4 vectorization rewired every stage of ``EntropyIP.fit``
(fused-bincount entropies, array-native mining over the banded DBSCAN,
cached-sufficient-statistics structure learning).  These tests pin a
content digest of the complete fitted model — segment boundaries, mined
value/range codes with exact frequencies, BN edges, CPD tables — for
the benchmark networks at seed 0, so any change that alters fit output
fails loudly here instead of silently shifting scan counts; and they
assert the vectorized path is bit-identical to the retained scalar
reference path (``EntropyIP._fit_reference``) on the same data.

If a digest changes *intentionally* (an algorithmic change to the
pipeline), re-pin it by running this file's ``print_digests`` helper::

    PYTHONPATH=src python -c \
        "from tests.core.test_fit_golden import print_digests; print_digests()"
"""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
# The canonical digest lives in the serving runtime now (it keys the
# ModelRegistry); this suite pins its value for the benchmark networks.
from repro.serve.registry import model_digest

TRAIN_SIZE = 1000
SEED = 0

#: sha256 over the canonical model serialization of model_digest(),
#: for EntropyIP.fit(network.sample(1000, seed=0)).
GOLDEN_DIGESTS = {
    "S1": "74d3bfaa861d28ea30f03c10a75665f68815922a147156f2b8af6466dc5b8b61",
    "R1": "20f27ed31bd9fbce301b2dfab5b3fc36f0be7a1033f55d4cb16059fcf70a6e5b",
}


def print_digests():
    """Recompute the digests to pin (run after intentional changes)."""
    for name in sorted(GOLDEN_DIGESTS):
        train = build_network(name).sample(TRAIN_SIZE, seed=SEED)
        print(name, model_digest(EntropyIP.fit(train)))


@pytest.fixture(scope="module", params=sorted(GOLDEN_DIGESTS))
def fitted(request):
    train = build_network(request.param).sample(TRAIN_SIZE, seed=SEED)
    return request.param, train, EntropyIP.fit(train)


class TestGoldenDigests:
    def test_fit_matches_pinned_digest(self, fitted):
        name, _, analysis = fitted
        assert model_digest(analysis) == GOLDEN_DIGESTS[name], (
            f"{name}: fitted-model digest changed — the vectorized fit "
            "path no longer reproduces the pinned model; if intentional, "
            "re-pin via print_digests()"
        )

    def test_reference_path_matches_pinned_digest(self, fitted):
        name, train, _ = fitted
        reference = EntropyIP._fit_reference(train)
        assert model_digest(reference) == GOLDEN_DIGESTS[name], name


class TestVectorReferenceBitIdentity:
    """Field-by-field equality, so a mismatch names the diverging stage."""

    def test_fit_bit_identical_to_reference(self, fitted):
        name, train, analysis = fitted
        reference = EntropyIP._fit_reference(train)
        assert np.array_equal(analysis.entropies, reference.entropies), name
        assert analysis.segments == reference.segments, name
        for mined_v, mined_r in zip(analysis.mined, reference.mined):
            assert mined_v.segment == mined_r.segment, name
            assert mined_v.values == mined_r.values, (
                name,
                mined_v.segment.label,
            )
        network_v = analysis.model.network
        network_r = reference.model.network
        assert sorted(network_v.edges()) == sorted(network_r.edges()), name
        for variable in network_v.variables:
            assert np.array_equal(
                network_v.cpd(variable).table, network_r.cpd(variable).table
            ), (name, variable)


class TestTierBatchedBDeu:
    """Tier-batched BDeu scoring (the default cached path) must
    produce byte-identical models to the uncached
    ``learn_structure(cache=False)`` reference — same parent sets,
    same CPD table bytes."""

    def test_learn_structure_tier_vs_uncached_reference(self, fitted):
        from repro.bayes.structure import learn_structure

        name, train, analysis = fitted
        encoder = analysis.encoder
        codes = encoder.encode_set(train)
        tier_batched = learn_structure(
            codes, encoder.variable_names, encoder.cardinalities
        )
        reference = learn_structure(
            codes, encoder.variable_names, encoder.cardinalities, cache=False
        )
        assert sorted(tier_batched.edges()) == sorted(reference.edges()), name
        for variable in tier_batched.variables:
            assert tier_batched.parents(variable) == reference.parents(
                variable
            ), (name, variable)
            assert (
                np.ascontiguousarray(
                    tier_batched.cpd(variable).table
                ).tobytes()
                == np.ascontiguousarray(
                    reference.cpd(variable).table
                ).tobytes()
            ), (name, variable)

    def test_tier_scores_equal_per_family_scores_on_fit_data(self, fitted):
        from itertools import combinations

        from repro.bayes.scores import FamilyStats

        name, train, analysis = fitted
        encoder = analysis.encoder
        codes = encoder.encode_set(train)
        cards = encoder.cardinalities
        batched = FamilyStats(codes, cards)
        single = FamilyStats(codes, cards)
        for child in range(len(cards)):
            tier = [
                subset
                for size in (1, 2)
                for subset in combinations(range(child), size)
            ]
            if not tier:
                continue
            scores = batched.score_tier(child, tier)
            for subset, score in zip(tier, scores):
                assert score == single.score(child, subset), (
                    name,
                    child,
                    subset,
                )


class TestGoldenAcrossProcessState:
    def test_digest_insensitive_to_refit(self, fitted):
        """Two fits of the same data in one process agree exactly."""
        name, train, analysis = fitted
        again = EntropyIP.fit(train)
        assert model_digest(again) == model_digest(analysis), name
