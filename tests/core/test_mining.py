"""Tests for §4.3 segment mining."""

import numpy as np
import pytest

from repro.core.mining import (
    MinedSegment,
    MiningConfig,
    SegmentValue,
    mine_segment,
    mine_segments,
)
from repro.core.segmentation import Segment, segment_addresses
from repro.ipv6.sets import AddressSet


def set_from_segment_values(values, nybbles=2):
    """Build a width-`nybbles` AddressSet whose rows are the values."""
    return AddressSet.from_ints(values, width=nybbles, already_truncated=True)


class TestSegmentValue:
    def test_point_vs_range(self):
        point = SegmentValue("A1", 5, 5, 0.5, "outlier")
        rng = SegmentValue("A2", 1, 9, 0.5, "tail")
        assert not point.is_range and rng.is_range
        assert point.span() == 1 and rng.span() == 9
        assert rng.contains(5) and not rng.contains(10)

    def test_formatting(self):
        assert SegmentValue("A1", 0x1F, 0x1F, 0.1, "outlier").format_value(4) == "001f"
        assert SegmentValue("A2", 0, 0xFF, 0.1, "tail").format_value(2) == "00-ff"

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentValue("A1", 5, 4, 0.1, "outlier")
        with pytest.raises(ValueError):
            SegmentValue("A1", 1, 2, 1.5, "outlier")


class TestMiningSteps:
    def test_fig3_segment_mining(self, tiny_set):
        # Segment of nybbles 12-16: D_k = {11111 x3, 31c13, a2f2a},
        # V_k should start with the dominant point value 11111.
        segment = Segment("B", 12, 16)
        mined = mine_segment(tiny_set, segment)
        assert mined.values[0].low == 0x11111
        assert mined.values[0].frequency == pytest.approx(3 / 5)

    def test_outlier_step_finds_popular_values(self):
        values = [0x10] * 500 + [0x20] * 300 + list(range(0x40, 0xE0)) * 2
        mined = mine_segment(
            set_from_segment_values(values), Segment("A", 1, 2)
        )
        points = [v.low for v in mined.values if not v.is_range]
        assert 0x10 in points and 0x20 in points
        assert points[0] == 0x10  # most frequent first

    def test_dense_range_found(self):
        # A dense block 0x40-0x80 with uniform counts, no outliers.
        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(0x40, 0x81, size=3000)]
        mined = mine_segment(
            set_from_segment_values(values), Segment("A", 1, 2)
        )
        ranges = [v for v in mined.values if v.is_range]
        assert ranges, "expected at least one mined range"
        top = max(ranges, key=lambda v: v.frequency)
        assert top.low >= 0x38 and top.high <= 0x88
        assert top.frequency > 0.9

    def test_frequencies_relative_to_original(self):
        values = [1] * 80 + [2] * 20
        mined = mine_segment(
            set_from_segment_values(values, nybbles=1), Segment("A", 1, 1)
        )
        total = sum(v.frequency for v in mined.values)
        assert total == pytest.approx(1.0)

    def test_small_tail_covered(self):
        # After the dominant value, only 3 adjacent values remain; they
        # must stay covered (as points or as one small range).
        values = [7] * 1000 + [1, 2, 3]
        mined = mine_segment(
            set_from_segment_values(values, nybbles=1), Segment("A", 1, 1)
        )
        assert mined.values[0].low == 7
        for leftover in (1, 2, 3):
            element = mined.values[mined.code_index(leftover)]
            assert element.contains(leftover)
            assert element.span() <= 3

    def test_scattered_small_tail_taken_individually(self):
        # Non-adjacent tail values cannot cluster; the remainder step
        # takes them one by one (|D_k| <= 10).
        values = [7] * 4000 + [0, 3, 11, 14]
        config = MiningConfig(stop_fraction=0.0)
        mined = mine_segment(
            set_from_segment_values(values, nybbles=1), Segment("A", 1, 1),
            config,
        )
        lows = {v.low for v in mined.values if not v.is_range}
        assert {0, 3, 11, 14} <= lows

    def test_large_tail_closed_with_range(self):
        # Dominant point + a scattered tail of >10 distinct values that
        # is too sparse to cluster.
        values = [0x50] * 5000 + [i * 16 for i in range(12)]
        config = MiningConfig(stop_fraction=0.0)
        mined = mine_segment(
            set_from_segment_values(values), Segment("A", 1, 2), config
        )
        tail_ranges = [v for v in mined.values if v.origin == "tail" and v.is_range]
        assert tail_ranges

    def test_stop_fraction_halts_early(self):
        # 99.95% mass on one value → remaining 0.05% ≤ 0.1% stops mining,
        # but the dust is still folded into a final element for coverage.
        values = [3] * 9995 + [8, 9, 10, 11, 12]
        mined = mine_segment(
            set_from_segment_values(values, nybbles=1), Segment("A", 1, 1)
        )
        assert mined.values[0].low == 3

    def test_every_training_value_covered(self, structured_set):
        # Coverage invariant: every observed segment value maps to some
        # element containing it (possibly via the tail range).
        segments = segment_addresses(structured_set)
        for mined in mine_segments(structured_set, segments):
            seg = mined.segment
            for value in structured_set.segment_values(
                seg.first_nybble, seg.last_nybble
            ):
                index = mined.code_index(int(value))
                assert 0 <= index < mined.cardinality

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            mine_segment(AddressSet.empty(2), Segment("A", 1, 2))


class TestCodes:
    def test_codes_are_label_indexed(self):
        values = [1] * 50 + [2] * 30 + [3] * 20
        mined = mine_segment(
            set_from_segment_values(values, nybbles=1), Segment("Q", 1, 1)
        )
        assert mined.codes()[0] == "Q1"
        assert all(code.startswith("Q") for code in mined.codes())

    def test_code_index_point_beats_range(self):
        mined = MinedSegment(
            Segment("A", 1, 2),
            (
                SegmentValue("A1", 0, 0xFF, 0.5, "tail"),
                SegmentValue("A2", 0x10, 0x10, 0.5, "outlier"),
            ),
        )
        assert mined.code_index(0x10) == 1  # exact point wins
        assert mined.code_index(0x20) == 0  # range catches the rest

    def test_code_index_nearest_fallback(self):
        mined = MinedSegment(
            Segment("A", 1, 2),
            (
                SegmentValue("A1", 0x10, 0x10, 0.5, "outlier"),
                SegmentValue("A2", 0xF0, 0xF0, 0.5, "outlier"),
            ),
        )
        assert mined.code_index(0x11) == 0
        assert mined.code_index(0xEE) == 1

    def test_cardinality(self):
        values = [1] * 50 + [2] * 50
        mined = mine_segment(
            set_from_segment_values(values, nybbles=1), Segment("A", 1, 1)
        )
        assert mined.cardinality == len(mined.values)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MiningConfig(max_nominations=0)
        with pytest.raises(ValueError):
            MiningConfig(stop_fraction=1.5)

    def test_nomination_cap_respected(self):
        # 30 equally-popular heavy values; only 10 may be nominated by
        # the outlier step.
        values = []
        for v in range(30):
            values.extend([v * 8] * 100)
        values.extend(range(0xF0, 0xFF))
        mined = mine_segment(
            set_from_segment_values(values), Segment("A", 1, 2)
        )
        outliers = [v for v in mined.values if v.origin == "outlier"]
        assert len(outliers) <= 10
