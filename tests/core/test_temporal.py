"""Tests for temporal structural analysis (§6 future work)."""

import math

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.core.temporal import (
    compare_snapshots,
    detect_changes,
    jensen_shannon,
)
from repro.ipv6.sets import AddressSet


def make_snapshot(seed, subnet_pool=8, renumbered=False, n=1500):
    """Structured set; ``renumbered`` moves everything to new subnets."""
    rng = np.random.default_rng(seed)
    base = 0x20010DB8 << 96
    offset = 0x100 if renumbered else 0
    values = []
    for _ in range(n):
        subnet = int(rng.integers(0, subnet_pool)) + offset
        iid = int(rng.integers(1, 1 << 16))
        values.append(base | (subnet << 64) | iid)
    return AddressSet.from_ints(values)


class TestJensenShannon:
    def test_identical_is_zero(self):
        p = np.array([0.5, 0.5])
        assert jensen_shannon(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_is_log2(self):
        assert jensen_shannon(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(math.log(2))

    def test_symmetry(self):
        p, q = np.array([0.9, 0.1]), np.array([0.4, 0.6])
        assert jensen_shannon(p, q) == pytest.approx(jensen_shannon(q, p))

    def test_accepts_counts(self):
        assert jensen_shannon(
            np.array([9, 1]), np.array([90, 10])
        ) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            jensen_shannon(np.array([1.0]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            jensen_shannon(np.array([0.0]), np.array([1.0]))


class TestCompareSnapshots:
    def test_stable_network_no_changes(self):
        before = EntropyIP.fit(make_snapshot(1))
        after = EntropyIP.fit(make_snapshot(2))
        delta = compare_snapshots(before, after)
        assert delta.max_entropy_shift() < 0.1
        assert not any(d.changed for d in delta.segment_drift)
        assert not delta.renumbering_suspected()

    def test_renumbering_detected(self):
        before = EntropyIP.fit(make_snapshot(1))
        after = EntropyIP.fit(make_snapshot(2, renumbered=True))
        delta = compare_snapshots(before, after)
        assert delta.renumbering_suspected()
        assert delta.vanished_prefixes64 > 0
        assert delta.new_prefixes64 > 0
        assert any(d.changed for d in delta.segment_drift)

    def test_growth_changes_distribution(self):
        before = EntropyIP.fit(make_snapshot(1, subnet_pool=4))
        after = EntropyIP.fit(make_snapshot(2, subnet_pool=16))
        delta = compare_snapshots(before, after)
        assert delta.max_entropy_shift() > 0.05
        assert delta.new_prefixes64 > 0

    def test_summary_text(self):
        before = EntropyIP.fit(make_snapshot(1))
        after = EntropyIP.fit(make_snapshot(2, renumbered=True))
        summary = compare_snapshots(before, after).summary()
        assert "RENUMBERING" in summary
        assert "/64s" in summary

    def test_width_mismatch_rejected(self):
        full = EntropyIP.fit(make_snapshot(1))
        prefix = EntropyIP.fit(make_snapshot(1), width=16)
        with pytest.raises(ValueError):
            compare_snapshots(full, prefix)

    def test_prefix_counts_consistent(self):
        before = EntropyIP.fit(make_snapshot(1))
        after = EntropyIP.fit(make_snapshot(2))
        delta = compare_snapshots(before, after)
        before_total = delta.shared_prefixes64 + delta.vanished_prefixes64
        from repro.scan.generator import prefixes64

        assert before_total == len(
            prefixes64(before.address_set.to_ints(), 32)
        )


class TestDetectChanges:
    def test_flags_the_renumbering_step(self):
        series = [
            make_snapshot(1),
            make_snapshot(2),
            make_snapshot(3, renumbered=True),
            make_snapshot(4, renumbered=True),
        ]
        changes = detect_changes(series)
        assert [c.index for c in changes] == [2]
        assert changes[0].score > 0.15

    def test_short_series(self):
        assert detect_changes([make_snapshot(1)]) == []

    def test_stable_series_quiet(self):
        series = [make_snapshot(s) for s in range(3)]
        assert detect_changes(series) == []
