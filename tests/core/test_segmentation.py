"""Tests for §4.2 segmentation (thresholds + hysteresis + hard cuts)."""

import pytest

from repro.core.segmentation import (
    DEFAULT_HYSTERESIS,
    DEFAULT_THRESHOLDS,
    Segment,
    SegmentationConfig,
    boundaries_from_entropy,
    crosses_threshold,
    segment_addresses,
    segment_by_label,
    segment_label,
    segments_from_boundaries,
)
from repro.ipv6.sets import AddressSet


class TestCrossingRule:
    def test_paper_worked_example(self):
        # H(X_{i-1}) = 0.49: new segment iff H(X_i) < 0.3 or > 0.54.
        t, th = DEFAULT_THRESHOLDS, DEFAULT_HYSTERESIS
        assert crosses_threshold(0.49, 0.29, t, th)
        assert not crosses_threshold(0.49, 0.31, t, th)
        assert crosses_threshold(0.49, 0.55, t, th)
        assert not crosses_threshold(0.49, 0.53, t, th)  # crossed 0.5 but < Th
        assert not crosses_threshold(0.49, 0.49, t, th)

    def test_small_move_never_splits(self):
        assert not crosses_threshold(0.1, 0.14, DEFAULT_THRESHOLDS, 0.05)

    def test_big_move_without_threshold_does_not_split(self):
        # 0.55 → 0.85 crosses nothing in T.
        assert not crosses_threshold(0.55, 0.85, DEFAULT_THRESHOLDS, 0.05)

    def test_crossing_downward(self):
        assert crosses_threshold(0.95, 0.05, DEFAULT_THRESHOLDS, 0.05)


class TestConfig:
    def test_defaults(self):
        config = SegmentationConfig()
        assert config.thresholds == (0.025, 0.1, 0.3, 0.5, 0.9)
        assert config.hysteresis == 0.05

    def test_rejects_empty_thresholds(self):
        with pytest.raises(ValueError):
            SegmentationConfig(thresholds=())

    def test_rejects_out_of_range_thresholds(self):
        with pytest.raises(ValueError):
            SegmentationConfig(thresholds=(0.0, 0.5))

    def test_rejects_negative_hysteresis(self):
        with pytest.raises(ValueError):
            SegmentationConfig(hysteresis=-0.1)


class TestBoundaries:
    def test_constant_profile_only_hard_cuts(self):
        entropies = [0.0] * 32
        assert boundaries_from_entropy(entropies) == [1, 9, 17]

    def test_hard_cuts_disabled(self):
        entropies = [0.0] * 32
        config = SegmentationConfig(hard_cut_32=False, hard_cut_64=False)
        assert boundaries_from_entropy(entropies, config) == [1]

    def test_hard_cuts_skipped_for_narrow_profiles(self):
        assert boundaries_from_entropy([0.0] * 8) == [1]
        assert boundaries_from_entropy([0.0] * 16) == [1, 9]

    def test_entropy_jump_starts_segment(self):
        entropies = [0.0] * 20 + [0.8] * 12
        assert 21 in boundaries_from_entropy(entropies)

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            boundaries_from_entropy([])


class TestSegments:
    def test_fig3_segmentation(self, tiny_set):
        # Fig. 3 + §4.2: constant runs 1-11 and 17-28 stay unsplit
        # (plus the hard cuts at 9/17); the variable region 12-16
        # oscillates between two entropy levels across the 0.3
        # threshold on this tiny 5-address sample, so each nybble
        # becomes its own segment; 29-32 is one uniform-entropy block.
        segments = segment_addresses(tiny_set)
        starts = [s.first_nybble for s in segments]
        assert starts == [1, 9, 12, 13, 14, 15, 16, 17, 29]
        assert segments[0].label == "A"
        assert segments[-1].bits == (112, 128)

    def test_fig3_without_hard_cuts(self, tiny_set):
        config = SegmentationConfig(hard_cut_32=False, hard_cut_64=False)
        segments = segment_addresses(tiny_set, config)
        bounds = [(s.first_nybble, s.last_nybble) for s in segments]
        # Constant regions merge into single segments once the hard
        # cuts are gone.
        assert bounds[0] == (1, 11)
        assert (17, 28) in bounds
        assert bounds[-1] == (29, 32)

    def test_segment_properties(self):
        segment = Segment("B", 9, 16)
        assert segment.nybble_count == 8
        assert segment.bit_count == 32
        assert segment.bits == (32, 64)
        assert segment.cardinality == 16 ** 8
        assert str(segment) == "B(32-64)"

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            Segment("A", 5, 4)
        with pytest.raises(ValueError):
            Segment("A", 0, 4)

    def test_segments_from_boundaries_requires_one(self):
        with pytest.raises(ValueError):
            segments_from_boundaries([2, 5], 32)

    def test_segment_by_label(self, tiny_set):
        segments = segment_addresses(tiny_set)
        assert segment_by_label(segments, "B").first_nybble == 9
        with pytest.raises(KeyError):
            segment_by_label(segments, "Z")

    def test_labels_beyond_z(self):
        assert segment_label(0) == "A"
        assert segment_label(25) == "Z"
        assert segment_label(26) == "AA"
        assert segment_label(27) == "AB"
        with pytest.raises(ValueError):
            segment_label(-1)

    def test_segments_cover_width_exactly(self, structured_set):
        segments = segment_addresses(structured_set)
        assert segments[0].first_nybble == 1
        assert segments[-1].last_nybble == structured_set.width
        for left, right in zip(segments, segments[1:]):
            assert right.first_nybble == left.last_nybble + 1

    def test_prefix_mode_width_16(self):
        s = AddressSet.from_ints(
            [0x20010DB8 << 96 | i << 64 for i in range(16)], width=16
        )
        segments = segment_addresses(s)
        assert segments[-1].last_nybble == 16
