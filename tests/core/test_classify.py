"""Tests for the set-level category classifier."""

import pytest

from repro.core.classify import Classification, classify_set, signature_of
from repro.datasets.aggregates import (
    build_aggregate_clients,
    build_aggregate_routers,
    build_aggregate_servers,
    build_bittorrent_clients,
)
from repro.datasets.networks import build_network


class TestSignature:
    def test_features_extracted(self, structured_set):
        signature = signature_of(structured_set)
        assert 0 <= signature.iid_entropy_median <= 1
        assert signature.total_entropy > 0
        assert set(signature.as_dict()) == {
            "total_entropy",
            "iid_entropy_median",
            "u_bit_dip",
            "eui64_dip",
            "low_order_rise",
            "iid_active_nybbles",
        }

    def test_requires_full_width(self, structured_set):
        with pytest.raises(ValueError):
            signature_of(structured_set.truncate(16))


class TestClassification:
    @pytest.mark.parametrize("name", ["C1", "C3", "C4", "C5"])
    def test_clients_classified(self, name):
        sample = build_network(name).sample(3000, seed=0)
        result = classify_set(sample)
        assert result.category == "client", name

    @pytest.mark.parametrize("name", ["R1", "R2", "R5"])
    def test_routers_classified(self, name):
        sample = build_network(name).sample(3000, seed=0)
        result = classify_set(sample)
        assert result.category == "router", name

    @pytest.mark.parametrize("name", ["S4", "S5"])
    def test_servers_classified(self, name):
        sample = build_network(name).sample(3000, seed=0)
        result = classify_set(sample)
        assert result.category == "server", name

    @pytest.mark.parametrize("name", ["R3", "R4"])
    def test_ambiguous_routers_never_read_as_clients(self, name):
        # R3/R4 imitate server IID practice; entropy alone cannot
        # separate them (see classify_set docstring) — but they must
        # never be mistaken for clients.
        sample = build_network(name).sample(3000, seed=0)
        result = classify_set(sample)
        assert result.category in ("server", "router"), name

    def test_aggregates_match_their_categories(self):
        assert classify_set(build_aggregate_clients(8000)).category == "client"
        assert classify_set(build_aggregate_servers(8000)).category == "server"

    def test_privacy_detection(self):
        result = classify_set(build_aggregate_clients(8000))
        assert result.slaac_privacy_suspected

    def test_eui64_detection(self):
        bittorrent = classify_set(build_bittorrent_clients(8000))
        cdn_clients = classify_set(build_aggregate_clients(8000))
        # AT has the EUI-64 dip; AC barely does (Fig. 6).
        assert bittorrent.signature.eui64_dip > cdn_clients.signature.eui64_dip
        assert bittorrent.eui64_suspected

    def test_confidence_bounds(self):
        result = classify_set(build_aggregate_routers(8000))
        assert isinstance(result, Classification)
        assert 0 <= result.confidence <= 1
