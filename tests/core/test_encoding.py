"""Tests for address ↔ code-vector encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import AddressEncoder
from repro.core.mining import MinedSegment, SegmentValue, mine_segments
from repro.core.segmentation import Segment, segment_addresses
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet


def make_encoder():
    """Hand-built encoder: A = 8-nybble prefix, B = 24-nybble rest."""
    a = MinedSegment(
        Segment("A", 1, 8),
        (
            SegmentValue("A1", 0x20010DB8, 0x20010DB8, 0.6, "outlier"),
            SegmentValue("A2", 0x30010DB8, 0x30010DB8, 0.4, "outlier"),
        ),
    )
    b = MinedSegment(
        Segment("B", 9, 32),
        (
            SegmentValue("B1", 0, 0, 0.5, "outlier"),
            SegmentValue("B2", 1, 16 ** 24 - 1, 0.5, "tail"),
        ),
    )
    return AddressEncoder([a, b])


class TestConstruction:
    def test_width_and_names(self):
        encoder = make_encoder()
        assert encoder.width == 32
        assert encoder.variable_names == ["A", "B"]
        assert encoder.cardinalities == [2, 2]

    def test_rejects_gap(self):
        a = MinedSegment(
            Segment("A", 1, 8),
            (SegmentValue("A1", 0, 0, 1.0, "outlier"),),
        )
        c = MinedSegment(
            Segment("C", 10, 32),
            (SegmentValue("C1", 0, 0, 1.0, "outlier"),),
        )
        with pytest.raises(ValueError):
            AddressEncoder([a, c])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AddressEncoder([])


class TestEncoding:
    def test_encode_set(self):
        encoder = make_encoder()
        s = AddressSet.from_strings(["2001:db8::", "3001:db8::1"])
        codes = encoder.encode_set(s)
        assert codes.tolist() == [[0, 0], [1, 1]]

    def test_encode_address_strings(self):
        encoder = make_encoder()
        assert encoder.encode_address(IPv6Address("3001:db8::5")) == ["A2", "B2"]

    def test_width_mismatch(self):
        encoder = make_encoder()
        with pytest.raises(ValueError):
            encoder.encode_set(AddressSet.from_ints([1], width=16))


class TestDecoding:
    def test_point_codes_decode_exactly(self, rng):
        encoder = make_encoder()
        values = encoder.decode_matrix(np.array([[0, 0], [1, 0]]), rng)
        assert values[0] == IPv6Address("2001:db8::").value
        assert values[1] == IPv6Address("3001:db8::").value

    def test_range_codes_stay_in_bounds(self, rng):
        encoder = make_encoder()
        codes = np.array([[0, 1]] * 200)
        for value in encoder.decode_matrix(codes, rng):
            low24 = value & (16 ** 24 - 1)
            assert 1 <= low24 <= 16 ** 24 - 1

    def test_decode_codes_by_string(self, rng):
        encoder = make_encoder()
        value = encoder.decode_codes(["A1", "B1"], rng)
        assert value == IPv6Address("2001:db8::").value

    def test_decode_unknown_code(self, rng):
        encoder = make_encoder()
        with pytest.raises(KeyError):
            encoder.decode_codes(["A1", "B9"], rng)

    def test_decode_wrong_arity(self, rng):
        encoder = make_encoder()
        with pytest.raises(ValueError):
            encoder.decode_codes(["A1"], rng)

    def test_decode_out_of_range_index(self, rng):
        encoder = make_encoder()
        with pytest.raises(IndexError):
            encoder.decode_matrix(np.array([[0, 5]]), rng)

    def test_wide_segment_exactness(self, rng):
        # 16-nybble point value at the top of the 64-bit range must not
        # be corrupted by float rounding.
        value = 0xFFFFFFFFFFFFFFF1
        mined = MinedSegment(
            Segment("A", 1, 16),
            (SegmentValue("A1", value, value, 1.0, "outlier"),),
        )
        encoder = AddressEncoder([mined])
        assert encoder.decode_matrix(np.array([[0]]), rng)[0] == value

    def test_full_64_bit_span_stays_exact(self, rng):
        # A single range covering the entire 64-bit segment: offsets up
        # to 2**64 - 1 must neither overflow nor bias.
        mined = MinedSegment(
            Segment("A", 1, 16),
            (SegmentValue("A1", 0, 2**64 - 1, 1.0, "tail"),),
        )
        encoder = AddressEncoder([mined])
        decoded = encoder.decode_to_set(np.zeros((500, 1), dtype=int), rng)
        values = decoded.to_ints()
        assert all(0 <= v <= 2**64 - 1 for v in values)
        # The draw must reach both halves of the span (p ≈ 1 - 2**-499).
        assert min(values) < 2**63 <= max(values)

    def test_wider_than_64_bit_fallback(self, rng):
        # 20-nybble segment (only possible with the hard cuts disabled)
        # exercises the _rand_below Python-int path.
        span_top = 16**20 - 1
        mined = MinedSegment(
            Segment("A", 1, 20),
            (
                SegmentValue("A1", 0x123456789ABCDEF01234, 0x123456789ABCDEF01234, 0.5, "outlier"),
                SegmentValue("A2", 0, span_top, 0.5, "tail"),
            ),
        )
        encoder = AddressEncoder([mined])
        codes = np.array([[0]] * 3 + [[1]] * 50)
        decoded = encoder.decode_to_set(codes, rng)
        values = decoded.to_ints()
        assert values[:3] == [0x123456789ABCDEF01234] * 3
        assert all(0 <= v <= span_top for v in values[3:])
        # And encoding those values lands back on a containing element.
        recoded = encoder.encode_set(decoded)
        assert set(recoded[:3, 0].tolist()) == {0}


class TestVectorizedEquivalence:
    """decode_to_set / cached encode must match the seed-era reference."""

    def _random_encoder(self, seed):
        generator = np.random.default_rng(seed)
        values = [
            (0x20010DB8 << 96)
            | (int(generator.integers(0, 5)) << 64)
            | int(generator.integers(0, 1 << 20))
            for _ in range(60)
        ]
        s = AddressSet.from_ints(values)
        segments = segment_addresses(s)
        return AddressEncoder(mine_segments(s, segments)), s

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_decode_to_set_matches_decode_matrix(self, seed):
        # Same rng state → identical draws: the set form and the int
        # form are bit-for-bit the same addresses.
        encoder, s = self._random_encoder(seed)
        codes = encoder.encode_set(s)
        a = encoder.decode_to_set(codes, np.random.default_rng(seed))
        b = encoder.decode_matrix(codes, np.random.default_rng(seed))
        assert a.to_ints() == b
        assert len(a) == len(s) and a.width == encoder.width

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_encode_set_matches_code_index_reference(self, seed):
        # The cached vectorized classifier must agree with the
        # per-value MinedSegment.code_index reference on every row —
        # including rows never seen in training (nearest-element rule).
        encoder, s = self._random_encoder(seed)
        probe_values = [
            int(np.random.default_rng(seed + row).integers(0, 1 << 30))
            | (0x20010DB8 << 96)
            for row in range(30)
        ]
        probe = AddressSet.from_ints(probe_values)
        codes = encoder.encode_set(probe)
        for column, mined in enumerate(encoder.mined_segments):
            seg = mined.segment
            raw = probe.segment_values(seg.first_nybble, seg.last_nybble)
            expected = [mined.code_index(int(v)) for v in raw]
            assert codes[:, column].tolist() == expected

    def test_decode_validate_flag_skips_range_check(self, rng):
        encoder = make_encoder()
        bad = np.array([[0, 9]])
        with pytest.raises(IndexError):
            encoder.decode_to_set(bad, rng)
        # validate=False is a contract with trusted callers: garbage in,
        # garbage out, but no crash for in-range codes.
        ok = encoder.decode_to_set(np.array([[0, 0]]), rng, validate=False)
        assert len(ok) == 1


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_mined_encoder_roundtrip_consistency(self, seed):
        # For any training set: encode → decode must land inside the
        # same code for every point element, and inside the element's
        # range otherwise.
        generator = np.random.default_rng(seed)
        values = [
            (0x20010DB8 << 96)
            | (int(generator.integers(0, 4)) << 64)
            | int(generator.integers(0, 1 << 16))
            for _ in range(50)
        ]
        s = AddressSet.from_ints(values)
        segments = segment_addresses(s)
        encoder = AddressEncoder(mine_segments(s, segments))
        codes = encoder.encode_set(s)
        decoded = encoder.decode_matrix(codes, np.random.default_rng(0))
        recoded = encoder.encode_set(
            AddressSet.from_ints(decoded, width=32, already_truncated=True)
        )
        # Ranges decode to arbitrary members, but those members must
        # re-encode to an element with the same span or better.
        assert codes.shape == recoded.shape

    def test_code_table_structure(self):
        encoder = make_encoder()
        table = encoder.code_table()
        assert table["A"][0] == ("A1", "20010db8", 0.6)
        assert table["B"][1][1].startswith("0000")


class TestPackedWordAssembly:
    """decode_to_set's direct word assembly must equal pack_rows."""

    def test_mined_encoder_words_match_pack_rows(self):
        from repro.ipv6.sets import pack_rows

        generator = np.random.default_rng(5)
        values = [
            (0x20010DB8 << 96)
            | (int(generator.integers(0, 4)) << 64)
            | int(generator.integers(0, 1 << 20))
            for _ in range(300)
        ]
        s = AddressSet.from_ints(values)
        encoder = AddressEncoder(mine_segments(s, segment_addresses(s)))
        assert encoder._word_plan is not None  # hard cuts: no straddling
        codes = encoder.encode_set(s)
        decoded = encoder.decode_to_set(codes, np.random.default_rng(1))
        assert np.array_equal(
            decoded.packed_rows(), pack_rows(decoded.matrix)
        )

    def test_straddling_segment_falls_back(self):
        # The hand-built encoder has a 24-nybble segment crossing the
        # /64 word boundary: no assembly plan, plain pack_rows path.
        encoder = make_encoder()
        assert encoder._word_plan is None
        codes = np.array([[0, 0], [1, 1]])
        decoded = encoder.decode_to_set(codes, np.random.default_rng(2))
        from repro.ipv6.sets import pack_rows

        assert np.array_equal(
            decoded.packed_rows(), pack_rows(decoded.matrix)
        )

    def test_prefix_width_words_match(self):
        from repro.ipv6.sets import pack_rows

        generator = np.random.default_rng(6)
        values = [int(v) for v in generator.integers(0, 1 << 40, size=200)]
        s = AddressSet.from_ints(values, width=16, already_truncated=True)
        encoder = AddressEncoder(mine_segments(s, segment_addresses(s)))
        codes = encoder.encode_set(s)
        decoded = encoder.decode_to_set(codes, np.random.default_rng(3))
        assert np.array_equal(
            decoded.packed_rows(), pack_rows(decoded.matrix)
        )

    def test_constant_segment_broadcast(self):
        # Cardinality-1 point segments take the broadcast fast path;
        # the nybbles and packed words must both reflect the constant.
        a = MinedSegment(
            Segment("A", 1, 8),
            (SegmentValue("A1", 0x20010DB8, 0x20010DB8, 1.0, "outlier"),),
        )
        b = MinedSegment(
            Segment("B", 9, 16),
            (
                SegmentValue("B1", 0x1111, 0x1111, 0.5, "outlier"),
                SegmentValue("B2", 0x2222, 0x2222, 0.5, "outlier"),
            ),
        )
        encoder = AddressEncoder([a, b])
        codes = np.array([[0, 0], [0, 1]])
        decoded = encoder.decode_to_set(codes, np.random.default_rng(4))
        assert list(decoded.hex_rows()) == [
            "20010db800001111",
            "20010db800002222",
        ]
        from repro.ipv6.sets import pack_rows

        assert np.array_equal(
            decoded.packed_rows(), pack_rows(decoded.matrix)
        )
