"""Tests for the conditional probability browser (Fig. 1 b/c semantics)."""

import pytest

from repro.core.browser import _split_code
from repro.core.pipeline import EntropyIP


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


class TestSplitCode:
    def test_splits(self):
        assert _split_code("J12") == ("J", 12)
        assert _split_code("AA3") == ("AA", 3)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            _split_code("J")
        with pytest.raises(ValueError):
            _split_code("12")


class TestBrowser:
    def test_unconditioned_rows_match_mined_frequencies(self, analysis):
        browser = analysis.browse()
        rows = browser.rows()
        for mined in analysis.encoder.mined_segments:
            label = mined.segment.label
            for row, value in zip(rows[label], mined.values):
                assert row.code == value.code
                assert row.probability == pytest.approx(
                    value.frequency, abs=0.08
                )

    def test_click_sets_evidence(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1")
        assert browser.evidence_codes() == {label: f"{label}1"}
        clicked_rows = browser.rows()[label]
        assert clicked_rows[0].probability == pytest.approx(1.0)
        assert clicked_rows[0].is_evidence

    def test_click_returns_new_browser(self, analysis):
        base = analysis.browse()
        label = analysis.segments[0].label
        clicked = base.click(f"{label}1")
        assert base.evidence == {}
        assert clicked is not base

    def test_unclick(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1").unclick(label)
        assert browser.evidence == {}

    def test_reset(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1").reset()
        assert browser.evidence == {}

    def test_probability_of_evidence(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1")
        p = browser.probability_of_evidence()
        assert 0 < p <= 1
        assert analysis.browse().probability_of_evidence() == 1.0

    def test_top_values_sorted(self, analysis):
        label = analysis.segments[-1].label
        top = analysis.browse().top_values(label, limit=3)
        probabilities = [r.probability for r in top]
        assert probabilities == sorted(probabilities, reverse=True)
        assert len(top) <= 3

    def test_repr(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1")
        assert f"{label}1" in repr(browser)
