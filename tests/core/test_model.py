"""Tests for the fitted AddressModel (BN over code vectors)."""

import numpy as np
import pytest

from repro.core.encoding import AddressEncoder
from repro.core.mining import mine_segments
from repro.core.model import AddressModel
from repro.core.segmentation import segment_addresses
from repro.ipv6.sets import AddressSet


@pytest.fixture(scope="module")
def fitted(structured_set):
    segments = segment_addresses(structured_set)
    encoder = AddressEncoder(mine_segments(structured_set, segments))
    return AddressModel.fit(structured_set, encoder)


class TestFit:
    def test_variables_match_segments(self, fitted):
        assert list(fitted.network.variables) == fitted.encoder.variable_names

    def test_finds_planted_dependency(self, fitted):
        # structured_set: the IID copies the subnet nybble 60% of the
        # time — some IID-side segment must depend on the subnet segment.
        edges = fitted.network.edges()
        assert edges, "expected at least one edge"

    def test_log_likelihood_finite_on_training(self, fitted, structured_set):
        assert np.isfinite(fitted.log_likelihood(structured_set))


class TestEvidence:
    def test_normalize_by_code_string(self, fitted):
        label = fitted.encoder.variable_names[0]
        resolved = fitted.normalize_evidence({label: f"{label}1"})
        assert resolved == {label: 0}

    def test_normalize_by_index(self, fitted):
        label = fitted.encoder.variable_names[0]
        assert fitted.normalize_evidence({label: 0}) == {label: 0}

    def test_unknown_code_rejected(self, fitted):
        label = fitted.encoder.variable_names[0]
        with pytest.raises(KeyError):
            fitted.normalize_evidence({label: f"{label}99"})

    def test_unknown_label_rejected(self, fitted):
        with pytest.raises(KeyError):
            fitted.normalize_evidence({"ZZ": 0})

    def test_out_of_range_index_rejected(self, fitted):
        label = fitted.encoder.variable_names[0]
        with pytest.raises(IndexError):
            fitted.normalize_evidence({label: 99})


class TestQueries:
    def test_marginals_are_distributions(self, fitted):
        for label, distribution in fitted.marginals().items():
            assert distribution.sum() == pytest.approx(1.0)
            assert np.all(distribution >= 0)

    def test_conditioning_changes_marginals(self, fitted):
        # Condition on the subnet segment's first value; the dependent
        # IID segment's distribution must change.
        child = None
        for parent, kid in fitted.network.edges():
            child = kid
            evidence_label = parent
        assert child is not None
        prior = fitted.marginals()[child]
        posterior = fitted.marginals({evidence_label: 0})[child]
        assert not np.allclose(prior, posterior)

    def test_joint_factor(self, fitted):
        labels = fitted.encoder.variable_names[:2]
        joint = fitted.joint(labels)
        assert joint.table.sum() == pytest.approx(1.0)

    def test_evidence_probability_matches_frequency(self, fitted, structured_set):
        label = fitted.encoder.variable_names[0]
        mined = fitted.encoder.mined_segments[0]
        p = fitted.evidence_probability({label: 0})
        assert p == pytest.approx(mined.values[0].frequency, abs=0.05)

    def test_conditional_probability_table(self, fitted):
        names = fitted.encoder.variable_names
        target, given = names[-1], [names[1]]
        table = fitted.conditional_probability_table(target, 0, given)
        for probability in table.values():
            assert 0 <= probability <= 1
        cards = [fitted.network.cardinality(g) for g in given]
        assert len(table) == int(np.prod(cards))


class TestGeneration:
    def test_generate_distinct(self, fitted, rng):
        values = fitted.generate(200, rng)
        assert len(values) == len(set(values)) == 200

    def test_generate_excludes(self, fitted, rng, structured_set):
        training = set(structured_set.to_ints())
        values = fitted.generate(200, rng, exclude=training)
        assert not (set(values) & training)

    def test_generate_zero(self, fitted, rng):
        assert fitted.generate(0, rng) == []

    def test_generate_negative_rejected(self, fitted, rng):
        with pytest.raises(ValueError):
            fitted.generate(-1, rng)

    def test_generate_set_width(self, fitted, rng):
        generated = fitted.generate_set(50, rng)
        assert generated.width == fitted.encoder.width
        assert len(generated) == 50

    def test_generation_respects_evidence(self, fitted, rng):
        label = fitted.encoder.variable_names[0]
        mined = fitted.encoder.mined_segments[0]
        target = mined.values[0]
        generated = fitted.generate_set(100, rng, evidence={label: 0})
        seg = mined.segment
        for value in generated.segment_values(seg.first_nybble, seg.last_nybble):
            assert target.contains(int(value))

    def test_small_support_returns_partial(self, structured_set, rng):
        # A model whose support is tiny cannot produce 10^6 distinct
        # values; generate() must return what exists rather than hang.
        constant = AddressSet.from_ints([42] * 50)
        segments = segment_addresses(constant)
        encoder = AddressEncoder(mine_segments(constant, segments))
        model = AddressModel.fit(constant, encoder)
        values = model.generate(1000, rng, max_batches=3)
        assert len(values) < 1000

    def test_generate_matches_generate_set(self, fitted):
        # The int form is a thin wrapper: same rng → same candidates.
        values = fitted.generate(300, np.random.default_rng(11))
        rows = fitted.generate_set(300, np.random.default_rng(11))
        assert rows.to_ints() == values

    def test_generate_set_deterministic(self, fitted):
        a = fitted.generate_set(500, np.random.default_rng(3))
        b = fitted.generate_set(500, np.random.default_rng(3))
        assert a == b

    def test_generate_set_excludes_and_dedups(self, fitted, structured_set, rng):
        training = structured_set.to_ints()
        generated = fitted.generate_set(400, rng, exclude=training)
        values = generated.to_ints()
        assert len(values) == len(set(values)) == 400
        assert not (set(values) & set(training))
        # Vectorized cross-check: no generated row is a training row.
        assert not structured_set.contains_rows(generated).any()

    def test_generate_exclude_ignores_out_of_range_values(self, fitted, rng):
        # Negative or too-wide exclude entries can never be generated;
        # they must be ignored, not crash the vectorized path.
        values = fitted.generate(50, rng, exclude=[-1, 1 << 200])
        assert len(values) == 50

    def test_samples_follow_training_distribution(self, fitted, structured_set):
        # The /32 prefix is constant in training → all candidates share it.
        rng = np.random.default_rng(5)
        generated = fitted.generate_set(100, rng)
        assert set(generated.segment_values(1, 8)) == {0x20010DB8}


class TestAddressSetExclude:
    """`exclude` accepts an AddressSet and matches the int-iterable path."""

    def test_address_set_exclude_equals_int_exclude(self, fitted, structured_set):
        by_set = fitted.generate_set(
            200, np.random.default_rng(4), exclude=structured_set
        )
        by_ints = fitted.generate_set(
            200,
            np.random.default_rng(4),
            exclude=set(structured_set.to_ints()),
        )
        assert by_set == by_ints
        assert not structured_set.contains_rows(by_set).any()

    def test_width_mismatch_rejected(self, fitted):
        narrow = AddressSet.from_ints([1], width=16, already_truncated=True)
        with pytest.raises(ValueError):
            fitted.generate_set(10, np.random.default_rng(0), exclude=narrow)

    def test_plain_integer_ndarray_exclude(self, fitted, structured_set):
        # 1-D integer ndarrays take the iterable path, like any ints.
        values = structured_set.to_ints()
        flat = np.array([v & 0xFFFF for v in values[:200]], dtype=np.int64)
        result = fitted.generate_set(50, np.random.default_rng(9), exclude=flat)
        reference = fitted.generate_set(
            50, np.random.default_rng(9), exclude=[int(v) for v in flat]
        )
        assert result == reference

    def test_packed_exclude_matches_address_set_exclude(self, fitted, structured_set):
        packed = structured_set.packed_rows()
        by_packed = fitted.generate_set(
            100, np.random.default_rng(5), exclude=packed
        )
        by_set = fitted.generate_set(
            100, np.random.default_rng(5), exclude=structured_set
        )
        assert by_packed == by_set
        with pytest.raises(ValueError):
            fitted.generate_set(
                10,
                np.random.default_rng(0),
                exclude=np.zeros((3, 5), dtype=np.uint64),
            )


class TestGenerationSession:
    """The persistent cross-call exclusion/dedup state of §5.5 loops."""

    def test_session_matches_grow_and_repass_exclude(
        self, fitted, structured_set
    ):
        # The compat contract: a sequence of session-backed calls is
        # bit-identical to the legacy pattern of re-passing an
        # ever-growing packed exclude matrix to each call.
        session = fitted.session(exclude=structured_set)
        session_rng = np.random.default_rng(31)
        legacy_rng = np.random.default_rng(31)
        probed = structured_set.packed_rows()
        for n in (150, 200, 120):
            by_session = fitted.generate_set(n, session_rng, state=session)
            by_exclude = fitted.generate_set(n, legacy_rng, exclude=probed)
            assert np.array_equal(by_session.matrix, by_exclude.matrix)
            probed = np.vstack([probed, by_exclude.packed_rows()])

    def test_session_rows_never_repeat_across_calls(self, fitted):
        session = fitted.session()
        rng = np.random.default_rng(32)
        seen = set()
        for n in (100, 100, 100):
            generated = fitted.generate_set(n, rng, state=session)
            values = generated.to_ints()
            assert len(values) == n
            assert not (set(values) & seen)
            seen.update(values)
        assert session.generated_rows == 300

    def test_session_survives_refit(self, fitted, structured_set):
        # The adaptive-campaign pattern: refit a model (only the BN
        # changes) and keep generating on the same session.
        from repro.core.encoding import AddressEncoder
        from repro.core.mining import mine_segments
        from repro.core.segmentation import segment_addresses

        session = fitted.session(exclude=structured_set)
        rng = np.random.default_rng(33)
        first = fitted.generate_set(200, rng, state=session)
        grown = structured_set.concat(first)
        segments = segment_addresses(grown)
        encoder = AddressEncoder(mine_segments(grown, segments))
        refitted = AddressModel.fit(grown, encoder)
        second = refitted.generate_set(200, rng, state=session)
        overlap = set(second.to_ints()) & (
            set(first.to_ints()) | set(structured_set.to_ints())
        )
        assert not overlap

    def test_session_excludes_seed_rows(self, fitted, structured_set):
        session = fitted.session(exclude=structured_set)
        rng = np.random.default_rng(34)
        generated = fitted.generate_set(250, rng, state=session)
        assert not structured_set.contains_rows(generated).any()
        assert session.excluded_rows == len(structured_set.unique())

    def test_observe_folds_in_new_exclusions(self, fitted):
        session = fitted.session()
        extra = fitted.generate_set(
            50, np.random.default_rng(35), state=fitted.session()
        )
        assert session.observe(extra) == 50
        assert session.observe(extra) == 0  # idempotent
        generated = fitted.generate_set(
            100, np.random.default_rng(36), state=session
        )
        assert not (set(generated.to_ints()) & set(extra.to_ints()))

    def test_state_and_exclude_are_mutually_exclusive(self, fitted):
        session = fitted.session()
        with pytest.raises(ValueError):
            fitted.generate_set(
                10, np.random.default_rng(0), exclude=[1], state=session
            )

    def test_width_mismatch_rejected(self, fitted):
        from repro.core.model import GenerationSession

        narrow = GenerationSession(16)
        with pytest.raises(ValueError):
            fitted.generate_set(10, np.random.default_rng(0), state=narrow)

    def test_overshoot_never_pollutes_session(self, fitted):
        # A generation round oversamples; the overshoot beyond n must
        # stay generatable by later calls — the session holds exactly
        # seed + returned rows.
        session = fitted.session()
        rng = np.random.default_rng(37)
        first = fitted.generate_set(101, rng, state=session)
        assert len(session) == len(first) == 101
        assert session.generated_rows == 101


class TestSessionCapacity:
    """capacity= is an enforceable cap (PR 7), not just a sizing hint."""

    def test_uncapped_by_default(self, fitted):
        session = fitted.session()
        assert session.capacity == 0
        assert session.remaining_capacity is None

    def test_remaining_capacity_tracks_growth(self, fitted):
        session = fitted.session(capacity=300)
        assert session.remaining_capacity == 300
        fitted.generate_set(120, np.random.default_rng(40), state=session)
        assert session.remaining_capacity == 180

    def test_generate_past_cap_raises_before_drawing(self, fitted):
        from repro.core.model import SessionCapacityError

        session = fitted.session(capacity=100)
        rng = np.random.default_rng(41)
        fitted.generate_set(100, rng, state=session)
        state_before = rng.bit_generator.state
        with pytest.raises(SessionCapacityError):
            fitted.generate_set(1, rng, state=session)
        # The check is a precondition: no draw was consumed, no state
        # mutated — the caller can roll the session over and retry.
        assert rng.bit_generator.state == state_before
        assert len(session) == 100

    def test_cap_enforced_under_sharded_engine(self, fitted):
        from repro.core.model import SessionCapacityError

        session = fitted.session(capacity=100)
        rng = np.random.default_rng(42)
        fitted.generate_set(100, rng, state=session, workers=2)
        with pytest.raises(SessionCapacityError):
            fitted.generate_set(1, rng, state=session, workers=2)

    def test_capped_output_identical_to_uncapped(self, fitted, structured_set):
        # The cap never changes emitted rows — only whether a call is
        # admitted at all.
        capped = fitted.session(
            exclude=structured_set, capacity=len(structured_set) + 400
        )
        uncapped = fitted.session(exclude=structured_set)
        rng_a = np.random.default_rng(43)
        rng_b = np.random.default_rng(43)
        for n in (250, 150):
            a = fitted.generate_set(n, rng_a, state=capped)
            b = fitted.generate_set(n, rng_b, state=uncapped)
            assert np.array_equal(a.matrix, b.matrix)

    def test_seed_exclusions_over_cap_raise(self, fitted, structured_set):
        from repro.core.model import SessionCapacityError

        with pytest.raises(SessionCapacityError):
            fitted.session(exclude=structured_set, capacity=10)

    def test_observe_over_cap_rolls_back_exactly(self, fitted):
        from repro.core.model import SessionCapacityError

        donor = fitted.generate_set(
            80, np.random.default_rng(44), state=fitted.session()
        )
        session = fitted.session(capacity=50)
        before = len(session)
        with pytest.raises(SessionCapacityError):
            session.observe(donor)
        assert len(session) == before  # nothing partially inserted
        assert not session.table.contains(donor.packed_rows()).any()
        # An under-cap batch still lands normally afterwards.
        assert session.observe(donor.take(np.arange(50))) == 50

    @pytest.mark.parametrize("backend", ["memory", "sharded64"])
    def test_observe_rollback_on_both_backends(self, fitted, backend):
        from repro.core.model import SessionCapacityError

        donor = fitted.generate_set(
            30, np.random.default_rng(45), state=fitted.session()
        )
        session = fitted.session(capacity=20, backend=backend)
        with pytest.raises(SessionCapacityError):
            session.observe(donor)
        assert len(session) == 0

    def test_negative_capacity_rejected(self, fitted):
        with pytest.raises(ValueError):
            fitted.session(capacity=-1)
