"""Tests for the composed analysis report."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.core.report import full_report


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


class TestFullReport:
    def test_contains_all_sections(self, analysis):
        report = full_report(analysis, rng=np.random.default_rng(0))
        for heading in (
            "# Entropy/IP analysis",
            "## Entropy and 4-bit ACR",
            "## Segment values (mining results)",
            "## Bayesian network",
            "## Conditional probability browser",
            "## Windowed entropy",
            "## Discovered candidate subnets",
            "## Generated candidate targets",
        ):
            assert heading in report, heading

    def test_custom_title(self, analysis):
        report = full_report(analysis, title="Network X",
                             rng=np.random.default_rng(0))
        assert report.startswith("# Network X")

    def test_candidate_count(self, analysis):
        report = full_report(analysis, n_candidates=3,
                             rng=np.random.default_rng(0))
        generated = report.split("## Generated candidate targets")[1]
        addresses = [line for line in generated.splitlines() if line.startswith("- ")]
        assert len(addresses) == 3

    def test_sections_can_be_disabled(self, analysis):
        report = full_report(
            analysis,
            n_candidates=0,
            include_windowing=False,
            include_subnets=False,
            rng=np.random.default_rng(0),
        )
        assert "## Windowed entropy" not in report
        assert "## Discovered candidate subnets" not in report
        assert "## Generated candidate targets" not in report

    def test_prefix_mode_skips_subnet_section(self, structured_set):
        analysis16 = EntropyIP.fit(structured_set, width=16)
        report = full_report(analysis16, n_candidates=0,
                             include_windowing=False,
                             rng=np.random.default_rng(0))
        assert "## Discovered candidate subnets" not in report

    def test_deterministic_given_rng(self, analysis):
        a = full_report(analysis, rng=np.random.default_rng(5))
        b = full_report(analysis, rng=np.random.default_rng(5))
        assert a == b
