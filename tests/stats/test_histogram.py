"""Tests for the sparse histogram used by segment mining."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.histogram import Histogram, value_counts


class TestValueCounts:
    def test_basic(self):
        assert value_counts([1, 1, 2]) == {1: 2, 2: 1}

    def test_empty(self):
        assert value_counts([]) == {}


class TestHistogram:
    def test_from_values_sorted(self):
        h = Histogram.from_values([9, 1, 1, 2])
        assert h.values.tolist() == [1, 2, 9]
        assert h.counts.tolist() == [2, 1, 1]

    def test_total_and_distinct(self):
        h = Histogram.from_values([1, 1, 2, 9])
        assert h.total == 4 and h.distinct == 3

    def test_min_max(self):
        h = Histogram.from_values([5, 3, 8])
        assert h.min_value() == 3 and h.max_value() == 8

    def test_min_max_empty_raises(self):
        h = Histogram([], [])
        with pytest.raises(ValueError):
            h.min_value()

    def test_frequency(self):
        h = Histogram.from_values([1, 1, 2, 9])
        assert h.frequency(1) == pytest.approx(0.5)
        assert h.frequency(7) == 0.0

    def test_count_in_range(self):
        h = Histogram.from_values([1, 1, 2, 9])
        assert h.count_in_range(1, 2) == 3
        assert h.count_in_range(3, 8) == 0

    def test_remove_values(self):
        h = Histogram.from_values([1, 1, 2, 9]).remove_values([1])
        assert h.values.tolist() == [2, 9]
        assert h.total == 2

    def test_remove_range(self):
        h = Histogram.from_values([1, 2, 3, 9]).remove_range(1, 3)
        assert h.values.tolist() == [9]

    def test_items_and_expand(self):
        h = Histogram.from_values([2, 1, 1])
        assert h.items() == [(1, 2), (2, 1)]
        assert h.expand() == [1, 1, 2]

    def test_validation_rejects_unsorted(self):
        with pytest.raises(ValueError):
            Histogram([2, 1], [1, 1])

    def test_validation_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            Histogram([1], [0])

    def test_validation_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Histogram([1, 2], [1])

    def test_large_values_use_object_dtype(self):
        big = 1 << 100
        h = Histogram.from_values([big, big, 3])
        assert h.max_value() == big
        assert h.count_in_range(big, big) == 2

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_total_preserved(self, values):
        assert Histogram.from_values(values).total == len(values)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_expand_is_sorted_multiset(self, values):
        assert Histogram.from_values(values).expand() == sorted(values)
