"""Tests for mutual-information analysis (§6 future work)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ipv6.sets import AddressSet
from repro.stats.mutual_information import (
    _mi_matrix_pairwise,
    intra_segment_mi,
    mi_matrix,
    mutual_information,
    normalized_mutual_information,
    segment_string_entropy,
    top_dependent_pairs,
)


class TestMutualInformation:
    def test_identical_columns(self):
        x = np.array([0, 1, 2, 3] * 25)
        assert mutual_information(x, x) == pytest.approx(math.log(4))

    def test_independent_columns(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 16, size=20000)
        y = rng.integers(0, 16, size=20000)
        # Finite-sample MI of independent columns is small but positive.
        assert mutual_information(x, y) < 0.02

    def test_constant_column_zero(self):
        x = np.zeros(100, dtype=int)
        y = np.arange(100) % 16
        assert mutual_information(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 16, size=500)
        y = (x + rng.integers(0, 2, size=500)) % 16
        assert mutual_information(x, y) == pytest.approx(
            mutual_information(y, x)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mutual_information(np.zeros(3, int), np.zeros(4, int))

    def test_empty(self):
        assert mutual_information(np.array([], int), np.array([], int)) == 0.0

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 15), min_size=2, max_size=100))
    def test_bounded_by_entropy(self, values):
        x = np.array(values)
        h_x = -sum(
            (c := np.bincount(x, minlength=16)[v] / len(x)) * math.log(c)
            for v in set(values)
        )
        assert mutual_information(x, x) <= h_x + 1e-9


class TestNormalizedMI:
    def test_determined_is_one(self):
        x = np.array([0, 1, 2, 3] * 50)
        y = (x * 3) % 16  # bijection of x
        assert normalized_mutual_information(x, y) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        x = np.zeros(100, dtype=int)
        y = np.arange(100) % 16
        assert normalized_mutual_information(x, y) == 0.0

    def test_range(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 16, size=300)
        y = np.where(rng.random(300) < 0.5, x, rng.integers(0, 16, size=300))
        nmi = normalized_mutual_information(x, y)
        assert 0.05 < nmi < 1.0


class TestMatrix:
    def test_shape_and_symmetry(self, structured_set):
        matrix = mi_matrix(structured_set)
        assert matrix.shape == (32, 32)
        assert np.allclose(matrix, matrix.T)

    def test_detects_planted_dependency(self, structured_set):
        # structured_set: nybble 32 copies nybble 16 (60% of rows).
        matrix = mi_matrix(structured_set)
        assert matrix[15, 31] > 0.2
        # Unrelated constant regions show nothing.
        assert matrix[3, 31] == 0.0

    def test_top_pairs(self, structured_set):
        pairs = top_dependent_pairs(structured_set, limit=5)
        assert pairs
        assert pairs[0][2] == max(p[2] for p in pairs)
        assert (16, 32) in {(i, j) for i, j, _ in pairs}

    def test_top_pairs_skip_adjacent(self, structured_set):
        for i, j, _ in top_dependent_pairs(structured_set):
            assert j - i >= 2

    def test_top_pairs_unchanged_by_argsort_rewrite(self, structured_set):
        """Regression: the thin argsort over mi_matrix reports exactly
        the pairs (and ordering) the old per-pair recomputation did."""
        matrix = _mi_matrix_pairwise(structured_set, normalized=True)
        width = matrix.shape[0]
        expected = []
        for i in range(width):
            for j in range(i + 2, width):
                if matrix[i, j] >= 0.2:
                    expected.append((i + 1, j + 1, float(matrix[i, j])))
        expected.sort(key=lambda triple: -triple[2])
        observed = top_dependent_pairs(structured_set, limit=10, min_nmi=0.2)
        assert [(i, j) for i, j, _ in observed] == [
            (i, j) for i, j, _ in expected[:10]
        ]
        for (_, _, fast), (_, _, slow) in zip(observed, expected):
            assert fast == pytest.approx(slow, rel=0, abs=1e-12)

    def test_top_pairs_accepts_precomputed_matrix(self, structured_set):
        matrix = mi_matrix(structured_set, normalized=True)
        direct = top_dependent_pairs(structured_set, limit=5)
        reused = top_dependent_pairs(structured_set, limit=5, matrix=matrix)
        assert direct == reused

    def test_matrix_equals_pairwise_reference(self, structured_set):
        for normalized in (True, False):
            assert np.allclose(
                mi_matrix(structured_set, normalized=normalized),
                _mi_matrix_pairwise(structured_set, normalized=normalized),
                rtol=0,
                atol=1e-12,
            )

    def test_intra_segment(self, structured_set):
        sub = intra_segment_mi(structured_set, 29, 32)
        assert sub.shape == (4, 4)
        with pytest.raises(IndexError):
            intra_segment_mi(structured_set, 0, 4)


class TestSegmentStringEntropy:
    def test_constant_segment(self, structured_set):
        assert segment_string_entropy(structured_set, 1, 8) == 0.0

    def test_normalization_bounds(self, structured_set):
        value = segment_string_entropy(structured_set, 17, 32)
        assert 0 <= value <= 1

    def test_uniform_single_nybble(self):
        s = AddressSet.from_ints(
            list(range(16)) * 10, width=1, already_truncated=True
        )
        assert segment_string_entropy(s, 1, 1) == pytest.approx(1.0)
