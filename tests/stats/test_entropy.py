"""Tests for the Section 4.1 entropy machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ipv6.sets import AddressSet
from repro.stats.entropy import (
    empirical_entropy,
    entropy_of_counts,
    entropy_profile,
    nybble_entropies,
    total_entropy,
    windowed_entropy,
)


class TestEntropyOfCounts:
    def test_paper_equation_2(self):
        # Fig. 3: X_32 takes 'c' twice and 'f' thrice → H ≈ 0.24.
        value = entropy_of_counts([2, 3], base_cardinality=16)
        assert value == pytest.approx(0.2428, abs=1e-3)

    def test_constant_is_zero(self):
        assert entropy_of_counts([10], base_cardinality=16) == 0.0

    def test_uniform_is_one(self):
        assert entropy_of_counts([5] * 16, base_cardinality=16) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert entropy_of_counts([]) == 0.0

    def test_zero_counts_ignored(self):
        assert entropy_of_counts([2, 0, 3]) == entropy_of_counts([2, 3])

    def test_unnormalized_nats(self):
        assert entropy_of_counts([1, 1]) == pytest.approx(math.log(2))

    def test_rejects_bad_cardinality(self):
        with pytest.raises(ValueError):
            entropy_of_counts([1, 1], base_cardinality=1)

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=30))
    def test_normalized_bounds(self, counts):
        value = entropy_of_counts(counts, base_cardinality=len(counts) + 1)
        assert 0.0 <= value <= 1.0


class TestEmpiricalEntropy:
    def test_counts_values(self):
        assert empirical_entropy(["c", "c", "f", "f", "f"], 16) == pytest.approx(
            0.2428, abs=1e-3
        )

    def test_single_value(self):
        assert empirical_entropy([7, 7, 7]) == 0.0


class TestNybbleEntropies:
    def test_fig3_profile(self, tiny_set):
        entropies = nybble_entropies(tiny_set)
        assert entropies.shape == (32,)
        # Characters 1-11 and 17-28 constant; 12-16 and 29-32 variable.
        assert np.all(entropies[:11] == 0)
        assert np.all(entropies[16:28] == 0)
        assert np.all(entropies[11:16] > 0)
        assert np.all(entropies[28:] > 0)

    def test_last_nybble_value(self, tiny_set):
        assert nybble_entropies(tiny_set)[31] == pytest.approx(0.2428, abs=1e-3)

    def test_empty_set(self):
        assert np.all(nybble_entropies(AddressSet.empty()) == 0)

    def test_respects_width(self):
        s = AddressSet.from_ints([0x12, 0x13], width=2, already_truncated=True)
        assert nybble_entropies(s).shape == (2,)


class TestTotalEntropy:
    def test_sums_per_nybble(self, tiny_set):
        assert total_entropy(tiny_set) == pytest.approx(
            float(nybble_entropies(tiny_set).sum())
        )

    def test_bounds(self, structured_set):
        value = total_entropy(structured_set)
        assert 0 <= value <= structured_set.width


class TestWindowedEntropy:
    def test_single_window_matches_direct(self, tiny_set):
        cells = windowed_entropy(tiny_set)
        by_key = {(p, l): e for p, l, e in cells}
        # Window (124, 4) = last nybble: entropy of {c:2, f:3} in bits.
        expected = entropy_of_counts([2, 3]) / math.log(2)
        assert by_key[(124, 4)] == pytest.approx(expected)

    def test_windows_capped_at_64_bits(self, tiny_set):
        assert all(l <= 64 for _, l, _ in windowed_entropy(tiny_set))

    def test_rejects_unaligned_step(self, tiny_set):
        with pytest.raises(ValueError):
            windowed_entropy(tiny_set, bit_step=3)

    def test_wider_window_at_least_narrower(self, structured_set):
        cells = {(p, l): e for p, l, e in windowed_entropy(structured_set)}
        # Entropy is monotone under refinement: H(window) >= H(sub-window).
        assert cells[(96, 32)] >= cells[(96, 16)] - 1e-9


class TestEntropyProfile:
    def test_bundle_contents(self, tiny_set):
        profile = entropy_profile(tiny_set)
        assert profile["n"] == 5
        assert profile["width"] == 32
        assert profile["total"] == pytest.approx(total_entropy(tiny_set))
