"""Tests for Tukey-fence outlier detection (mining step (a))."""

import pytest

from repro.stats.histogram import Histogram
from repro.stats.outliers import tukey_fence, tukey_outlier_values


class TestTukeyFence:
    def test_known_quartiles(self):
        # numpy linear quartiles for 1..10: Q1=3.25, Q3=7.75, IQR=4.5
        # → fence = 7.75 + 1.5*4.5 = 14.5.
        assert tukey_fence(range(1, 11)) == pytest.approx(14.5)

    def test_custom_k(self):
        assert tukey_fence(range(1, 11), k=0) == pytest.approx(7.75)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            tukey_fence([])


class TestOutlierValues:
    def test_prevalent_value_found(self):
        # One value is 100x more common than the 20 background values.
        values = [42] * 1000 + list(range(20)) * 10
        outliers = tukey_outlier_values(Histogram.from_values(values))
        assert outliers[0] == (42, 1000)

    def test_no_outliers_in_uniform(self):
        values = list(range(16)) * 10
        assert tukey_outlier_values(Histogram.from_values(values)) == []

    def test_single_value_is_outlier(self):
        # Degenerate histogram: the sole value dominates by definition.
        outliers = tukey_outlier_values(Histogram.from_values([7, 7, 7]))
        assert outliers == [(7, 3)]

    def test_empty_histogram(self):
        assert tukey_outlier_values(Histogram([], [])) == []

    def test_max_results_cap(self):
        values = []
        for v in range(20):
            values.extend([v] * (1000 if v < 15 else 1))
        outliers = tukey_outlier_values(
            Histogram.from_values(values), max_results=10
        )
        assert len(outliers) <= 10

    def test_sorted_most_frequent_first(self):
        values = [1] * 500 + [2] * 800 + list(range(10, 40))
        outliers = tukey_outlier_values(Histogram.from_values(values))
        counts = [c for _, c in outliers]
        assert counts == sorted(counts, reverse=True)
