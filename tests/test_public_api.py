"""Public-API surface tests: imports, __all__ hygiene, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.ipv6",
    "repro.stats",
    "repro.cluster",
    "repro.bayes",
    "repro.core",
    "repro.datasets",
    "repro.scan",
    "repro.baselines",
    "repro.viz",
    "repro.serve",
    "repro.ingest",
]

MODULES = [
    "repro.ipv6.address",
    "repro.ipv6.prefix",
    "repro.ipv6.eui64",
    "repro.ipv6.anonymize",
    "repro.ipv6.sets",
    "repro.ipv6.trie",
    "repro.stats.entropy",
    "repro.stats.histogram",
    "repro.stats.outliers",
    "repro.stats.rng",
    "repro.stats.mutual_information",
    "repro.cluster.dbscan",
    "repro.cluster.intervals",
    "repro.bayes.factor",
    "repro.bayes.cpd",
    "repro.bayes.network",
    "repro.bayes.scores",
    "repro.bayes.structure",
    "repro.bayes.inference",
    "repro.bayes.sampling",
    "repro.bayes.markov",
    "repro.bayes.export",
    "repro.core.segmentation",
    "repro.core.mining",
    "repro.core.encoding",
    "repro.core.model",
    "repro.core.acr",
    "repro.core.windowing",
    "repro.core.browser",
    "repro.core.pipeline",
    "repro.core.report",
    "repro.core.temporal",
    "repro.core.classify",
    "repro.datasets.schema",
    "repro.datasets.parts",
    "repro.datasets.networks",
    "repro.datasets.aggregates",
    "repro.datasets.sampling",
    "repro.datasets.temporal",
    "repro.scan.generator",
    "repro.scan.responder",
    "repro.scan.rdns",
    "repro.scan.evaluate",
    "repro.scan.campaign",
    "repro.baselines.addr6",
    "repro.baselines.iid_patterns",
    "repro.viz.ascii",
    "repro.viz.figures",
    "repro.errors",
    "repro.serve.registry",
    "repro.serve.lifecycle",
    "repro.serve.service",
    "repro.ingest.stats",
    "repro.ingest.drift",
    "repro.ingest.pipeline",
    "repro.cli",
]

# The curated one-call surface of the package.  Entry-point drift —
# adding, renaming or dropping a top-level export — must show up here
# as a deliberate diff, not a silent break for downstream imports.
CURATED_ALL = [
    "AddressSet",
    "ConditionalBrowser",
    "EntropyIP",
    "HitlistService",
    "IPv6Address",
    "IngestConfig",
    "IngestPipeline",
    "MiningConfig",
    "ModelRegistry",
    "Prefix",
    "ReproError",
    "SegmentationConfig",
    "SessionManager",
    "SessionSpec",
    "StructureConfig",
    "__version__",
    "make_backend",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a docstring"
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", MODULES)
def test_module_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__) > 40, name


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-exports documented at their source
        if inspect.isfunction(attr) or inspect.isclass(attr):
            assert attr.__doc__, f"{name}.{attr_name} lacks a docstring"


def test_curated_all_pinned():
    """repro.__all__ is exactly the curated surface, sorted."""
    import repro

    assert repro.__all__ == CURATED_ALL
    assert repro.__all__ == sorted(repro.__all__)


def test_curated_symbols_are_canonical():
    """Every curated export is the same object as its defining module's."""
    import repro
    from repro.core.pipeline import EntropyIP
    from repro.errors import ReproError
    from repro.ingest.pipeline import IngestConfig, IngestPipeline
    from repro.ipv6.backends import make_backend
    from repro.serve.lifecycle import SessionManager, SessionSpec
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import HitlistService

    assert repro.EntropyIP is EntropyIP
    assert repro.ReproError is ReproError
    assert repro.IngestConfig is IngestConfig
    assert repro.IngestPipeline is IngestPipeline
    assert repro.make_backend is make_backend
    assert repro.SessionManager is SessionManager
    assert repro.SessionSpec is SessionSpec
    assert repro.ModelRegistry is ModelRegistry
    assert repro.HitlistService is HitlistService


def test_error_hierarchy_consolidated():
    """All typed errors live under ReproError and keep legacy bases."""
    import repro.errors as errors

    assert sorted(errors.__all__) == errors.__all__
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name
    # Backward-compatible bases: except RuntimeError / KeyError /
    # ValueError written against the historical homes still catches.
    assert issubclass(errors.SessionCapacityError, RuntimeError)
    assert issubclass(errors.UnknownSessionError, KeyError)
    assert issubclass(errors.UnknownModelError, KeyError)
    assert issubclass(errors.ModelDigestMismatch, ValueError)
    assert issubclass(errors.IngestDriftError, RuntimeError)
    assert issubclass(errors.StaleModelError, RuntimeError)
    # Historical import paths resolve to the same class objects.
    from repro.core.model import SessionCapacityError as legacy_cap
    from repro.serve.lifecycle import SessionClosedError as legacy_closed
    from repro.serve.registry import UnknownModelError as legacy_unknown
    from repro.serve.service import ServiceOverloadedError as legacy_over

    assert legacy_cap is errors.SessionCapacityError
    assert legacy_closed is errors.SessionClosedError
    assert legacy_unknown is errors.UnknownModelError
    assert legacy_over is errors.ServiceOverloadedError


def test_error_message_formatting():
    """KeyError-derived errors print their message, not a quoted repr."""
    import repro.errors as errors

    err = errors.UnknownModelError("no registered model named 'S1'")
    assert str(err) == "no registered model named 'S1'"
    err = errors.UnknownSessionError("no live session for model 'S1'")
    assert str(err) == "no live session for model 'S1'"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
