"""Public-API surface tests: imports, __all__ hygiene, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.ipv6",
    "repro.stats",
    "repro.cluster",
    "repro.bayes",
    "repro.core",
    "repro.datasets",
    "repro.scan",
    "repro.baselines",
    "repro.viz",
]

MODULES = [
    "repro.ipv6.address",
    "repro.ipv6.prefix",
    "repro.ipv6.eui64",
    "repro.ipv6.anonymize",
    "repro.ipv6.sets",
    "repro.ipv6.trie",
    "repro.stats.entropy",
    "repro.stats.histogram",
    "repro.stats.outliers",
    "repro.stats.rng",
    "repro.stats.mutual_information",
    "repro.cluster.dbscan",
    "repro.cluster.intervals",
    "repro.bayes.factor",
    "repro.bayes.cpd",
    "repro.bayes.network",
    "repro.bayes.scores",
    "repro.bayes.structure",
    "repro.bayes.inference",
    "repro.bayes.sampling",
    "repro.bayes.markov",
    "repro.bayes.export",
    "repro.core.segmentation",
    "repro.core.mining",
    "repro.core.encoding",
    "repro.core.model",
    "repro.core.acr",
    "repro.core.windowing",
    "repro.core.browser",
    "repro.core.pipeline",
    "repro.core.report",
    "repro.core.temporal",
    "repro.core.classify",
    "repro.datasets.schema",
    "repro.datasets.parts",
    "repro.datasets.networks",
    "repro.datasets.aggregates",
    "repro.datasets.sampling",
    "repro.datasets.temporal",
    "repro.scan.generator",
    "repro.scan.responder",
    "repro.scan.rdns",
    "repro.scan.evaluate",
    "repro.scan.campaign",
    "repro.baselines.addr6",
    "repro.baselines.iid_patterns",
    "repro.viz.ascii",
    "repro.viz.figures",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_exports_resolve(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a docstring"
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", MODULES)
def test_module_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__) > 40, name


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-exports documented at their source
        if inspect.isfunction(attr) or inspect.isclass(attr):
            assert attr.__doc__, f"{name}.{attr_name} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"
