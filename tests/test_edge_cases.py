"""Degenerate-input and failure-injection tests for the full pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import EntropyIP
from repro.core.mining import MiningConfig
from repro.datasets.networks import build_r1
from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet
from repro.scan.responder import SimulatedResponder


class TestDegenerateSets:
    def test_single_address(self):
        analysis = EntropyIP.fit(["2001:db8::1"])
        assert analysis.total_entropy() == 0.0
        # Every segment is a single constant code.
        assert all(m.cardinality == 1 for m in analysis.encoder.mined_segments)

    def test_all_identical_addresses(self):
        analysis = EntropyIP.fit(["2001:db8::1"] * 500)
        assert analysis.total_entropy() == 0.0
        # The only generatable address is the training one; excluding
        # training leaves nothing.
        assert analysis.generate(10, np.random.default_rng(0)).matrix.shape[0] == 0

    def test_identical_addresses_without_exclusion(self):
        analysis = EntropyIP.fit(["2001:db8::1"] * 500)
        generated = analysis.generate(
            5, np.random.default_rng(0), exclude_training=False
        )
        assert len(generated) == 1  # dedup leaves the single support point

    def test_two_addresses(self):
        analysis = EntropyIP.fit(["2001:db8::1", "2001:db8::2"])
        assert analysis.segments[0].label == "A"
        assert analysis.browse().rows()

    def test_fully_random_set(self, rng):
        values = [int(rng.integers(0, 1 << 62)) << 66 for _ in range(500)]
        analysis = EntropyIP.fit(values)
        # High entropy, few mineable points, generation still works.
        assert analysis.total_entropy() > 10
        assert len(analysis.generate(50, np.random.default_rng(1))) == 50

    def test_max_value_addresses(self):
        top = (1 << 128) - 1
        analysis = EntropyIP.fit([top, top - 1, top - 2, top - 3] * 10)
        generated = analysis.generate(
            3, np.random.default_rng(0), exclude_training=False
        )
        assert all(v <= top for v in generated.to_ints())

    def test_prefix_mode_on_tiny_set(self):
        analysis = EntropyIP.fit(["2001:db8::1", "2001:db9::1"], width=16)
        assert analysis.address_set.width == 16
        assert analysis.segments[-1].last_nybble == 16

    def test_aggressive_mining_config(self, structured_set):
        config = MiningConfig(max_nominations=1, tail_values=1)
        analysis = EntropyIP.fit(structured_set, mining=config)
        # Even with one nomination per step the pipeline stays coherent.
        assert all(m.cardinality >= 1 for m in analysis.encoder.mined_segments)
        assert len(analysis.generate(20, np.random.default_rng(2))) == 20


class TestResponderFalsePositives:
    """The §5.5 caveat: prefixes that answer pings for any address."""

    def test_wildcard_inflates_scanning_results(self):
        network = build_r1(population_size=4000)
        population = network.population(0)
        rng = np.random.default_rng(0)
        train = population.sample(500, rng)
        analysis = EntropyIP.fit(train)
        candidates = analysis.model.generate(
            2000, rng, exclude=set(train.to_ints())
        )

        honest = SimulatedResponder(population, ping_rate=0.9, seed=1)
        wildcarded = SimulatedResponder(
            population,
            ping_rate=0.9,
            seed=1,
            wildcard_ping_prefixes=[Prefix("2a01:c80::/28")],
        )
        honest_hits = len(honest.ping_many(candidates))
        inflated_hits = len(wildcarded.ping_many(candidates))
        # Every generated candidate lands inside the carrier's prefix,
        # so the wildcard responder confirms essentially all of them
        # (true members that decline pings stay silent either way).
        assert inflated_hits > 0.99 * len(candidates)
        assert honest_hits < inflated_hits


class TestNumericalRobustness:
    def test_entropy_of_huge_multiplicities(self):
        s = AddressSet.from_ints([1] * 100_000 + [2])
        analysis = EntropyIP.fit(s)
        assert 0 < analysis.entropy()[31] < 0.01

    def test_skewed_distribution_probabilities_sum(self, rng):
        values = [(0x20010DB8 << 96) | 1] * 9999 + [(0x20010DB8 << 96) | 2]
        analysis = EntropyIP.fit(values)
        for distribution in analysis.model.marginals().values():
            assert distribution.sum() == pytest.approx(1.0)

    def test_generation_determinism_across_runs(self, structured_set):
        analysis = EntropyIP.fit(structured_set)
        a = analysis.generate(100, np.random.default_rng(9)).to_ints()
        b = analysis.generate(100, np.random.default_rng(9)).to_ints()
        assert a == b
