"""Tests for the snapshot-series generator."""

import pytest

from repro.core.temporal import detect_changes
from repro.datasets.temporal import SnapshotSeries, TemporalEvent
from repro.scan.generator import prefixes64


class TestSnapshotSeries:
    def test_builds_requested_count(self, jp_small):
        series = SnapshotSeries(jp_small, n_snapshots=3,
                                sample_size=500).build()
        assert len(series) == 3
        assert all(len(s) == 500 for s in series)

    def test_churn_keeps_overlap(self, jp_small):
        series = SnapshotSeries(
            jp_small, n_snapshots=2, sample_size=500, churn=0.3
        ).build()
        first = set(series[0].to_ints())
        second = set(series[1].to_ints())
        overlap = len(first & second) / 500
        assert 0.5 < overlap < 0.9  # ~70% kept

    def test_full_churn_disjoint_mostly(self, jp_small):
        series = SnapshotSeries(
            jp_small, n_snapshots=2, sample_size=500, churn=1.0
        ).build()
        overlap = len(set(series[0].to_ints()) & set(series[1].to_ints()))
        assert overlap < 200  # resampled from a 6K population

    def test_renumber_event_moves_64s(self, jp_small):
        series = SnapshotSeries(
            jp_small,
            n_snapshots=3,
            sample_size=600,
            events=[TemporalEvent(at_index=1, kind="renumber",
                                  magnitude=0xA5)],
        ).build()
        before = prefixes64(series[0].to_ints(), 32)
        after = prefixes64(series[1].to_ints(), 32)
        # Nearly every /64 moved (XOR collisions leave a tiny overlap).
        assert len(before & after) < 0.05 * len(before)

    def test_grow_event_increases_size(self, jp_small):
        series = SnapshotSeries(
            jp_small,
            n_snapshots=2,
            sample_size=500,
            events=[TemporalEvent(at_index=1, kind="grow", magnitude=0.5)],
        ).build()
        assert len(series[1]) == 750

    def test_detector_catches_the_series_event(self, jp_small):
        series = SnapshotSeries(
            jp_small,
            n_snapshots=4,
            sample_size=800,
            events=[TemporalEvent(at_index=2, kind="renumber",
                                  magnitude=0xA5)],
            seed=1,
        ).build()
        changes = detect_changes(series)
        assert 2 in {c.index for c in changes}

    def test_validation(self, jp_small):
        with pytest.raises(ValueError):
            SnapshotSeries(jp_small, churn=2.0).build()
        with pytest.raises(ValueError):
            SnapshotSeries(jp_small, sample_size=0).build()
        with pytest.raises(ValueError):
            SnapshotSeries(
                jp_small,
                events=[TemporalEvent(0, "explode")],
            ).build()
        with pytest.raises(ValueError):
            SnapshotSeries(jp_small, sample_size=10**9).build()

    def test_deterministic(self, jp_small):
        make = lambda: SnapshotSeries(
            jp_small, n_snapshots=2, sample_size=300, seed=7
        ).build()
        first, second = make(), make()
        assert all(a == b for a, b in zip(first, second))
