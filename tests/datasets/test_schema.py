"""Tests for the address-scheme DSL."""

import pytest

from repro.datasets import parts
from repro.datasets.schema import AddressScheme, Field


def constant_scheme():
    return AddressScheme(
        [
            Field("prefix", 8, parts.constant(0x20010DB8)),
            Field("rest", 24, parts.constant(0)),
        ]
    )


class TestField:
    def test_cardinality(self):
        assert Field("x", 2, parts.constant(0)).cardinality == 256

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            Field("x", 0, parts.constant(0))


class TestScheme:
    def test_width_must_match(self):
        with pytest.raises(ValueError):
            AddressScheme([Field("x", 8, parts.constant(0))], width=32)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            AddressScheme(
                [Field("x", 16, parts.constant(0)),
                 Field("x", 16, parts.constant(0))]
            )

    def test_generate_one(self, rng):
        value = constant_scheme().generate_one(rng)
        assert value == 0x20010DB8 << 96

    def test_field_order_msb_first(self, rng):
        scheme = AddressScheme(
            [
                Field("hi", 16, parts.constant(1)),
                Field("lo", 16, parts.constant(2)),
            ]
        )
        assert scheme.generate_one(rng) == (1 << 64) | 2

    def test_oversized_sample_rejected(self, rng):
        scheme = AddressScheme(
            [Field("x", 1, parts.constant(99)),
             Field("rest", 31, parts.constant(0))]
        )
        with pytest.raises(ValueError):
            scheme.generate_one(rng)

    def test_context_dependency(self, rng):
        scheme = AddressScheme(
            [
                Field("a", 16, parts.uniform(4)),
                Field("b", 16, parts.copy_field("a")),
            ]
        )
        value = scheme.generate_one(rng)
        assert (value >> 64) == (value & ((1 << 64) - 1))

    def test_generate_unique(self, rng):
        scheme = AddressScheme(
            [
                Field("x", 4, parts.uniform(4)),
                Field("rest", 28, parts.constant(0)),
            ]
        )
        values = scheme.generate_unique(1000, rng)
        assert len(values) == len(set(values)) == 1000

    def test_generate_unique_impossible(self, rng):
        values_possible = 16
        scheme = AddressScheme(
            [
                Field("x", 1, parts.uniform(1)),
                Field("rest", 31, parts.constant(0)),
            ]
        )
        with pytest.raises(RuntimeError):
            scheme.generate_unique(values_possible + 1, rng)

    def test_generate_set(self, rng):
        address_set = constant_scheme().generate_set(5, rng, unique=False)
        assert len(address_set) == 5
        assert address_set.width == 32
