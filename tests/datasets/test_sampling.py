"""Tests for stratified per-/32 sampling (§3)."""

import numpy as np
import pytest

from repro.datasets.sampling import strata_sizes, stratified_sample
from repro.ipv6.sets import AddressSet


@pytest.fixture
def two_strata():
    """100 addresses in one /32, 5 in another."""
    values = [(0x20010DB8 << 96) | i for i in range(100)]
    values += [(0x2A001450 << 96) | i for i in range(5)]
    return AddressSet.from_ints(values)


class TestStratifiedSample:
    def test_caps_large_strata(self, two_strata):
        sampled = stratified_sample(two_strata, per_stratum=10)
        sizes = strata_sizes(sampled)
        assert sizes[0x20010DB8] == 10
        assert sizes[0x2A001450] == 5  # small stratum kept whole

    def test_respects_custom_stratum_width(self, two_strata):
        sampled = stratified_sample(
            two_strata, per_stratum=3, stratum_nybbles=4
        )
        assert all(c <= 3 for c in strata_sizes(sampled, 4).values())

    def test_deterministic_with_rng(self, two_strata):
        a = stratified_sample(two_strata, 10, rng=np.random.default_rng(5))
        b = stratified_sample(two_strata, 10, rng=np.random.default_rng(5))
        assert a == b

    def test_sample_is_subset(self, two_strata):
        sampled = stratified_sample(two_strata, per_stratum=10)
        assert set(sampled.to_ints()) <= set(two_strata.to_ints())

    def test_validation(self, two_strata):
        with pytest.raises(ValueError):
            stratified_sample(two_strata, per_stratum=0)
        with pytest.raises(ValueError):
            stratified_sample(two_strata, stratum_nybbles=40)


class TestStrataSizes:
    def test_counts(self, two_strata):
        sizes = strata_sizes(two_strata)
        assert sizes == {0x20010DB8: 100, 0x2A001450: 5}
