"""Per-dataset phenomena tests for the remaining network models.

Complements tests/datasets/test_networks.py: each §5.2-§5.3 observation
not already covered gets an assertion against its synthetic model.
"""

import numpy as np
import pytest

from repro.datasets.networks import (
    build_c2,
    build_c4,
    build_network,
    build_r2,
    build_r3,
    build_r5,
    build_s2,
    build_s4,
    build_s5,
)
from repro.ipv6.eui64 import U_BIT
from repro.ipv6.prefix import count_prefixes
from repro.stats.entropy import nybble_entropies


class TestServerPhenomena:
    def test_s2_many_distributed_prefixes(self):
        population = build_s2(population_size=10000).population(0)
        # "S2 has many globally distributed prefixes" — dozens of /48s.
        assert count_prefixes(population.addresses(), 48) > 50

    def test_s2_hosts_in_dense_blocks(self):
        population = build_s2(population_size=10000).population(0)
        hosts = population.segment_values(25, 32)
        assert all(
            0x0001 <= int(h) <= 0x03FF or 0x1000 <= int(h) <= 0x2FFF
            for h in hosts
        )

    def test_s4_only_last_32_bits_discriminate(self):
        population = build_s4(population_size=8000).population(0)
        entropy = nybble_entropies(population)
        assert np.all(entropy[12:24] == 0)
        assert entropy[28:].mean() > 0.3

    def test_s4_low_order_concentration(self):
        population = build_s4(population_size=8000).population(0)
        hosts = population.segment_values(25, 32)
        small = sum(1 for h in hosts if int(h) < 256)
        # sequential_low: low host ids are heavily over-represented
        # (deduplication caps each small value at one occurrence, so
        # "most" becomes "a large minority" in the unique population).
        assert small > 0.3 * len(population)
        assert small > 100 * (256 / (1 << 22)) * len(population)

    def test_s5_services_shared_across_64s(self):
        population = build_s5(population_size=10000).population(0)
        services = {int(v) for v in population.segment_values(29, 32)}
        nets = count_prefixes(population.addresses(), 64)
        # Few service codes, many /64s — the §5.2 S5 signature.
        assert len(services) <= 24
        assert nets > 1000


class TestRouterPhenomena:
    def test_r2_iids_are_one_or_two(self):
        population = build_r2(population_size=5000).population(0)
        iids = {int(v) for v in population.segment_values(17, 32)}
        assert iids == {1, 2}

    def test_r3_zero_middle_random_tail(self):
        population = build_r3(population_size=5000).population(0)
        entropy = nybble_entropies(population)
        assert np.all(entropy[16:28] == 0)
        assert np.all(entropy[29:] > 0.9)

    def test_r5_discriminates_in_bits_52_64(self):
        population = build_r5(population_size=2000).population(0)
        entropy = nybble_entropies(population)
        assert entropy[13:16].mean() > 0.5      # bits 52-64 active
        assert np.all(entropy[8:13] == 0)       # bits 32-52 constant

    def test_router_populations_unique(self):
        population = build_r2(population_size=5000).population(0)
        assert len(population.unique()) == len(population)


class TestClientPhenomena:
    def test_c2_full_random_iids_no_u_bit_dip(self):
        population = build_c2(population_size=10000).population(0)
        entropy = nybble_entropies(population)
        # C2's gateways assign full-random IIDs: no dip at bits 68-72.
        assert entropy[17] > 0.95

    def test_c4_dense_blocks(self):
        population = build_c4(population_size=10000).population(0)
        nets = population.segment_values(9, 16)
        in_blocks = sum(
            1 for n in nets
            if 0x00100000 <= int(n) <= 0x0017FFFF
            or 0x01000000 <= int(n) <= 0x0103FFFF
        )
        assert in_blocks == len(population)

    @pytest.mark.parametrize("name", ["C3", "C4", "C5"])
    def test_privacy_iids_have_u_bit_zero(self, name):
        population = build_network(name).population(0)
        sample_iids = population.segment_values(17, 32)[:500]
        assert all(not (int(v) & U_BIT) for v in sample_iids)
