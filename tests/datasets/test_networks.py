"""Tests for the 16 synthetic network models.

Each test asserts the structural phenomenon the paper reports for that
dataset — these are the properties the substitution argument of
DESIGN.md §2 rests on.
"""

import hashlib
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.datasets.networks import (
    all_networks,
    build_c1,
    build_c5,
    build_network,
    build_r4,
    client_networks,
    router_networks,
    server_networks,
)
from repro.ipv6.eui64 import decode_ipv4_decimal_words
from repro.ipv6.prefix import count_prefixes
from repro.stats.entropy import nybble_entropies

#: src/ directory to expose on subprocess PYTHONPATH (the repro package
#: is importable here via PYTHONPATH=src, not an installed distribution).
_SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"


class TestRegistry:
    def test_all_networks_build(self):
        networks = all_networks()
        assert len(networks) == 16
        assert {n.name for n in networks} >= {"S1", "R1", "C1", "JP"}

    def test_categories(self):
        assert all(n.category == "server" for n in server_networks())
        assert all(n.category == "router" for n in router_networks())
        assert all(n.category == "client" for n in client_networks())

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_network("S9")

    def test_population_deterministic(self, jp_small):
        assert jp_small.population(seed=0) == jp_small.population(seed=0)

    def test_population_varies_with_seed(self, jp_small):
        assert jp_small.population(seed=0) != jp_small.population(seed=1)

    def test_population_stable_across_processes(self, jp_small):
        """Same seed ⇒ bit-identical population in a fresh interpreter.

        Regression: the per-network RNG key once came from built-in
        ``hash(name)``, which PYTHONHASHSEED randomizes per process, so
        every "seed=0" run drew a different population (and therefore
        different Table 4 counts).  Spawn subprocesses with two
        different hash seeds and compare digests.
        """
        expected = hashlib.sha256(
            jp_small.population(0).matrix.tobytes()
        ).hexdigest()
        script = (
            "import hashlib, sys;"
            "from repro.datasets.networks import build_japanese_telco;"
            f"net = build_japanese_telco(population_size={jp_small.population_size});"
            "sys.stdout.write("
            "hashlib.sha256(net.population(0).matrix.tobytes()).hexdigest())"
        )
        for hash_seed in ("17", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(_SRC_DIR)] + env.get("PYTHONPATH", "").split(os.pathsep)
            ).rstrip(os.pathsep)
            result = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
            )
            assert result.returncode == 0, result.stderr
            assert result.stdout.strip() == expected, (
                f"PYTHONHASHSEED={hash_seed}"
            )

    def test_sample_is_subset(self, jp_small):
        population = set(jp_small.population(0).to_ints())
        sample = jp_small.sample(100, seed=0)
        assert set(sample.to_ints()) <= population


class TestServerPhenomena:
    def test_s1_two_prefixes(self, s1_small):
        population = s1_small.population(0)
        assert count_prefixes(population.addresses(), 32) == 2

    def test_s1_variant_shares(self, s1_small):
        # B = 0x10 for ~78% of addresses (variant v1).
        population = s1_small.population(0)
        b_values = population.segment_values(9, 10)
        share = float(np.mean(b_values == 0x10))
        assert share == pytest.approx(0.778, abs=0.03)

    def test_s1_v1_iids_high_entropy(self, s1_small):
        # The dominant variant's G region is pseudo-random → entropy ~1
        # in the middle of the IID.
        population = s1_small.population(0)
        entropy = nybble_entropies(population)
        assert np.all(entropy[18:26] > 0.9)

    def test_s3_single_96_prefix(self, s3_small):
        population = s3_small.population(0)
        assert count_prefixes(population.addresses(), 96) == 1

    def test_s3_dense_host_space(self, s3_small):
        population = s3_small.population(0)
        hosts = population.segment_values(25, 32)
        assert int(hosts.max()) <= 0x7FFFF


class TestRouterPhenomena:
    def test_r1_point_to_point_iids(self, r1_small):
        population = r1_small.population(0)
        iids = population.segment_values(17, 32)
        assert set(int(v) for v in iids) == {1, 2}

    def test_r1_low_total_entropy(self, r1_small):
        # Paper: H_S = 4.6 for R1 — ours must be of the same order,
        # far below a client set's ~21.
        entropy = float(nybble_entropies(r1_small.population(0)).sum())
        assert entropy < 8

    def test_r4_iids_decode_to_ipv4(self):
        population = build_r4(population_size=3000).population(0)
        iids = population.segment_values(17, 32)
        for iid in iids[:100]:
            text = decode_ipv4_decimal_words(int(iid))
            assert text is not None and text.startswith("10.")


class TestClientPhenomena:
    def test_c1_android_pattern_share(self):
        # 47% of IIDs end in 01 with D = 00000 (§5.4).
        population = build_c1(population_size=30000).population(0)
        last_byte = population.segment_values(31, 32)
        d_segment = population.segment_values(17, 21)
        pattern = (last_byte == 0x01) & (d_segment == 0)
        assert float(np.mean(pattern)) == pytest.approx(0.47, abs=0.02)

    def test_c1_pattern_dependency(self):
        # D=00000 and F=01 co-occur: P(F=01 | D=0) must be near 1.
        population = build_c1(population_size=30000).population(0)
        last_byte = population.segment_values(31, 32)
        d_segment = population.segment_values(17, 21)
        d_zero = d_segment == 0
        conditional = float(np.mean(last_byte[d_zero] == 0x01))
        assert conditional > 0.95

    def test_c1_high_total_entropy(self):
        # Paper: H_S = 21.2 for C1.
        population = build_c1(population_size=30000).population(0)
        entropy = float(nybble_entropies(population).sum())
        assert 15 < entropy < 26

    def test_c5_dense_64s(self):
        population = build_c5(population_size=30000).population(0)
        nets = population.segment_values(9, 16)
        assert int(nets.min()) >= 0x00040000
        assert int(nets.max()) <= 0x0008FFFF

    def test_clients_never_answer_pings(self):
        for network in client_networks():
            assert network.ping_rate == 0.0


class TestJapaneseTelco:
    def test_j_zeros_share(self, jp_small):
        # Fig. 1: segment J (bits 64-108) equals zeros for ~60%.
        population = jp_small.population(0)
        j_values = population.segment_values(17, 27)
        assert float(np.mean(j_values == 0)) == pytest.approx(0.60, abs=0.03)

    def test_j_dependency_on_c(self, jp_small):
        # When J = 0...0, C must equal 0x10 (the "static" plan).
        population = jp_small.population(0)
        j_values = population.segment_values(17, 27)
        c_values = population.segment_values(11, 12)
        zero_rows = j_values == 0
        assert np.all(c_values[zero_rows] == 0x10)

    def test_single_40_prefix(self, jp_small):
        population = jp_small.population(0)
        assert count_prefixes(population.addresses(), 40) == 1
