"""Tests for the sampler building blocks."""

import numpy as np
import pytest

from repro.datasets import parts
from repro.ipv6.eui64 import (
    U_BIT,
    decode_ipv4_decimal_words,
    is_eui64_iid,
)


@pytest.fixture
def gen():
    return np.random.default_rng(7)


def draw(sampler, gen, n=200, context=None):
    return [sampler(gen, {} if context is None else dict(context)) for _ in range(n)]


class TestBasicSamplers:
    def test_constant(self, gen):
        assert set(draw(parts.constant(42), gen)) == {42}

    def test_uniform_bounds(self, gen):
        values = draw(parts.uniform(2), gen, 500)
        assert all(0 <= v < 256 for v in values)
        assert len(set(values)) > 100

    def test_uniform_full_64_bits(self, gen):
        values = draw(parts.uniform(16), gen, 50)
        assert all(0 <= v < (1 << 64) for v in values)
        assert max(values) > 1 << 60  # top bits actually vary

    def test_uniform_range_inclusive(self, gen):
        values = draw(parts.uniform_range(5, 7), gen, 300)
        assert set(values) == {5, 6, 7}

    def test_uniform_range_validation(self):
        with pytest.raises(ValueError):
            parts.uniform_range(7, 5)

    def test_weighted_distribution(self, gen):
        sampler = parts.weighted([1, 2], [0.9, 0.1])
        values = draw(sampler, gen, 2000)
        assert values.count(1) > 1500

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            parts.weighted([1], [0.5, 0.5])

    def test_pool_is_deterministic(self, gen):
        a = parts.pool(10, 4, seed=3)
        b = parts.pool(10, 4, seed=3)
        assert set(draw(a, np.random.default_rng(0), 500)) == set(
            draw(b, np.random.default_rng(1), 500)
        )

    def test_pool_respects_bounds(self, gen):
        values = draw(parts.pool(50, 4, seed=1, low=0x10, high=0x20), gen)
        assert all(0x10 <= v <= 0x20 for v in values)

    def test_zipf_pool_heavy_hitters(self, gen):
        sampler = parts.zipf_pool(100, 4, seed=2, exponent=2.0)
        values = draw(sampler, gen, 2000)
        top_share = max(values.count(v) for v in set(values)) / len(values)
        assert top_share > 0.3

    def test_sequential_low_mostly_small(self, gen):
        values = draw(parts.sequential_low(1 << 20), gen, 2000)
        assert all(0 <= v < (1 << 20) for v in values)
        small = sum(1 for v in values if v < 256)
        assert small > 1000


class TestVariants:
    def test_select_stores_tag(self, gen):
        sampler = parts.select("k", [(1.0, "only", parts.constant(5))])
        context = {}
        assert sampler(gen, context) == 5
        assert context["k"] == "only"

    def test_switch_dispatches(self, gen):
        sampler = parts.switch("k", {"a": parts.constant(1),
                                     "b": parts.constant(2)})
        assert sampler(gen, {"k": "a"}) == 1
        assert sampler(gen, {"k": "b"}) == 2

    def test_switch_missing_tag(self, gen):
        with pytest.raises(KeyError):
            parts.switch("k", {"a": parts.constant(1)})(gen, {})

    def test_select_switch_correlation(self, gen):
        select = parts.select("k", [
            (0.5, "x", parts.constant(1)),
            (0.5, "y", parts.constant(2)),
        ])
        follow = parts.switch("k", {"x": parts.constant(10),
                                    "y": parts.constant(20)})
        for _ in range(100):
            context = {}
            first = select(gen, context)
            second = follow(gen, context)
            assert (first, second) in {(1, 10), (2, 20)}

    def test_mixture_weights(self, gen):
        sampler = parts.mixture([(0.95, parts.constant(1)),
                                 (0.05, parts.constant(2))])
        values = draw(sampler, gen, 1000)
        assert values.count(1) > 850

    def test_copy_field(self, gen):
        assert parts.copy_field("a")(gen, {"a": 9}) == 9


class TestIidSamplers:
    def test_privacy_iid_u_bit_cleared(self, gen):
        values = draw(parts.privacy_iid(), gen, 300)
        assert all(0 <= v < (1 << 64) for v in values)
        assert all(not (v & U_BIT) for v in values)
        assert len(set(values)) == 300  # effectively unique

    def test_eui64_iid_has_filler(self, gen):
        values = draw(parts.eui64_iid(seed=5), gen, 200)
        assert all(is_eui64_iid(v) for v in values)
        # u-bit set (universal) after the EUI-64 flip of vendor MACs.
        assert all(v & U_BIT for v in values)

    def test_eui64_custom_oui_pool(self, gen):
        values = draw(parts.eui64_iid(oui_pool=[0x001122]), gen, 50)
        assert all((v >> 40) == (0x001122 ^ 0x020000) for v in values)

    def test_point_to_point_iid(self, gen):
        values = draw(parts.point_to_point_iid((1, 2), (0.5, 0.5)), gen, 300)
        assert set(values) == {1, 2}

    def test_ipv4_decimal_words_decodable(self, gen):
        sampler = parts.ipv4_decimal_words_iid((10,), second_max=0,
                                               third_max=31)
        for value in draw(sampler, gen, 200):
            text = decode_ipv4_decimal_words(value)
            assert text is not None
            octets = [int(o) for o in text.split(".")]
            assert octets[0] == 10
            assert octets[1] == 0
            assert octets[2] <= 31

    def test_ipv4_hex_low32_bounds(self, gen):
        values = draw(parts.ipv4_hex_low32(), gen, 100)
        assert all(0 <= v < (1 << 32) for v in values)
