"""Tests asserting the Fig. 6 shapes of the aggregate datasets."""

import numpy as np
import pytest

from repro.datasets.aggregates import (
    aggregate_by_name,
    build_aggregate_clients,
    build_aggregate_routers,
    build_aggregate_servers,
    build_bittorrent_clients,
)
from repro.stats.entropy import nybble_entropies


@pytest.fixture(scope="module")
def profiles():
    n = 12000
    return {
        "AS": nybble_entropies(build_aggregate_servers(n)),
        "AR": nybble_entropies(build_aggregate_routers(n)),
        "AC": nybble_entropies(build_aggregate_clients(n)),
        "AT": nybble_entropies(build_bittorrent_clients(n)),
    }


class TestFig6Shapes:
    def test_servers_least_random(self, profiles):
        # "the addresses in dataset AS are the least random".
        totals = {k: float(v.sum()) for k, v in profiles.items()}
        assert totals["AS"] == min(totals.values())

    def test_clients_most_random_iids(self, profiles):
        # Client IID entropy near 1 in the bottom 64 bits.
        iid = profiles["AC"][16:]
        assert float(np.median(iid)) > 0.9

    def test_servers_low_order_rise(self, profiles):
        # "steady increase in entropy from bit 80 to 128" for servers.
        tail = profiles["AS"][20:]
        assert tail[-1] > tail[0]
        assert tail[-1] > 0.5

    def test_router_dip_at_88_104(self, profiles):
        # EUI-64 fffe filler drops router entropy toward ~0.5 there.
        dip = profiles["AR"][22:26]
        neighborhood = profiles["AR"][17:22]
        assert float(dip.mean()) < float(neighborhood.mean())
        assert 0.3 < float(dip.mean()) < 0.7

    def test_client_u_bit_dip_at_68_72(self, profiles):
        # Mixture of privacy (u=0) and other IIDs → entropy ~0.8.
        assert 0.7 < float(profiles["AC"][17]) < 0.95
        assert profiles["AC"][17] < profiles["AC"][18]

    def test_bittorrent_differs_at_88_104_only(self, profiles):
        # "no significant differences ... except for bits 88-104".
        ac, at = profiles["AC"], profiles["AT"]
        eui_region = abs(ac[22:26] - at[22:26]).mean()
        elsewhere = abs(ac[28:] - at[28:]).mean()
        assert eui_region > 0.1
        assert elsewhere < 0.1


class TestBuilders:
    def test_by_name(self):
        assert len(aggregate_by_name("AS", n=500)) == 500

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            aggregate_by_name("AX")

    def test_many_operators(self):
        from repro.ipv6.prefix import count_prefixes

        sample = build_aggregate_servers(4000)
        assert count_prefixes(sample.addresses(), 32) > 20
