"""Tests for forward and likelihood-weighted sampling."""

import numpy as np
import pytest

from repro.bayes.cpd import CPD
from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import (
    forward_sample,
    likelihood_weighted_sample,
    sample_assignments,
)


@pytest.fixture
def coupled():
    """x ~ Bern(0.3); y = x with probability 0.9."""
    x = CPD("x", (), np.array([0.7, 0.3]))
    y = CPD("y", ("x",), np.array([[0.9, 0.1], [0.1, 0.9]]))
    return BayesianNetwork(["x", "y"], [x, y])


class TestForwardSampling:
    def test_shape_and_range(self, coupled, rng):
        samples = forward_sample(coupled, 500, rng)
        assert samples.shape == (500, 2)
        assert samples.min() >= 0 and samples.max() <= 1

    def test_marginal_frequencies(self, coupled):
        rng = np.random.default_rng(0)
        samples = forward_sample(coupled, 20000, rng)
        assert samples[:, 0].mean() == pytest.approx(0.3, abs=0.02)

    def test_conditional_frequencies(self, coupled):
        rng = np.random.default_rng(1)
        samples = forward_sample(coupled, 20000, rng)
        x, y = samples[:, 0], samples[:, 1]
        agree = (x == y).mean()
        assert agree == pytest.approx(0.9, abs=0.02)

    def test_zero_samples(self, coupled, rng):
        assert forward_sample(coupled, 0, rng).shape == (0, 2)

    def test_negative_rejected(self, coupled, rng):
        with pytest.raises(ValueError):
            forward_sample(coupled, -1, rng)

    def test_deterministic_given_seed(self, coupled):
        a = forward_sample(coupled, 50, np.random.default_rng(7))
        b = forward_sample(coupled, 50, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestLikelihoodWeighting:
    def test_matches_exact_posterior(self, coupled):
        rng = np.random.default_rng(2)
        samples = likelihood_weighted_sample(
            coupled, 20000, rng, evidence={"y": 1}
        )
        exact = VariableElimination(coupled).marginal("x", {"y": 1})
        empirical = samples[:, 0].mean()
        assert empirical == pytest.approx(exact[1], abs=0.02)

    def test_evidence_clamped(self, coupled, rng):
        samples = likelihood_weighted_sample(coupled, 100, rng, {"y": 0})
        assert np.all(samples[:, 1] == 0)

    def test_no_evidence_falls_back_to_forward(self, coupled, rng):
        samples = likelihood_weighted_sample(coupled, 50, rng, {})
        assert samples.shape == (50, 2)

    def test_unknown_evidence_variable(self, coupled, rng):
        with pytest.raises(KeyError):
            likelihood_weighted_sample(coupled, 10, rng, {"zz": 0})

    def test_impossible_evidence(self):
        x = CPD("x", (), np.array([1.0, 0.0]))
        y = CPD("y", ("x",), np.array([[1.0, 0.0], [0.0, 1.0]]))
        network = BayesianNetwork(["x", "y"], [x, y])
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            likelihood_weighted_sample(network, 10, rng, {"y": 1})


class TestInverseCdfEquivalence:
    """The vectorized inverse-CDF draw must reproduce the CPD tables."""

    def test_matches_reference_distribution(self):
        # Three-state child over two parents: empirical conditional
        # frequencies must match the table, exactly as the seed-era
        # per-configuration rng.choice implementation did.
        rng = np.random.default_rng(0)
        x = CPD("x", (), np.array([0.2, 0.5, 0.3]))
        table = np.array(
            [[0.1, 0.6, 0.3], [0.2, 0.3, 0.5], [0.7, 0.1, 0.2]]
        )
        y = CPD("y", ("x",), table)
        network = BayesianNetwork(["x", "y"], [x, y])
        samples = forward_sample(network, 60000, rng)
        for parent_state in range(3):
            rows = samples[samples[:, 0] == parent_state]
            for child_state in range(3):
                empirical = (rows[:, 1] == child_state).mean()
                assert empirical == pytest.approx(
                    table[child_state, parent_state], abs=0.02
                )

    def test_zero_probability_states_never_drawn(self):
        rng = np.random.default_rng(1)
        x = CPD("x", (), np.array([0.0, 1.0, 0.0]))
        y = CPD("y", ("x",), np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]))
        network = BayesianNetwork(["x", "y"], [x, y])
        samples = forward_sample(network, 5000, rng)
        assert np.all(samples[:, 0] == 1)
        assert np.all(samples[:, 1] == 1)

    def test_sampling_cdf_layout(self):
        table = np.array([[0.25, 0.5], [0.75, 0.5]])
        cpd = CPD("y", ("x",), table)
        cdf = cpd.sampling_cdf()
        # Config c occupies [c, c+1] and tops out at exactly c + 1.
        assert cdf.tolist() == [0.25, 1.0, 1.5, 2.0]
        assert cdf is cpd.sampling_cdf()  # cached

    def test_large_sample_deterministic_and_in_range(self, coupled):
        a = forward_sample(coupled, 200_000, np.random.default_rng(9))
        b = forward_sample(coupled, 200_000, np.random.default_rng(9))
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() <= 1


class TestAssignments:
    def test_dict_form(self, coupled, rng):
        assignments = sample_assignments(coupled, 5, rng)
        assert len(assignments) == 5
        assert set(assignments[0]) == {"x", "y"}

    def test_with_evidence(self, coupled, rng):
        assignments = sample_assignments(coupled, 5, rng, evidence={"y": 1})
        assert all(a["y"] == 1 for a in assignments)
