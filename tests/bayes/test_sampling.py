"""Tests for forward and likelihood-weighted sampling."""

import numpy as np
import pytest

from repro.bayes.cpd import CPD
from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import (
    forward_sample,
    likelihood_weighted_sample,
    sample_assignments,
)


@pytest.fixture
def coupled():
    """x ~ Bern(0.3); y = x with probability 0.9."""
    x = CPD("x", (), np.array([0.7, 0.3]))
    y = CPD("y", ("x",), np.array([[0.9, 0.1], [0.1, 0.9]]))
    return BayesianNetwork(["x", "y"], [x, y])


class TestForwardSampling:
    def test_shape_and_range(self, coupled, rng):
        samples = forward_sample(coupled, 500, rng)
        assert samples.shape == (500, 2)
        assert samples.min() >= 0 and samples.max() <= 1

    def test_marginal_frequencies(self, coupled):
        rng = np.random.default_rng(0)
        samples = forward_sample(coupled, 20000, rng)
        assert samples[:, 0].mean() == pytest.approx(0.3, abs=0.02)

    def test_conditional_frequencies(self, coupled):
        rng = np.random.default_rng(1)
        samples = forward_sample(coupled, 20000, rng)
        x, y = samples[:, 0], samples[:, 1]
        agree = (x == y).mean()
        assert agree == pytest.approx(0.9, abs=0.02)

    def test_zero_samples(self, coupled, rng):
        assert forward_sample(coupled, 0, rng).shape == (0, 2)

    def test_negative_rejected(self, coupled, rng):
        with pytest.raises(ValueError):
            forward_sample(coupled, -1, rng)

    def test_deterministic_given_seed(self, coupled):
        a = forward_sample(coupled, 50, np.random.default_rng(7))
        b = forward_sample(coupled, 50, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestLikelihoodWeighting:
    def test_matches_exact_posterior(self, coupled):
        rng = np.random.default_rng(2)
        samples = likelihood_weighted_sample(
            coupled, 20000, rng, evidence={"y": 1}
        )
        exact = VariableElimination(coupled).marginal("x", {"y": 1})
        empirical = samples[:, 0].mean()
        assert empirical == pytest.approx(exact[1], abs=0.02)

    def test_evidence_clamped(self, coupled, rng):
        samples = likelihood_weighted_sample(coupled, 100, rng, {"y": 0})
        assert np.all(samples[:, 1] == 0)

    def test_no_evidence_falls_back_to_forward(self, coupled, rng):
        samples = likelihood_weighted_sample(coupled, 50, rng, {})
        assert samples.shape == (50, 2)

    def test_unknown_evidence_variable(self, coupled, rng):
        with pytest.raises(KeyError):
            likelihood_weighted_sample(coupled, 10, rng, {"zz": 0})

    def test_impossible_evidence(self):
        x = CPD("x", (), np.array([1.0, 0.0]))
        y = CPD("y", ("x",), np.array([[1.0, 0.0], [0.0, 1.0]]))
        network = BayesianNetwork(["x", "y"], [x, y])
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            likelihood_weighted_sample(network, 10, rng, {"y": 1})


class TestInverseCdfEquivalence:
    """The vectorized inverse-CDF draw must reproduce the CPD tables."""

    def test_matches_reference_distribution(self):
        # Three-state child over two parents: empirical conditional
        # frequencies must match the table, exactly as the seed-era
        # per-configuration rng.choice implementation did.
        rng = np.random.default_rng(0)
        x = CPD("x", (), np.array([0.2, 0.5, 0.3]))
        table = np.array(
            [[0.1, 0.6, 0.3], [0.2, 0.3, 0.5], [0.7, 0.1, 0.2]]
        )
        y = CPD("y", ("x",), table)
        network = BayesianNetwork(["x", "y"], [x, y])
        samples = forward_sample(network, 60000, rng)
        for parent_state in range(3):
            rows = samples[samples[:, 0] == parent_state]
            for child_state in range(3):
                empirical = (rows[:, 1] == child_state).mean()
                assert empirical == pytest.approx(
                    table[child_state, parent_state], abs=0.02
                )

    def test_zero_probability_states_never_drawn(self):
        rng = np.random.default_rng(1)
        x = CPD("x", (), np.array([0.0, 1.0, 0.0]))
        y = CPD("y", ("x",), np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]))
        network = BayesianNetwork(["x", "y"], [x, y])
        samples = forward_sample(network, 5000, rng)
        assert np.all(samples[:, 0] == 1)
        assert np.all(samples[:, 1] == 1)

    def test_sampling_cdf_layout(self):
        table = np.array([[0.25, 0.5], [0.75, 0.5]])
        cpd = CPD("y", ("x",), table)
        cdf = cpd.sampling_cdf()
        # Config c occupies [c, c+1] and tops out at exactly c + 1.
        assert cdf.tolist() == [0.25, 1.0, 1.5, 2.0]
        assert cdf is cpd.sampling_cdf()  # cached

    def test_large_sample_deterministic_and_in_range(self, coupled):
        a = forward_sample(coupled, 200_000, np.random.default_rng(9))
        b = forward_sample(coupled, 200_000, np.random.default_rng(9))
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() <= 1


class TestGroupedDraws:
    """The grouped per-configuration path must agree with the flat path."""

    def _big_cpd(self):
        # 64 configurations x 64 states = 4096 flat entries, above the
        # grouped threshold.  Probabilities are multiples of 1/64, so
        # both code paths compare the exact same float values and must
        # pick identical states.
        rng = np.random.default_rng(3)
        raw = rng.integers(1, 8, size=(64, 64)).astype(np.float64)
        table = raw / raw.sum(axis=0)
        return CPD("y", ("x",), table)

    def test_grouped_matches_flat(self):
        from repro.bayes import sampling as sampling_module
        from repro.bayes.sampling import _draw_states, _draw_states_grouped

        cpd = self._big_cpd()
        assert len(cpd.sampling_cdf()) > sampling_module.GROUPED_CDF_THRESHOLD
        rng = np.random.default_rng(4)
        flat_config = rng.integers(0, 64, size=20_000).astype(np.int64)
        u = rng.random(20_000)
        grouped = _draw_states_grouped(cpd, flat_config, u)
        flat = (
            np.searchsorted(cpd.sampling_cdf(), flat_config + u, side="right")
            - flat_config * cpd.child_cardinality
        )
        assert np.array_equal(grouped, flat)
        # And the dispatcher actually routes to the grouped path for a
        # table this large.
        assert np.array_equal(_draw_states(cpd, flat_config, u), grouped)

    def test_grouped_path_empty_batch(self):
        # n=0 must stay legal for any CPD size (regression: the group
        # loop indexed into a zero-length configuration array).
        from repro.bayes.sampling import _draw_states_grouped

        cpd = self._big_cpd()
        empty = _draw_states_grouped(
            cpd, np.empty(0, dtype=np.int64), np.empty(0)
        )
        assert empty.shape == (0,)

    def test_cdf_matrix_matches_flat_cdf(self):
        table = np.array([[0.25, 0.5], [0.75, 0.5]])
        cpd = CPD("y", ("x",), table)
        matrix = cpd.sampling_cdf_matrix()
        assert matrix.shape == (2, 2)
        assert matrix.tolist() == [[0.25, 1.0], [0.5, 1.0]]
        assert matrix is cpd.sampling_cdf_matrix()  # cached

    def test_degenerate_variables_skip_draws(self):
        # A cardinality-1 variable must consume no randomness: the
        # stream position after sampling equals a run without it.
        x = CPD("x", (), np.array([1.0]))
        y = CPD("y", ("x",), np.array([[0.5], [0.5]]))
        network = BayesianNetwork(["x", "y"], [x, y])
        rng = np.random.default_rng(6)
        samples = forward_sample(network, 1000, rng)
        assert np.all(samples[:, 0] == 0)
        reference = np.random.default_rng(6)
        expected = np.searchsorted(
            y.sampling_cdf(), reference.random(1000), side="right"
        )
        assert np.array_equal(samples[:, 1], expected)


class TestAssignments:
    def test_dict_form(self, coupled, rng):
        assignments = sample_assignments(coupled, 5, rng)
        assert len(assignments) == 5
        assert set(assignments[0]) == {"x", "y"}

    def test_with_evidence(self, coupled, rng):
        assignments = sample_assignments(coupled, 5, rng, evidence={"y": 1})
        assert all(a["y"] == 1 for a in assignments)
