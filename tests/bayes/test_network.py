"""Tests for the BayesianNetwork container."""

import numpy as np
import pytest

from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork


@pytest.fixture
def triple():
    a = CPD("a", (), np.array([0.5, 0.5]))
    b = CPD("b", ("a",), np.array([[0.9, 0.1], [0.1, 0.9]]))
    c = CPD("c", ("a",), np.array([[0.8, 0.3], [0.2, 0.7]]))
    return BayesianNetwork(["a", "b", "c"], [a, b, c])


class TestValidation:
    def test_rejects_parent_after_child(self):
        a = CPD("a", ("b",), np.ones((2, 2)) / 2)
        b = CPD("b", (), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            BayesianNetwork(["a", "b"], [a, b])

    def test_rejects_missing_cpd(self):
        a = CPD("a", (), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            BayesianNetwork(["a", "b"], [a])

    def test_rejects_unknown_parent(self):
        a = CPD("a", (), np.array([0.5, 0.5]))
        b = CPD("b", ("zz",), np.ones((2, 2)) / 2)
        with pytest.raises(ValueError):
            BayesianNetwork(["a", "b"], [a, b])

    def test_rejects_duplicate_names(self):
        a = CPD("a", (), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            BayesianNetwork(["a", "a"], [a, a])


class TestAccessors:
    def test_parents_children(self, triple):
        assert triple.parents("b") == ("a",)
        assert triple.children("a") == ["b", "c"]

    def test_cardinalities(self, triple):
        assert triple.cardinalities() == {"a": 2, "b": 2, "c": 2}

    def test_edges(self, triple):
        assert set(triple.edges()) == {("a", "b"), ("a", "c")}

    def test_markov_blanket(self, triple):
        assert triple.markov_blanket("a") == ["b", "c"]
        assert triple.markov_blanket("b") == ["a"]

    def test_to_networkx(self, triple):
        graph = triple.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.has_edge("a", "b")


class TestProbability:
    def test_joint_probability(self, triple):
        # P(a=0) * P(b=0|a=0) * P(c=0|a=0) = 0.5 * 0.9 * 0.8
        p = triple.joint_probability({"a": 0, "b": 0, "c": 0})
        assert p == pytest.approx(0.36)

    def test_joint_sums_to_one(self, triple):
        total = sum(
            triple.joint_probability({"a": a, "b": b, "c": c})
            for a in range(2)
            for b in range(2)
            for c in range(2)
        )
        assert total == pytest.approx(1.0)

    def test_log_likelihood(self, triple):
        data = np.array([[0, 0, 0], [1, 1, 1]])
        expected = np.log(0.36) + np.log(0.5 * 0.9 * 0.7)
        assert triple.log_likelihood(data) == pytest.approx(expected)

    def test_log_likelihood_shape_mismatch(self, triple):
        with pytest.raises(ValueError):
            triple.log_likelihood(np.zeros((2, 2), dtype=int))

    def test_log_likelihood_zero_probability(self):
        a = CPD("a", (), np.array([1.0, 0.0]))
        network = BayesianNetwork(["a"], [a])
        assert network.log_likelihood(np.array([[1]])) == float("-inf")
