"""Tests for CPDs and their estimation."""

import numpy as np
import pytest

from repro.bayes.cpd import CPD, count_family, estimate_cpd


class TestCPD:
    def test_valid_table(self):
        cpd = CPD("x", (), np.array([0.25, 0.75]))
        assert cpd.child_cardinality == 2

    def test_rejects_non_normalized(self):
        with pytest.raises(ValueError):
            CPD("x", (), np.array([0.3, 0.3]))

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError):
            CPD("x", ("x",), np.ones((2, 2)) / 2)

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            CPD("x", ("y",), np.array([0.5, 0.5]))

    def test_distribution_and_probability(self):
        table = np.array([[0.9, 0.2], [0.1, 0.8]])
        cpd = CPD("x", ("y",), table)
        assert np.allclose(cpd.distribution({"y": 1}), [0.2, 0.8])
        assert cpd.probability(0, {"y": 0}) == pytest.approx(0.9)

    def test_parent_cardinalities(self):
        cpd = CPD("x", ("y",), np.ones((2, 3)) / 2)
        assert cpd.parent_cardinalities() == {"y": 3}

    def test_to_factor(self):
        table = np.array([[0.9, 0.2], [0.1, 0.8]])
        factor = CPD("x", ("y",), table).to_factor()
        assert factor.variables == ("x", "y")
        assert factor.value({"x": 1, "y": 1}) == pytest.approx(0.8)


class TestCountFamily:
    def test_counts(self):
        data = np.array([[0, 0], [0, 1], [1, 1], [1, 1]])
        counts = count_family(data, 1, [0], [2, 2])
        # axes: (child=col1, parent=col0)
        assert counts[0, 0] == 1  # child 0, parent 0
        assert counts[1, 1] == 2

    def test_no_parents(self):
        data = np.array([[0], [1], [1]])
        counts = count_family(data, 0, [], [2])
        assert counts.tolist() == [1, 2]


class TestEstimation:
    def test_mle_without_smoothing(self):
        data = np.array([[0], [0], [1], [0]])
        cpd = estimate_cpd(data, 0, [], [2], ["x"], alpha=0.0)
        assert np.allclose(cpd.table, [0.75, 0.25])

    def test_smoothing_pulls_toward_uniform(self):
        data = np.array([[0]] * 100)
        smoothed = estimate_cpd(data, 0, [], [2], ["x"], alpha=1.0)
        assert 0 < smoothed.table[1] < 0.05

    def test_unseen_parent_config_uniform(self):
        # parent value 1 never observed → uniform child distribution.
        data = np.array([[0, 0], [1, 0]])
        cpd = estimate_cpd(data, 0, [1], [2, 2], ["x", "y"], alpha=0.0)
        assert np.allclose(cpd.table[:, 1], [0.5, 0.5])

    def test_conditional_estimation(self):
        # x copies y exactly.
        y = np.array([0, 1] * 50)
        data = np.column_stack([y, y])
        cpd = estimate_cpd(data, 0, [1], [2, 2], ["x", "y"], alpha=0.0)
        assert cpd.probability(0, {"y": 0}) == pytest.approx(1.0)
        assert cpd.probability(1, {"y": 1}) == pytest.approx(1.0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            estimate_cpd(np.array([[0]]), 0, [], [2], ["x"], alpha=-1)
