"""Tests for family scoring functions (BDeu, BIC, log-likelihood)."""

import math

import numpy as np
import pytest

from repro.bayes.cpd import count_family
from repro.bayes.scores import (
    bdeu_score,
    bic_score,
    family_log_likelihood,
    family_score,
)


def make_dependent_data(n=400, seed=0):
    """Column 1 copies column 0; column 2 is independent noise."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, size=n)
    c = rng.integers(0, 2, size=n)
    return np.column_stack([a, a, c])


class TestLogLikelihood:
    def test_deterministic_family_is_zero(self):
        # If the child is a function of the parent, LL = 0 (prob 1).
        data = make_dependent_data()
        counts = count_family(data, 1, [0], [2, 2, 2][:2])
        assert family_log_likelihood(counts) == pytest.approx(0.0)

    def test_independent_fair_coin(self):
        counts = np.array([50.0, 50.0])
        assert family_log_likelihood(counts) == pytest.approx(
            100 * math.log(0.5)
        )

    def test_more_parents_never_decrease_ll(self):
        data = make_dependent_data()
        cards = [2, 2, 2]
        ll_none = family_log_likelihood(count_family(data, 1, [], cards))
        ll_one = family_log_likelihood(count_family(data, 1, [0], cards))
        assert ll_one >= ll_none - 1e-9


class TestBic:
    def test_penalizes_parameters(self):
        data = make_dependent_data()
        cards = [2, 2, 2]
        # Noise parent: LL gain ~0 but doubles parameters → lower BIC.
        counts_no = count_family(data, 2, [], cards)
        counts_with = count_family(data, 2, [0], cards)
        assert bic_score(counts_no, len(data)) > bic_score(counts_with, len(data))

    def test_real_parent_wins(self):
        data = make_dependent_data()
        cards = [2, 2, 2]
        counts_no = count_family(data, 1, [], cards)
        counts_with = count_family(data, 1, [0], cards)
        assert bic_score(counts_with, len(data)) > bic_score(counts_no, len(data))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            bic_score(np.array([1.0, 1.0]), 0)


class TestBdeu:
    def test_real_parent_wins(self):
        data = make_dependent_data()
        cards = [2, 2, 2]
        counts_no = count_family(data, 1, [], cards)
        counts_with = count_family(data, 1, [0], cards)
        assert bdeu_score(counts_with) > bdeu_score(counts_no)

    def test_noise_parent_loses(self):
        data = make_dependent_data()
        cards = [2, 2, 2]
        counts_no = count_family(data, 2, [], cards)
        counts_with = count_family(data, 2, [0], cards)
        assert bdeu_score(counts_no) > bdeu_score(counts_with)

    def test_is_log_marginal_likelihood_for_tiny_case(self):
        # One binary variable, one observation of state 0, ess=2:
        # P(x=0) under Beta(1,1) prior = 1/2 → score = log(1/2).
        counts = np.array([1.0, 0.0])
        assert bdeu_score(counts, equivalent_sample_size=2.0) == pytest.approx(
            math.log(0.5)
        )

    def test_rejects_bad_ess(self):
        with pytest.raises(ValueError):
            bdeu_score(np.array([1.0, 1.0]), equivalent_sample_size=0)


class TestFamilyScore:
    def test_dispatch(self):
        data = make_dependent_data()
        cards = [2, 2, 2]
        assert family_score(data, 1, [0], cards, method="bdeu") == pytest.approx(
            bdeu_score(count_family(data, 1, [0], cards))
        )
        assert family_score(data, 1, [0], cards, method="bic") == pytest.approx(
            bic_score(count_family(data, 1, [0], cards), len(data))
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            family_score(make_dependent_data(), 1, [0], [2, 2, 2], method="x")
