"""Tests for ordered structure learning (the BNFinder substitute)."""

import numpy as np
import pytest

from repro.bayes.structure import (
    StructureConfig,
    _subset_count,
    learn_structure,
    learned_parent_map,
)


def chain_data(n=800, seed=0):
    """a → b → c chain plus independent noise d."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 3, size=n)
    b = (a + (rng.random(n) < 0.05).astype(int)) % 3  # b ≈ a
    c = (b + (rng.random(n) < 0.05).astype(int)) % 3  # c ≈ b
    d = rng.integers(0, 3, size=n)
    return np.column_stack([a, b, c, d])


class TestLearning:
    def test_recovers_chain(self):
        data = chain_data()
        bn = learn_structure(data, ["a", "b", "c", "d"], [3, 3, 3, 3])
        assert bn.parents("b") == ("a",)
        assert "b" in bn.parents("c")
        assert bn.parents("d") == ()

    def test_recovers_non_adjacent_dependency(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=800)
        b = rng.integers(0, 3, size=800)
        c = a.copy()  # c depends on a, skipping b
        data = np.column_stack([a, b, c])
        bn = learn_structure(data, ["a", "b", "c"], [3, 3, 3])
        assert bn.parents("c") == ("a",)

    def test_respects_ordering(self):
        data = chain_data()
        bn = learn_structure(data, ["a", "b", "c", "d"], [3, 3, 3, 3])
        order = {v: i for i, v in enumerate(bn.variables)}
        for parent, child in bn.edges():
            assert order[parent] < order[child]

    def test_max_parents_bound(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 2, size=600)
        b = rng.integers(0, 2, size=600)
        c = rng.integers(0, 2, size=600)
        d = (a ^ b ^ c)  # depends on all three
        data = np.column_stack([a, b, c, d])
        config = StructureConfig(max_parents=2)
        bn = learn_structure(data, ["a", "b", "c", "d"], [2, 2, 2, 2], config)
        assert len(bn.parents("d")) <= 2

    def test_bic_variant(self):
        data = chain_data()
        config = StructureConfig(score="bic")
        bn = learn_structure(data, ["a", "b", "c", "d"], [3, 3, 3, 3], config)
        assert bn.parents("b") == ("a",)

    def test_greedy_fallback_matches_on_chain(self):
        data = chain_data()
        config = StructureConfig(exhaustive_limit=1)  # force greedy
        bn = learn_structure(data, ["a", "b", "c", "d"], [3, 3, 3, 3], config)
        assert bn.parents("b") == ("a",)
        assert bn.parents("d") == ()

    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            learn_structure(np.empty((0, 2), dtype=int), ["a", "b"], [2, 2])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            learn_structure(np.zeros((5, 2), dtype=int), ["a"], [2])

    def test_parent_map(self):
        data = chain_data()
        bn = learn_structure(data, ["a", "b", "c", "d"], [3, 3, 3, 3])
        mapping = learned_parent_map(bn)
        assert mapping["b"] == ("a",)

    def test_fitted_cpds_reflect_dependency(self):
        data = chain_data()
        bn = learn_structure(data, ["a", "b", "c", "d"], [3, 3, 3, 3])
        cpd = bn.cpd("b")
        # P(b=0 | a=0) should be near 0.95.
        assert cpd.probability(0, {"a": 0}) > 0.85


class TestSubsetCount:
    def test_counts(self):
        assert _subset_count(4, 0) == 1
        assert _subset_count(4, 1) == 5
        assert _subset_count(4, 2) == 11
        assert _subset_count(3, 3) == 8
