"""Tests for discrete factors."""

import numpy as np
import pytest

from repro.bayes.factor import Factor, unit_factor


@pytest.fixture
def joint_ab():
    """P(a, b) with a binary, b ternary."""
    table = np.array([[0.1, 0.2, 0.1], [0.3, 0.2, 0.1]])
    return Factor(("a", "b"), table)


class TestConstruction:
    def test_cardinalities(self, joint_ab):
        assert joint_ab.cardinality("a") == 2
        assert joint_ab.cardinality("b") == 3
        assert joint_ab.cardinalities() == {"a": 2, "b": 3}

    def test_rejects_duplicate_variables(self):
        with pytest.raises(ValueError):
            Factor(("a", "a"), np.ones((2, 2)))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            Factor(("a",), np.ones((2, 2)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Factor(("a",), np.array([-0.1, 1.1]))


class TestAlgebra:
    def test_multiply_shared_variable(self):
        f = Factor(("a",), np.array([0.5, 0.5]))
        g = Factor(("a", "b"), np.array([[1.0, 2.0], [3.0, 4.0]]))
        product = f.multiply(g)
        assert set(product.variables) == {"a", "b"}
        assert product.value({"a": 1, "b": 0}) == pytest.approx(1.5)

    def test_multiply_disjoint_is_outer_product(self):
        f = Factor(("a",), np.array([1.0, 2.0]))
        g = Factor(("b",), np.array([3.0, 4.0]))
        product = f * g
        assert product.value({"a": 1, "b": 1}) == pytest.approx(8.0)

    def test_multiply_commutes(self, joint_ab):
        g = Factor(("b", "c"), np.arange(6, dtype=float).reshape(3, 2))
        left = joint_ab.multiply(g)
        right = g.multiply(joint_ab)
        assert np.allclose(
            left.reorder(("a", "b", "c")).table,
            right.reorder(("a", "b", "c")).table,
        )

    def test_marginalize(self, joint_ab):
        marginal = joint_ab.marginalize("b")
        assert marginal.variables == ("a",)
        assert np.allclose(marginal.table, [0.4, 0.6])

    def test_marginalize_all_but(self, joint_ab):
        marginal = joint_ab.marginalize_all_but(["b"])
        assert marginal.variables == ("b",)
        assert np.allclose(marginal.table, [0.4, 0.4, 0.2])

    def test_reduce(self, joint_ab):
        reduced = joint_ab.reduce("a", 1)
        assert reduced.variables == ("b",)
        assert np.allclose(reduced.table, [0.3, 0.2, 0.1])

    def test_reduce_out_of_range(self, joint_ab):
        with pytest.raises(IndexError):
            joint_ab.reduce("a", 5)

    def test_reduce_evidence_ignores_out_of_scope(self, joint_ab):
        reduced = joint_ab.reduce_evidence({"a": 0, "zz": 1})
        assert reduced.variables == ("b",)

    def test_normalize(self, joint_ab):
        assert joint_ab.normalize().table.sum() == pytest.approx(1.0)

    def test_normalize_zero_factor_raises(self):
        with pytest.raises(ZeroDivisionError):
            Factor(("a",), np.zeros(2)).normalize()

    def test_reorder(self, joint_ab):
        flipped = joint_ab.reorder(("b", "a"))
        assert flipped.variables == ("b", "a")
        assert flipped.value({"a": 1, "b": 2}) == joint_ab.value({"a": 1, "b": 2})

    def test_reorder_rejects_non_permutation(self, joint_ab):
        with pytest.raises(ValueError):
            joint_ab.reorder(("a", "c"))


class TestQueries:
    def test_value(self, joint_ab):
        assert joint_ab.value({"a": 0, "b": 1}) == pytest.approx(0.2)

    def test_argmax(self, joint_ab):
        assert joint_ab.argmax() == {"a": 1, "b": 0}

    def test_unit_factor(self):
        unit = unit_factor()
        product = unit.multiply(Factor(("a",), np.array([2.0, 3.0])))
        assert np.allclose(product.table, [2.0, 3.0])
