"""Tests for the Markov-chain baseline (§4.5 comparison)."""

import numpy as np
import pytest

from repro.bayes.cpd import CPD
from repro.bayes.markov import MarkovChainModel
from repro.bayes.network import BayesianNetwork


class TestMarkovChain:
    def test_fit_builds_chain(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 3, size=(200, 4))
        model = MarkovChainModel.fit(data, ["a", "b", "c", "d"], [3, 3, 3, 3])
        assert model.network.parents("a") == ()
        assert model.network.parents("b") == ("a",)
        assert model.network.parents("d") == ("c",)

    def test_rejects_non_chain(self):
        a = CPD("a", (), np.array([0.5, 0.5]))
        b = CPD("b", (), np.array([0.5, 0.5]))  # missing a→b edge
        with pytest.raises(ValueError):
            MarkovChainModel(BayesianNetwork(["a", "b"], [a, b]))

    def test_cannot_capture_non_adjacent_dependency(self):
        # c copies a, b is noise: a BN recovers this, a chain cannot.
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, size=1000)
        b = rng.integers(0, 2, size=1000)
        data = np.column_stack([a, b, a])
        chain = MarkovChainModel.fit(data, ["a", "b", "c"], [2, 2, 2])
        # In the chain, c's parent is b; P(c|b) is near 50/50 because b
        # is independent noise.
        cpd = chain.network.cpd("c")
        assert abs(cpd.probability(0, {"b": 0}) - 0.5) < 0.1

    def test_log_likelihood_delegates(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, size=(100, 3))
        model = MarkovChainModel.fit(data, ["a", "b", "c"], [2, 2, 2])
        assert model.log_likelihood(data) == pytest.approx(
            model.network.log_likelihood(data)
        )
