"""Tests for variable elimination, validated against brute-force enumeration."""

import itertools

import numpy as np
import pytest

from repro.bayes.cpd import CPD
from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork


@pytest.fixture
def sprinkler():
    """Classic rain/sprinkler/wet-grass network (binary variables).

    rain ~ Bern(0.2); sprinkler | rain; wet | rain, sprinkler.
    """
    rain = CPD("rain", (), np.array([0.8, 0.2]))
    sprinkler = CPD(
        "sprinkler", ("rain",), np.array([[0.6, 0.99], [0.4, 0.01]])
    )
    wet_table = np.zeros((2, 2, 2))
    # P(wet=1 | rain, sprinkler)
    p_wet = {(0, 0): 0.0, (0, 1): 0.9, (1, 0): 0.8, (1, 1): 0.99}
    for (r, s), p in p_wet.items():
        wet_table[1, r, s] = p
        wet_table[0, r, s] = 1 - p
    wet = CPD("wet", ("rain", "sprinkler"), wet_table)
    return BayesianNetwork(["rain", "sprinkler", "wet"], [rain, sprinkler, wet])


def brute_force_marginal(network, variable, evidence):
    """Enumerate the full joint and condition."""
    cards = network.cardinalities()
    names = list(network.variables)
    result = np.zeros(cards[variable])
    for states in itertools.product(*(range(cards[v]) for v in names)):
        assignment = dict(zip(names, states))
        if any(assignment[k] != v for k, v in evidence.items()):
            continue
        result[assignment[variable]] += network.joint_probability(assignment)
    return result / result.sum()


class TestQueries:
    def test_prior_marginal(self, sprinkler):
        ve = VariableElimination(sprinkler)
        assert np.allclose(ve.marginal("rain"), [0.8, 0.2])

    def test_posterior_matches_enumeration(self, sprinkler):
        ve = VariableElimination(sprinkler)
        for evidence in ({}, {"wet": 1}, {"wet": 0}, {"sprinkler": 1}):
            for variable in sprinkler.variables:
                if variable in evidence:
                    continue
                ours = ve.marginal(variable, evidence)
                reference = brute_force_marginal(sprinkler, variable, evidence)
                assert np.allclose(ours, reference), (variable, evidence)

    def test_evidential_reasoning_backwards(self, sprinkler):
        # Observing wet grass raises the probability of rain: influence
        # flows against edge direction (the Fig. 1b→1c phenomenon).
        ve = VariableElimination(sprinkler)
        prior = ve.marginal("rain")[1]
        posterior = ve.marginal("rain", {"wet": 1})[1]
        assert posterior > prior

    def test_explaining_away(self, sprinkler):
        # Given wet grass, learning the sprinkler ran lowers P(rain).
        ve = VariableElimination(sprinkler)
        with_wet = ve.marginal("rain", {"wet": 1})[1]
        with_both = ve.marginal("rain", {"wet": 1, "sprinkler": 1})[1]
        assert with_both < with_wet

    def test_joint_query(self, sprinkler):
        ve = VariableElimination(sprinkler)
        joint = ve.query(["rain", "sprinkler"])
        assert joint.variables == ("rain", "sprinkler")
        assert joint.table.sum() == pytest.approx(1.0)
        # P(rain=1, sprinkler=1) = 0.2 * 0.01
        assert joint.value({"rain": 1, "sprinkler": 1}) == pytest.approx(0.002)

    def test_all_marginals_excludes_evidence(self, sprinkler):
        ve = VariableElimination(sprinkler)
        marginals = ve.all_marginals({"rain": 1})
        assert set(marginals) == {"sprinkler", "wet"}

    def test_evidence_probability(self, sprinkler):
        ve = VariableElimination(sprinkler)
        # P(sprinkler=1) = 0.8*0.4 + 0.2*0.01
        assert ve.evidence_probability({"sprinkler": 1}) == pytest.approx(0.322)
        assert ve.evidence_probability({}) == 1.0

    def test_map_assignment(self, sprinkler):
        ve = VariableElimination(sprinkler)
        assignment = ve.map_assignment()
        assert assignment["rain"] == 0

    def test_query_validation(self, sprinkler):
        ve = VariableElimination(sprinkler)
        with pytest.raises(KeyError):
            ve.query(["nope"])
        with pytest.raises(ValueError):
            ve.query(["rain"], {"rain": 1})


class TestRandomNetworks:
    def test_random_chain_matches_enumeration(self):
        rng = np.random.default_rng(3)
        # Random 4-chain with cardinality 3.
        names = ["x0", "x1", "x2", "x3"]
        cpds = []
        for i, name in enumerate(names):
            parents = (names[i - 1],) if i else ()
            shape = (3, 3) if i else (3,)
            raw = rng.random(shape) + 0.05
            table = raw / raw.sum(axis=0)
            cpds.append(CPD(name, parents, table))
        network = BayesianNetwork(names, cpds)
        ve = VariableElimination(network)
        evidence = {"x3": 2}
        for variable in ["x0", "x1", "x2"]:
            assert np.allclose(
                ve.marginal(variable, evidence),
                brute_force_marginal(network, variable, evidence),
            )
