"""Tests for DOT/JSON export of learned models."""

import json

import pytest

from repro.bayes.export import browser_to_json, to_dot
from repro.core.pipeline import EntropyIP


@pytest.fixture(scope="module")
def analysis(structured_set):
    return EntropyIP.fit(structured_set)


class TestDot:
    def test_structure(self, analysis):
        dot = to_dot(analysis.model.network)
        assert dot.startswith("digraph entropy_ip_bn {")
        assert dot.rstrip().endswith("}")
        for variable in analysis.model.network.variables:
            assert f"{variable} [shape=circle" in dot

    def test_edges_rendered(self, analysis):
        dot = to_dot(analysis.model.network)
        for parent, child in analysis.model.network.edges():
            assert f"{parent} -> {child}" in dot

    def test_highlight(self, analysis):
        edges = analysis.model.network.edges()
        if not edges:
            pytest.skip("no edges to highlight")
        _, child = edges[0]
        dot = to_dot(analysis.model.network, highlight_child=child)
        assert "color=red" in dot

    def test_custom_name(self, analysis):
        assert "digraph g2 {" in to_dot(analysis.model.network,
                                        graph_name="g2")


class TestBrowserJson:
    def test_round_trips_through_json(self, analysis):
        document = json.loads(browser_to_json(analysis.browse()))
        assert document["evidence"] == {}
        assert document["evidence_probability"] == 1.0
        labels = [s["label"] for s in document["segments"]]
        assert labels == analysis.encoder.variable_names

    def test_probabilities_sum_per_segment(self, analysis):
        document = json.loads(browser_to_json(analysis.browse()))
        for segment in document["segments"]:
            total = sum(v["probability"] for v in segment["values"])
            assert total == pytest.approx(1.0, abs=1e-3)

    def test_evidence_marked(self, analysis):
        label = analysis.segments[0].label
        browser = analysis.browse().click(f"{label}1")
        document = json.loads(browser_to_json(browser))
        assert document["evidence"] == {label: f"{label}1"}
        first = next(s for s in document["segments"] if s["label"] == label)
        selected = [v for v in first["values"] if v["selected"]]
        assert len(selected) == 1
        assert selected[0]["code"] == f"{label}1"

    def test_rejects_non_browser(self):
        with pytest.raises(TypeError):
            browser_to_json("not a browser")

    def test_indentation(self, analysis):
        pretty = browser_to_json(analysis.browse(), indent=2)
        assert "\n  " in pretty
