"""The deterministic fault-injection harness: grammar, arming, latches."""

import os

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    INJECTABLE_ERRORS,
    PLAN_ENV,
    SCOREBOARD_ENV,
    FaultPlan,
    active_plan,
    fault_point,
)


class TestParse:
    def test_nth_selector(self):
        plan = FaultPlan.parse("pool.dispatch@5:raise=OSError")
        (rule,) = plan.rules
        assert rule.site == "pool.dispatch"
        assert rule.nth == 5
        assert rule.action == "raise"
        assert rule.exc_name == "OSError"

    def test_call_shard_selector(self):
        plan = FaultPlan.parse("pool.shard@2.3:kill")
        (rule,) = plan.rules
        assert (rule.call, rule.shard) == (2, 3)
        assert rule.nth is None
        assert rule.action == "kill"

    def test_multiple_rules_and_whitespace(self):
        plan = FaultPlan.parse(
            " pool.shard@0.1:kill ; service.worker@1:raise=RuntimeError ;"
        )
        assert len(plan.rules) == 2

    @pytest.mark.parametrize("text", [
        "no-selector-or-action",
        "site@1",                      # no action
        "site@1:explode",              # unknown action
        "site@1:raise=NameError",      # not in the allowlist
        "site@x:kill",                 # non-integer selector
        "site@1.2.3:kill",             # malformed call.shard
        "",                            # no rules at all
        " ; ; ",
    ])
    def test_rejects_bad_grammar(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_allowlist_covers_recovery_paths(self):
        assert {"OSError", "RuntimeError", "KeyboardInterrupt",
                "SystemExit"} <= set(INJECTABLE_ERRORS)


class TestArming:
    def test_disarmed_site_is_a_no_op(self):
        assert active_plan() is None
        fault_point("pool.dispatch")
        fault_point("pool.shard", call=0, shard=0)

    def test_armed_rule_fires_exactly_once(self):
        plan = FaultPlan.parse("s@2:raise=ValueError")
        with plan.armed():
            fault_point("s")  # hit 1: no match
            with pytest.raises(ValueError, match="injected fault at s"):
                fault_point("s")  # hit 2: fires
            for _ in range(5):
                fault_point("s")  # the rule never re-fires
        assert plan.fired() == 1
        assert plan.hits("s") == 7

    def test_call_shard_rule_matches_coordinates_not_order(self):
        plan = FaultPlan.parse("s@1.2:raise=RuntimeError")
        with plan.armed():
            fault_point("s", call=0, shard=2)
            fault_point("s", call=1, shard=0)
            with pytest.raises(RuntimeError):
                fault_point("s", call=1, shard=2)
        assert plan.fired() == 1

    def test_armed_block_restores_prior_state(self):
        before_plan = active_plan()
        before_env = os.environ.get(PLAN_ENV)
        plan = FaultPlan.parse("s@1:kill")
        with plan.armed() as armed:
            assert active_plan() is armed is plan
            assert os.environ[PLAN_ENV] == "s@1:kill"
            assert os.path.isdir(os.environ[SCOREBOARD_ENV])
            board = os.environ[SCOREBOARD_ENV]
        assert active_plan() is before_plan
        assert os.environ.get(PLAN_ENV) == before_env
        assert not os.path.isdir(board)  # owned board cleaned up

    def test_nested_arming_restores_outer_plan(self):
        outer = FaultPlan.parse("a@1:raise=OSError")
        inner = FaultPlan.parse("b@1:raise=OSError")
        with outer.armed():
            with inner.armed():
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None


class TestScoreboard:
    """The cross-process once-only latch: a rule marked fired by one
    plan instance (one process) stays fired for every other instance
    sharing the board directory — the property that stops a ``kill``
    rule from re-arming in freshly forked replacement workers."""

    def test_fired_latch_is_shared_across_plan_instances(self):
        first = FaultPlan.parse("s@1:raise=OSError")
        with first.armed():
            board = os.environ[SCOREBOARD_ENV]
            with pytest.raises(OSError):
                fault_point("s")
            # A second instance (what a replacement worker would parse
            # from the env) sees the latch file, not a fresh rule.
            second = FaultPlan.parse("s@1:raise=OSError")
            second._board = board
            assert second.fired() == 1
            with second.armed():
                fault_point("s")  # would re-fire without the board

    def test_board_survives_for_externally_owned_dirs(self, tmp_path):
        plan = FaultPlan.parse("s@1:raise=OSError")
        plan._board = str(tmp_path)
        with plan.armed():
            with pytest.raises(OSError):
                fault_point("s")
        assert (tmp_path / "0").exists()  # latch kept: board not owned


class TestEnvArming:
    def test_plan_round_trips_through_env(self):
        from repro.faults import _plan_from_env

        os.environ[PLAN_ENV] = "pool.shard@0.1:kill;s@3:raise=MemoryError"
        try:
            plan = _plan_from_env()
        finally:
            del os.environ[PLAN_ENV]
        assert plan is not None
        assert len(plan.rules) == 2
        assert plan.rules[0].action == "kill"

    def test_empty_env_means_no_plan(self):
        from repro.faults import _plan_from_env

        assert os.environ.get(PLAN_ENV) is None
        assert _plan_from_env() is None
