"""Snapshot-series generation for temporal experiments (§6).

Formalizes what the temporal example improvises: given a base network,
produce a series of observation snapshots with controllable events —
address churn (clients come and go), growth (sample size increases),
and renumbering (the subnet bits move to a new block).  Used by the
temporal tests and the change-detection extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.datasets.networks import SyntheticNetwork
from repro.ipv6.sets import AddressSet


@dataclass(frozen=True)
class TemporalEvent:
    """A structural event applied from snapshot ``at_index`` onward."""

    at_index: int
    kind: str  # "renumber" | "grow"
    #: For "renumber": XOR mask applied to address bits 32-64 (the
    #: subnet identifier); 0 selects a default mask.  For "grow": extra
    #: sample rows as a fraction of the base sample size.
    magnitude: float = 0.0


@dataclass
class SnapshotSeries:
    """A reproducible series of observation snapshots of one network."""

    network: SyntheticNetwork
    n_snapshots: int = 4
    sample_size: int = 2000
    #: Fraction of each snapshot resampled fresh (client churn).
    churn: float = 0.3
    events: Sequence[TemporalEvent] = field(default_factory=tuple)
    seed: int = 0

    def build(self) -> List[AddressSet]:
        """Materialize the snapshot series."""
        if not 0 <= self.churn <= 1:
            raise ValueError("churn must lie in [0, 1]")
        if self.sample_size < 1 or self.n_snapshots < 1:
            raise ValueError("series dimensions must be positive")
        for event in self.events:
            if event.kind not in ("renumber", "grow"):
                raise ValueError(f"unknown event kind: {event.kind!r}")
        population = self.network.population(self.seed)
        if self.sample_size > len(population):
            raise ValueError("sample_size exceeds the population")
        rng = np.random.default_rng(self.seed + 101)

        effective = population  # the deployed addresses as of "now"
        growth = 0.0
        current = effective.sample(self.sample_size, rng)
        snapshots: List[AddressSet] = []
        for index in range(self.n_snapshots):
            for event in self.events:
                if event.at_index != index:
                    continue
                if event.kind == "renumber":
                    mask = int(event.magnitude) or 0xA5
                    effective = _renumber(effective, mask)
                    # Already-observed hosts migrate with the network.
                    current = _renumber(current, mask)
                else:  # grow
                    growth = event.magnitude
            keep = int(round((1 - self.churn) * len(current)))
            kept_rows = sorted(
                int(r) for r in rng.choice(len(current), size=keep,
                                           replace=False)
            )
            fresh = effective.sample(self.sample_size - keep, rng)
            snapshot = current.take(kept_rows).concat(fresh)
            if growth > 0:
                extra_count = min(
                    int(growth * self.sample_size), len(effective)
                )
                snapshot = snapshot.concat(effective.sample(extra_count, rng))
            snapshots.append(snapshot)
            current = snapshot
        return snapshots


def _renumber(address_set: AddressSet, mask: int) -> AddressSet:
    """XOR address bits 56-64 (the low subnet byte) with ``mask``.

    Models an operator moving its customer pools to a new block while
    leaving the /32 and the IIDs untouched.
    """
    if not 0 < mask <= 0xFF:
        raise ValueError("mask must fit in the low subnet byte (1..0xff)")
    shifted = mask << 64
    values = [v ^ shifted for v in address_set.to_ints()]
    return AddressSet.from_ints(
        values, width=address_set.width, already_truncated=True
    )
