"""Address-scheme composition DSL.

A :class:`AddressScheme` describes how one network builds addresses: an
ordered list of :class:`Field` objects, each a fixed number of nybbles
wide, each drawing its value from a sampler function.  Samplers share a
per-address ``context`` dictionary, which is how cross-field dependencies
are expressed (e.g. dataset C1's Android pattern, where the low segments
are jointly determined, §5.4 — or S1's addressing "variants" selected by
segment B, §5.2).

Samplers are plain callables ``(rng, context) -> int`` so schemes stay
explicit and composable; :mod:`repro.datasets.parts` provides a library
of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.ipv6.sets import AddressSet

#: A sampler draws one field value; it may read/write the shared
#: per-address context to coordinate with other fields.
Sampler = Callable[[np.random.Generator, Dict[str, object]], int]


@dataclass(frozen=True)
class Field:
    """One fixed-width piece of the address layout."""

    name: str
    nybbles: int
    sampler: Sampler

    def __post_init__(self):
        if self.nybbles < 1:
            raise ValueError(f"field {self.name!r}: nybbles must be >= 1")

    @property
    def cardinality(self) -> int:
        return 16 ** self.nybbles


class AddressScheme:
    """A full address layout: fields concatenated to ``width`` nybbles."""

    def __init__(self, fields: Sequence[Field], width: int = 32):
        self.fields: List[Field] = list(fields)
        total = sum(f.nybbles for f in self.fields)
        if total != width:
            raise ValueError(
                f"fields cover {total} nybbles, expected {width}"
            )
        self.width = width
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names: {names}")

    def generate_one(self, rng: np.random.Generator) -> int:
        """Draw a single address as a ``width``-nybble integer."""
        context: Dict[str, object] = {}
        value = 0
        for field in self.fields:
            piece = int(field.sampler(rng, context))
            if not 0 <= piece < field.cardinality:
                raise ValueError(
                    f"field {field.name!r} sampled {piece:#x}, which does "
                    f"not fit in {field.nybbles} nybbles"
                )
            context[field.name] = piece
            value = (value << (4 * field.nybbles)) | piece
        return value

    def generate(self, n: int, rng: np.random.Generator) -> List[int]:
        """Draw ``n`` addresses (duplicates possible, like real traffic)."""
        return [self.generate_one(rng) for _ in range(n)]

    def generate_unique(
        self, n: int, rng: np.random.Generator, max_rounds: int = 64
    ) -> List[int]:
        """Draw until ``n`` distinct addresses are collected.

        Raises if the scheme's support appears too small to produce
        ``n`` distinct values within ``max_rounds`` of oversampling.
        """
        seen: Dict[int, None] = {}
        for _ in range(max_rounds):
            missing = n - len(seen)
            if missing <= 0:
                break
            for value in self.generate(int(missing * 1.2) + 8, rng):
                if len(seen) >= n:
                    break
                seen.setdefault(value)
        if len(seen) < n:
            raise RuntimeError(
                f"scheme produced only {len(seen)} distinct addresses "
                f"of the requested {n}"
            )
        return list(seen)[:n]

    def generate_set(
        self, n: int, rng: np.random.Generator, unique: bool = True
    ) -> AddressSet:
        """Generate as an :class:`AddressSet`."""
        values = (
            self.generate_unique(n, rng) if unique else self.generate(n, rng)
        )
        return AddressSet.from_ints(
            values, width=self.width, already_truncated=True
        )
