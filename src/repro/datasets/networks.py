"""Synthetic models of the paper's 15 evaluated networks (+ Fig. 1's).

Each builder returns a :class:`SyntheticNetwork` whose address scheme
reproduces the structural phenomena the paper reports for that dataset:

========  ==========================================================
S1        web hoster: two /32s (64/36%), four addressing variants
          selected by bits 32-40, pseudo-random IIDs for the main
          variant, embedded IPv4 for the 07/05 variant (§5.2, Table 3)
S2        CDN using DNS + unicast: many distributed prefixes (§5.2)
S3        CDN using anycast: one /96 worldwide, dense host space
          (§5.2 — the 43% scanning success case)
S4        cloud provider: structure in bits 32-48, hosts discriminated
          only by the last 32 bits (§5.2)
S5        large web company: service type in the last 2-4 nybbles,
          deployed across many /64s (§5.2)
R1        carrier: prefixes discriminate in bits 28-64, IIDs are
          zeros ending in ::1 / ::2 (point-to-point links, §5.3)
R2        carrier: same ::1/::2 pattern, different prefix plan (§5.3)
R3        carrier: predictable zero-dominated pattern in bits 48-116,
          last 12 bits pseudo-random (§5.3)
R4        carrier: IID encodes a literal IPv4 address in base-10
          octets across 16-bit words (§5.3)
R5        carrier: discrimination mostly in bits 52-64 (§5.3)
C1        mobile ISP: 47% of IIDs follow the "Android" pattern
          (D = 00000, F = 01, statistically dependent; §5.4, Fig. 10)
C2-C5     wired/mobile ISPs: structured /64s + pseudo-random privacy
          IIDs; /64 predictability ranges ~1% to 20% (§5.6, Table 6)
JP        the Fig. 1 Japanese telco client set (one /40, segment J
          equal to zeros at 60%, dependent on C and H)
========  ==========================================================

The absolute hit rates of Tables 4-6 depend on population densities we
cannot observe; the densities below are tuned so the *ordering* of the
paper's results is preserved (S3 easiest, S1 hopeless, routers produce
new /64s, C5 most predictable prefixes, ...).  EXPERIMENTS.md records
paper-vs-measured numbers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.datasets import parts
from repro.datasets.schema import AddressScheme, Field
from repro.ipv6.sets import AddressSet


@dataclass(frozen=True)
class SyntheticNetwork:
    """A named synthetic network: scheme + population + responder rates."""

    name: str
    category: str  # "server" | "router" | "client"
    description: str
    scheme: AddressScheme
    population_size: int
    #: Fraction of the population answering ICMPv6 echo (simulated).
    ping_rate: float = 0.8
    #: Fraction of the population with reverse-DNS records (simulated).
    rdns_rate: float = 0.3

    def population(self, seed: int = 0) -> AddressSet:
        """The network's deployed addresses (deterministic per seed).

        The per-network key must come from a *stable* string hash:
        built-in ``hash()`` on strings is randomized per process
        (PYTHONHASHSEED), which silently made every population — and
        thus every downstream scan count — differ between runs of the
        "same" seed.
        """
        name_key = zlib.crc32(self.name.encode("utf-8")) & 0xFFFF
        rng = np.random.default_rng(name_key ^ seed)
        return self.scheme.generate_set(self.population_size, rng, unique=True)

    def sample(self, n: int, seed: int = 0) -> AddressSet:
        """An n-address observation sample (what a CDN/DNS would glean)."""
        population = self.population(seed)
        rng = np.random.default_rng(seed + 1)
        return population.sample(min(n, len(population)), rng)


# ----------------------------------------------------------------------
# servers
# ----------------------------------------------------------------------


def build_s1(population_size: int = 60_000) -> SyntheticNetwork:
    """S1: web hoster, two /32s, four addressing variants (§5.2)."""
    variant = "s1_variant"
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.weighted(
                [0x2A011450, 0x2A03C0F0], [0.635, 0.365]
            )),
            # B (bits 32-40) selects one of four addressing variants.
            Field("B", 2, parts.select(variant, [
                (0.778, "v1", parts.constant(0x10)),
                (0.1542, "v2", parts.constant(0x08)),
                (0.0505, "v2", parts.constant(0x09)),
                (0.0070, "v3", parts.constant(0x07)),
                (0.0047, "v3", parts.constant(0x05)),
                (0.0055, "v4", parts.constant(0x00)),
            ])),
            # C (bits 40-48): popular points plus dense ranges (Fig. 4).
            Field("C", 2, parts.mixture([
                (0.67, parts.constant(0x00)),
                (0.11, parts.constant(0x01)),
                (0.012, parts.weighted([0xC2, 0xFE, 0xFF], [1, 1, 1])),
                (0.12, parts.uniform_range(0x02, 0x5B)),
                (0.088, parts.uniform_range(0x5C, 0xFD)),
            ])),
            Field("D", 1, parts.weighted(
                list(range(16)),
                [10.1, 8.9, 9.05, 5, 9.11, 9.24, 5, 5, 5, 5, 5, 5, 5, 5, 4, 4.6],
            )),
            Field("E", 1, parts.weighted(
                list(range(16)),
                [69.7, 5.4, 4.7, 3.8, 1.5, 2.2, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.3, 1.1, 1.1, 1.2],
            )),
            Field("F", 2, parts.mixture([
                (0.142, parts.constant(0x00)),
                (0.0065, parts.constant(0x53)),
                (0.8515, parts.uniform_range(0x01, 0xFF)),
            ])),
            # G (bits 56-116): the variant-dependent heart of S1.
            Field("G", 13, parts.switch(variant, {
                # v1: essentially pseudo-random (the reason S1 resists
                # scanning, §5.5).
                "v1": parts.uniform(13),
                # v2: structured, low-entropy values.
                "v2": parts.mixture([
                    (0.35, parts.constant(0)),
                    (0.65, parts.pool(40, 13, seed=11, high=0xFFFF)),
                ]),
                # v3: literal IPv4 in base-10 digits (Table 3's G2-G10).
                "v3": _s1_ipv4_digits_sampler(),
                # v4: a small static pool.
                "v4": parts.pool(12, 13, seed=13, high=0xFFF),
            })),
            Field("H", 1, parts.weighted(
                [0, 8] + list(range(1, 8)) + list(range(9, 16)),
                [49.5, 37.3] + [0.94] * 14,
            )),
            Field("I", 1, parts.weighted(
                list(range(16)),
                [51.6, 19.9, 9.6, 4.5, 2.4] + [1.09] * 11,
            )),
            Field("J", 1, parts.weighted(
                list(range(16)),
                [16.4, 8.2, 7.7, 6.9, 6.5] + [4.93] * 11,
            )),
        ]
    )
    return SyntheticNetwork(
        name="S1",
        category="server",
        description="web hosting company: two /32s, four variants, "
        "pseudo-random IIDs dominate",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.7,
        rdns_rate=0.5,
    )


def _s1_ipv4_digits_sampler():
    """IPv4 written as decimal digits inside the 13-nybble G segment."""

    def sample(rng: np.random.Generator, context: Dict) -> int:
        octets = (
            int(rng.choice([10, 100, 127])),
            int(rng.integers(0, 256)),
            int(rng.integers(0, 256)),
            int(rng.integers(0, 200)),
        )
        digits = "0{:03d}{:03d}{:03d}{:03d}".format(*octets)
        return int(digits, 16)

    return sample


def build_s2(population_size: int = 50_000) -> SyntheticNetwork:
    """S2: CDN with DNS + IP unicast: many distributed prefixes (§5.2)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A02E180)),
            # Many globally distributed /48s with heavy hitters.
            Field("site", 4, parts.zipf_pool(800, 4, seed=21, exponent=1.15)),
            Field("zero", 4, parts.constant(0)),
            Field("mid", 8, parts.constant(0)),
            # Dense but partially-occupied host space.
            Field("host", 8, parts.mixture([
                (0.65, parts.uniform_range(0x0001, 0x03FF)),
                (0.35, parts.uniform_range(0x1000, 0x2FFF)),
            ])),
        ]
    )
    return SyntheticNetwork(
        name="S2",
        category="server",
        description="CDN (DNS + unicast): many distributed prefixes",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.85,
        rdns_rate=0.1,
    )


def build_s3(population_size: int = 150_000) -> SyntheticNetwork:
    """S3: anycast CDN: one /96 worldwide, dense hosts (§5.2)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A04F280)),
            Field("net96", 16, parts.constant(0x0000000000000001)),
            # Hosts dense in a 19-bit space → high scanning success.
            Field("host", 8, parts.uniform_range(0x00000, 0x7FFFF)),
        ]
    )
    return SyntheticNetwork(
        name="S3",
        category="server",
        description="CDN (anycast): a single /96, dense host space",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.95,
        rdns_rate=0.0,
    )


def build_s4(population_size: int = 30_000) -> SyntheticNetwork:
    """S4: cloud provider: simple structure in 32-48, last 32 bits (§5.2)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A05D010)),
            Field("region", 4, parts.zipf_pool(24, 4, seed=41)),
            Field("zero", 12, parts.constant(0)),
            Field("host", 8, parts.sequential_low(1 << 22)),
        ]
    )
    return SyntheticNetwork(
        name="S4",
        category="server",
        description="cloud provider: only the last 32 bits discriminate",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.6,
        rdns_rate=0.05,
    )


def build_s5(population_size: int = 60_000) -> SyntheticNetwork:
    """S5: large web company: service type in last nybbles (§5.2)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A00B4C0)),
            # Many /64s drawn from a dense-ish block.
            Field("subnet", 8, parts.mixture([
                (0.7, parts.uniform_range(0x10000000, 0x1000FFFF)),
                (0.3, parts.uniform_range(0x20000000, 0x20007FFF)),
            ])),
            Field("zero", 12, parts.constant(0)),
            # The last 2-4 nybbles identify the service / content type.
            Field("service", 4, parts.zipf_pool(24, 4, seed=51, exponent=1.1)),
        ]
    )
    return SyntheticNetwork(
        name="S5",
        category="server",
        description="web company: service type encoded in last nybbles "
        "across many /64s",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.9,
        rdns_rate=0.6,
    )


# ----------------------------------------------------------------------
# routers
# ----------------------------------------------------------------------


def build_r1(population_size: int = 30_000) -> SyntheticNetwork:
    """R1: carrier, prefixes in bits 28-64, IIDs ::1/::2 (§5.3)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A010C80)),
            Field("pop", 4, parts.zipf_pool(150, 4, seed=61, exponent=1.05)),
            Field("link", 4, parts.uniform_range(0x000, 0xFFF)),
            Field("zero", 15, parts.constant(0)),
            Field("iid", 1, parts.point_to_point_iid((1, 2), (0.55, 0.45))),
        ]
    )
    return SyntheticNetwork(
        name="R1",
        category="router",
        description="global carrier: point-to-point ::1/::2 IIDs",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.9,
        rdns_rate=0.7,
    )


def build_r2(population_size: int = 20_000) -> SyntheticNetwork:
    """R2: carrier with the R1 pattern but a sparser prefix plan (§5.3)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A02A9E0)),
            Field("pop", 6, parts.zipf_pool(300, 6, seed=71, exponent=0.9)),
            Field("link", 2, parts.uniform_range(0x00, 0x7F)),
            Field("zero", 15, parts.constant(0)),
            Field("iid", 1, parts.point_to_point_iid((1, 2), (0.6, 0.4))),
        ]
    )
    return SyntheticNetwork(
        name="R2",
        category="router",
        description="carrier: ::1/::2 IIDs, sparser prefix plan",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.85,
        rdns_rate=0.2,
    )


def build_r3(population_size: int = 20_000) -> SyntheticNetwork:
    """R3: zero-dominated bits 48-116, last 12 bits pseudo-random (§5.3)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A0301F0)),
            Field("pop", 4, parts.zipf_pool(600, 4, seed=81, exponent=1.0)),
            Field("zero", 17, parts.constant(0)),
            Field("tail", 3, parts.uniform(3)),
        ]
    )
    return SyntheticNetwork(
        name="R3",
        category="router",
        description="carrier: zero-dominated pattern, 12 random tail bits",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.8,
        rdns_rate=0.8,
    )


def build_r4(population_size: int = 15_000) -> SyntheticNetwork:
    """R4: IID encodes literal IPv4 in base-10 words (§5.3)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A058F00)),
            Field("pop", 4, parts.pool(40, 4, seed=91, high=0x3FF)),
            Field("zero", 4, parts.constant(0)),
            Field("iid", 16, parts.ipv4_decimal_words_iid(
                (10,), second_max=0, third_max=31,
            )),
        ]
    )
    return SyntheticNetwork(
        name="R4",
        category="router",
        description="carrier: IPv4 literals as base-10 octets in the IID",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.9,
        rdns_rate=0.6,
    )


def build_r5(population_size: int = 3_000) -> SyntheticNetwork:
    """R5: discrimination mostly in bits 52-64 (§5.3)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A07B600)),
            Field("zero", 5, parts.constant(0)),
            Field("area", 3, parts.uniform_range(0x000, 0xDFF)),
            Field("zero2", 14, parts.constant(0)),
            Field("iid", 2, parts.mixture([
                (0.35, parts.point_to_point_iid((1, 2), (0.5, 0.5))),
                (0.65, parts.uniform_range(0x00, 0xFE)),
            ])),
        ]
    )
    return SyntheticNetwork(
        name="R5",
        category="router",
        description="carrier: discriminates in bits 52-64, predictable "
        "bottom bits",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.75,
        rdns_rate=0.3,
    )


# ----------------------------------------------------------------------
# clients
# ----------------------------------------------------------------------


def _privacy_iid_high(nybbles: int, clear_bit: Optional[int] = None):
    """Uniform field with one optional forced-zero bit (u-bit handling)."""
    cardinality = 16 ** nybbles

    def sample(rng: np.random.Generator, context: Dict) -> int:
        value = int(rng.integers(0, cardinality))
        if clear_bit is not None:
            value &= ~(1 << clear_bit)
        return value

    return sample


def build_c1(population_size: int = 120_000) -> SyntheticNetwork:
    """C1: mobile ISP with the Android IID pattern (§5.4, Fig. 10).

    47% of addresses: D (bits 64-84) = 00000, E's first nybble = 0,
    F (bits 120-128) = 01 — all jointly, so D, E and F are statistically
    dependent exactly as the BN in Fig. 10(b) discovers.  The remaining
    53% use pseudo-random privacy IIDs.
    """
    pattern = "c1_android"
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A009E40)),
            # B and C (bits 32-64) discriminate prefixes from dense
            # gateway pools; B takes only lower values (§5.4).  The
            # pool sizes set the /64 density that Table 6's C1 row
            # (5.4% prediction success) depends on.
            Field("B", 4, parts.uniform_range(0x0000, 0x08FF)),
            Field("C", 4, parts.uniform_range(0x0000, 0x03FF)),
            # D (bits 64-84, 5 nybbles, contains the u-bit at bit 70 =
            # D's bit 13).
            Field("D", 5, parts.select(pattern, [
                (0.47, "android", parts.constant(0x00000)),
                (0.53, "privacy", _privacy_iid_high(5, clear_bit=13)),
            ])),
            # E (bits 84-120): android → first nybble 0; privacy → random.
            Field("E", 9, parts.switch(pattern, {
                "android": parts.uniform_range(0, 16 ** 8 - 1),
                "privacy": parts.uniform(9),
            })),
            # F (bits 120-128): android → the 01 suffix.
            Field("F", 2, parts.switch(pattern, {
                "android": parts.constant(0x01),
                "privacy": parts.uniform(2),
            })),
        ]
    )
    return SyntheticNetwork(
        name="C1",
        category="client",
        description="mobile ISP: 47% Android ...01 IID pattern, rest "
        "privacy addresses",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.0,  # clients do not answer unsolicited pings
        rdns_rate=0.0,
    )


def build_c2(population_size: int = 80_000) -> SyntheticNetwork:
    """C2: mobile ISP, sparse /64 plan (hard to predict, Table 6: 1.1%)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A02F7C0)),
            Field("net", 8, parts.pool(40_000, 8, seed=102, high=0x00FFFFFF)),
            # No SLAAC u-bit dip: mobile gateways hand out full-random
            # IIDs (the paper notes C2 lacks the 68-72 dip).
            Field("iid", 16, parts.uniform(16)),
        ]
    )
    return SyntheticNetwork(
        name="C2",
        category="client",
        description="mobile ISP: sparse /64 plan, full-random IIDs",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.0,
        rdns_rate=0.0,
    )


def build_c3(population_size: int = 80_000) -> SyntheticNetwork:
    """C3: wired ISP, very sparse static /64 plan (Table 6: 0.83%)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A0005C0)),
            Field("net", 8, parts.pool(60_000, 8, seed=103, high=0x0FFFFFFF)),
            Field("iid", 16, parts.privacy_iid()),
        ]
    )
    return SyntheticNetwork(
        name="C3",
        category="client",
        description="wired ISP: sparse static /64s, privacy IIDs",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.0,
        rdns_rate=0.0,
    )


def build_c4(population_size: int = 100_000) -> SyntheticNetwork:
    """C4: wired ISP, moderately dense /64 pools (Table 6: 12%)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A028840)),
            Field("net", 8, parts.mixture([
                (0.7, parts.uniform_range(0x00100000, 0x0017FFFF)),
                (0.3, parts.uniform_range(0x01000000, 0x0103FFFF)),
            ])),
            Field("iid", 16, parts.privacy_iid()),
        ]
    )
    return SyntheticNetwork(
        name="C4",
        category="client",
        description="wired ISP: dynamic /64 pools with dense blocks",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.0,
        rdns_rate=0.0,
    )


def build_c5(population_size: int = 120_000) -> SyntheticNetwork:
    """C5: wired ISP, dense /64 blocks (Table 6: 20%, the easiest)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x2A01E340)),
            Field("net", 8, parts.uniform_range(0x00040000, 0x0008FFFF)),
            Field("iid", 16, parts.privacy_iid()),
        ]
    )
    return SyntheticNetwork(
        name="C5",
        category="client",
        description="wired ISP: dense dynamic /64 blocks",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.0,
        rdns_rate=0.0,
    )


def build_japanese_telco(population_size: int = 24_000) -> SyntheticNetwork:
    """The Fig. 1 running example: a Japanese telco's client /40.

    Segment J (bits ~64-108) equals a string of zeros for 60% of the
    addresses; that choice is correlated with segment C (= 10) and H
    (= 0), which is exactly the dependency structure Fig. 2 / Table 2
    analyze.
    """
    plan = "jp_plan"
    scheme = AddressScheme(
        [
            Field("plen32", 8, parts.constant(0x24047A00)),
            Field("B", 2, parts.constant(0x00)),
            Field("C", 2, parts.select(plan, [
                (0.60, "static", parts.constant(0x10)),
                (0.40, "dynamic", parts.weighted(
                    [0x22, 0x20, 0x21], [0.4, 0.35, 0.25]
                )),
            ])),
            Field("D", 1, parts.weighted(
                [0, 1, 3, 2, 4, 5, 7, 0xD], [25, 20, 15, 12, 10, 8, 6, 4]
            )),
            Field("E", 1, parts.weighted(
                [0, 1, 6, 2, 5, 3, 0xD], [30, 20, 14, 12, 10, 8, 6]
            )),
            Field("F", 1, parts.switch(plan, {
                "static": parts.weighted([3, 5, 4, 8, 0, 0xF], [30, 25, 20, 12, 8, 5]),
                "dynamic": parts.weighted([0, 1, 0xD, 9, 5, 2, 0xF], [25, 20, 15, 12, 10, 10, 8]),
            })),
            Field("G", 1, parts.weighted(
                [0, 8, 1, 5, 9, 2, 0xF], [30, 20, 15, 12, 10, 8, 5]
            )),
            Field("H", 1, parts.switch(plan, {
                "static": parts.constant(0),
                "dynamic": parts.weighted([8, 1, 5, 9, 2, 0xF], [40, 15, 15, 12, 10, 8]),
            })),
            Field("I", 1, parts.switch(plan, {
                "static": parts.constant(0),
                "dynamic": parts.uniform(1),
            })),
            Field("J", 11, parts.switch(plan, {
                "static": parts.constant(0),
                "dynamic": parts.uniform(11),
            })),
            # K renders as the flat 000-fff range of Fig. 1(b).
            Field("K", 3, parts.uniform_range(0x000, 0xFFF)),
        ]
    )
    return SyntheticNetwork(
        name="JP",
        category="client",
        description="Japanese telco /40 (Fig. 1): J=zeros at 60%, "
        "dependent on C and H",
        scheme=scheme,
        population_size=population_size,
        ping_rate=0.0,
        rdns_rate=0.0,
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_BUILDERS: Dict[str, Callable[[], SyntheticNetwork]] = {
    "S1": build_s1,
    "S2": build_s2,
    "S3": build_s3,
    "S4": build_s4,
    "S5": build_s5,
    "R1": build_r1,
    "R2": build_r2,
    "R3": build_r3,
    "R4": build_r4,
    "R5": build_r5,
    "C1": build_c1,
    "C2": build_c2,
    "C3": build_c3,
    "C4": build_c4,
    "C5": build_c5,
    "JP": build_japanese_telco,
}


def build_network(name: str) -> SyntheticNetwork:
    """Build a named network model (S1-S5, R1-R5, C1-C5, JP)."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown network {name!r}; known: {sorted(_BUILDERS)}")
    return _BUILDERS[name]()


def all_networks() -> List[SyntheticNetwork]:
    """All 16 network models."""
    return [build_network(name) for name in _BUILDERS]


def server_networks() -> List[SyntheticNetwork]:
    """S1-S5."""
    return [build_network(f"S{i}") for i in range(1, 6)]


def router_networks() -> List[SyntheticNetwork]:
    """R1-R5."""
    return [build_network(f"R{i}") for i in range(1, 6)]


def client_networks() -> List[SyntheticNetwork]:
    """C1-C5."""
    return [build_network(f"C{i}") for i in range(1, 6)]
