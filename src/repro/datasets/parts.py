"""Sampler building blocks for synthetic address schemes.

Each helper returns a :data:`repro.datasets.schema.Sampler` — a callable
``(rng, context) -> int`` — covering the addressing practices the paper
observes in the wild: constants, weighted pools, dense ranges, sequential
low-byte assignment, Modified EUI-64 from vendor MAC pools, RFC 4941
privacy IIDs, and the two styles of embedded IPv4 (§5.2, §5.3).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.datasets.schema import Sampler
from repro.ipv6.eui64 import U_BIT, iid_from_ipv4_decimal_words, iid_from_mac


def constant(value: int) -> Sampler:
    """Always the same value (zero-entropy field)."""

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return value

    return sample


def uniform(nybbles: int) -> Sampler:
    """Uniformly random over the field's full range."""
    bits = 4 * nybbles

    def sample(rng: np.random.Generator, context: Dict) -> int:
        # Compose from 32-bit halves: 16-nybble fields need the full
        # 64-bit range, which overflows numpy's int64 bounds check.
        value = 0
        remaining = bits
        while remaining > 0:
            chunk = min(32, remaining)
            value = (value << chunk) | int(rng.integers(0, 1 << chunk))
            remaining -= chunk
        return value

    return sample


def uniform_range(low: int, high: int) -> Sampler:
    """Uniform over the closed range [low, high] (a dense block)."""
    if low > high:
        raise ValueError("low must be <= high")

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(rng.integers(low, high, endpoint=True))

    return sample


def weighted(values: Sequence[int], weights: Sequence[float]) -> Sampler:
    """Weighted choice from a fixed pool (popular values, Table 3 style)."""
    array = np.asarray(values, dtype=np.uint64)
    probabilities = np.asarray(weights, dtype=np.float64)
    if len(array) != len(probabilities):
        raise ValueError("values and weights must have equal length")
    probabilities = probabilities / probabilities.sum()

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(rng.choice(array, p=probabilities))

    return sample


def pool(size: int, nybbles: int, seed: int, low: int = 0, high: int = None) -> Sampler:
    """Uniform choice from a *fixed random pool* of ``size`` values.

    Models operators that deployed a finite, arbitrary set of
    discriminators (subnets, service ids).  The pool itself is derived
    deterministically from ``seed`` so populations are reproducible.
    """
    cardinality = 16 ** nybbles
    if high is None:
        high = cardinality - 1
    pool_rng = np.random.default_rng(seed)
    values = pool_rng.integers(low, high, size=size, endpoint=True, dtype=np.uint64)

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(values[rng.integers(0, len(values))])

    return sample


def zipf_pool(size: int, nybbles: int, seed: int, exponent: float = 1.3) -> Sampler:
    """Fixed pool with Zipf-distributed popularity (heavy-hitter values)."""
    cardinality = 16 ** nybbles
    pool_rng = np.random.default_rng(seed)
    values = pool_rng.integers(0, cardinality, size=size, dtype=np.uint64)
    ranks = np.arange(1, size + 1, dtype=np.float64)
    probabilities = ranks ** (-exponent)
    probabilities /= probabilities.sum()

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(values[rng.choice(size, p=probabilities)])

    return sample


def sequential_low(limit: int) -> Sampler:
    """Low assignment counter: mostly-small values (static server IDs).

    Draws geometric-ish small integers below ``limit``, reproducing the
    "steady increase in entropy from bit 80 to 128" of server addressing
    (Fig. 6): low-order nybbles vary, high-order ones rarely do.
    """

    def sample(rng: np.random.Generator, context: Dict) -> int:
        # Mixture of scales: most values tiny, a tail up to limit.
        magnitude = rng.random()
        if magnitude < 0.5:
            bound = min(16, limit)
        elif magnitude < 0.85:
            bound = min(256, limit)
        else:
            bound = limit
        return int(rng.integers(0, bound))

    return sample


def select(key: str, options: Sequence[Tuple[float, object, Sampler]]) -> Sampler:
    """Draw a variant tag AND this field's value.

    ``options`` are (weight, tag, sampler) triples; the drawn tag lands
    in ``context[key]`` so later fields can :func:`switch` on it.
    """
    weights = np.asarray([w for w, _, _ in options], dtype=np.float64)
    weights /= weights.sum()
    tags = [t for _, t, _ in options]
    samplers = [s for _, _, s in options]

    def sample(rng: np.random.Generator, context: Dict) -> int:
        index = int(rng.choice(len(tags), p=weights))
        context[key] = tags[index]
        return int(samplers[index](rng, context))

    return sample


def switch(key: str, cases: Dict[object, Sampler]) -> Sampler:
    """Dispatch on a tag previously stored by :func:`select`."""

    def sample(rng: np.random.Generator, context: Dict) -> int:
        tag_value = context.get(key)
        if tag_value not in cases:
            raise KeyError(
                f"context[{key!r}] = {tag_value!r} has no case"
            )
        return int(cases[tag_value](rng, context))

    return sample


def mixture(options: Sequence[Tuple[float, Sampler]]) -> Sampler:
    """Weighted mixture of samplers (no tag recorded)."""
    weights = np.asarray([w for w, _ in options], dtype=np.float64)
    weights /= weights.sum()
    samplers = [s for _, s in options]

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(samplers[int(rng.choice(len(samplers), p=weights))](rng, context))

    return sample


def copy_field(name: str) -> Sampler:
    """Repeat the value another field already drew."""

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(context[name])  # type: ignore[arg-type]

    return sample


# ----------------------------------------------------------------------
# 64-bit interface-identifier samplers (16-nybble fields)
# ----------------------------------------------------------------------


def privacy_iid() -> Sampler:
    """RFC 4941 temporary IID: 64 random bits with the u-bit forced to 0.

    The fixed u-bit is what causes the entropy ~0.75 (not 1.0) of address
    bits 68-72 that Fig. 6 discusses.
    """

    mask = ~U_BIT & 0xFFFFFFFFFFFFFFFF

    def sample(rng: np.random.Generator, context: Dict) -> int:
        value = (int(rng.integers(0, 1 << 32)) << 32) | int(rng.integers(0, 1 << 32))
        return value & mask

    return sample


def eui64_iid(oui_pool: Sequence[int] = None, seed: int = 0) -> Sampler:
    """Modified EUI-64 IID from a vendor OUI pool + random NIC suffix.

    Reproduces the ``ff:fe`` filler at address bits 88-104 and the
    u-bit=1 dip at bits 68-72 (Fig. 6 routers / BitTorrent clients).
    """
    if oui_pool is None:
        pool_rng = np.random.default_rng(seed)
        oui_pool = [int(v) for v in pool_rng.integers(0, 1 << 24, size=12)]
        # Clear the u/l and group bits so these look like real vendor OUIs.
        oui_pool = [v & ~0x030000 for v in oui_pool]
    ouis = list(oui_pool)

    def sample(rng: np.random.Generator, context: Dict) -> int:
        oui = ouis[int(rng.integers(0, len(ouis)))]
        nic = int(rng.integers(0, 1 << 24))
        return iid_from_mac((oui << 24) | nic)

    return sample


def point_to_point_iid(values: Sequence[int] = (1, 2), weights: Sequence[float] = None) -> Sampler:
    """Router point-to-point IIDs: a string of zeros ending in 1 or 2 (§5.3)."""
    return weighted(list(values), weights or [1.0] * len(values))


def ipv4_decimal_words_iid(
    first_octet_pool: Sequence[int] = (10, 172, 192),
    second_max: int = 255,
    third_max: int = 255,
    fourth_max: int = 255,
) -> Sampler:
    """R4-style IID: literal IPv4 written as base-10 octets per word.

    ``second_max``/``fourth_max`` bound the inner octets, modeling the
    dense internal numbering real router estates use (without it the
    IPv4 space is so sparse that no generator could rediscover it).
    """
    firsts = list(first_octet_pool)

    def sample(rng: np.random.Generator, context: Dict) -> int:
        first = firsts[int(rng.integers(0, len(firsts)))]
        second = int(rng.integers(0, second_max + 1))
        third = int(rng.integers(0, third_max + 1))
        fourth = int(rng.integers(0, fourth_max + 1))
        value = (first << 24) | (second << 16) | (third << 8) | fourth
        return iid_from_ipv4_decimal_words(value)

    return sample


def ipv4_hex_low32() -> Sampler:
    """S1-style embedded IPv4: hex octets in the low 32 bits of an 8-nybble
    field (pair with structured upper fields)."""

    def sample(rng: np.random.Generator, context: Dict) -> int:
        return int(rng.integers(0, 1 << 32))

    return sample
