"""Aggregate datasets AS, AR, AC and AT (Section 3 / Fig. 6).

The paper's aggregates pool many operators per category; their entropy
profiles (Fig. 6) show the category-level artifacts:

- servers (AS): oscillating entropy, low overall randomness, entropy
  rising from bit 80 toward 128 (low-order static assignment);
- routers (AR): a dip at bits 68-72 and a deeper drop to ~0.5 at bits
  88-104 (a fraction of Modified EUI-64 IIDs);
- CDN clients (AC): near-1 IID entropy with ~0.8 at bits 68-72
  (mixture of privacy addresses and other IID types);
- BitTorrent clients (AT): like AC but with more EUI-64, visible at
  bits 88-104.

We build each aggregate as a stratified mixture: category schemes with
the /32 replaced by a per-operator pool, plus category-specific IID
mixtures calibrated to those Fig. 6 features.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import parts
from repro.datasets.schema import AddressScheme, Field
from repro.ipv6.sets import AddressSet

#: Number of synthetic operators (/32s) per aggregate.
DEFAULT_OPERATORS = 48


def _operator_prefixes(count: int, seed: int) -> parts.Sampler:
    """A pool of distinct /32 values standing in for many operators."""
    return parts.pool(count, 8, seed=seed, low=0x20010000, high=0x2A0FFFFF)


def build_aggregate_servers(
    n: int = 40_000, seed: int = 1, operators: int = DEFAULT_OPERATORS
) -> AddressSet:
    """AS: server aggregate with oscillating, low entropy."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, _operator_prefixes(operators, seed=1001)),
            Field("site", 4, parts.zipf_pool(300, 4, seed=1002)),
            Field("subnet", 4, parts.mixture([
                (0.5, parts.constant(0)),
                (0.5, parts.uniform_range(0x0, 0xFF)),
            ])),
            Field("zero", 8, parts.constant(0)),
            # Static low-order assignment: entropy grows toward bit 128.
            Field("host", 8, parts.sequential_low(1 << 28)),
        ]
    )
    rng = np.random.default_rng(seed)
    return AddressSet.from_ints(
        scheme.generate(n, rng), width=32, already_truncated=True
    )


def build_aggregate_routers(
    n: int = 40_000, seed: int = 2, operators: int = DEFAULT_OPERATORS
) -> AddressSet:
    """AR: router aggregate with partial EUI-64 (dip at bits 88-104)."""
    scheme = AddressScheme(
        [
            Field("plen32", 8, _operator_prefixes(operators, seed=2001)),
            Field("net", 8, parts.mixture([
                (0.6, parts.uniform_range(0x0, 0xFFFF)),
                (0.4, parts.zipf_pool(500, 8, seed=2002)),
            ])),
            # IID mixture: ~40% EUI-64 (fffe at 88-104, u=1), ~35%
            # point-to-point low values, ~25% operator-specific random.
            Field("iid", 16, parts.mixture([
                (0.40, parts.eui64_iid(seed=2003)),
                (0.35, parts.point_to_point_iid((1, 2, 3), (0.5, 0.35, 0.15))),
                (0.25, parts.uniform(16)),
            ])),
        ]
    )
    rng = np.random.default_rng(seed)
    return AddressSet.from_ints(
        scheme.generate(n, rng), width=32, already_truncated=True
    )


def build_aggregate_clients(
    n: int = 40_000, seed: int = 3, operators: int = DEFAULT_OPERATORS
) -> AddressSet:
    """AC: CDN-observed client aggregate (mostly privacy IIDs)."""
    return _client_aggregate(n, seed, operators, eui64_fraction=0.10)


def build_bittorrent_clients(
    n: int = 40_000, seed: int = 4, operators: int = DEFAULT_OPERATORS
) -> AddressSet:
    """AT: BitTorrent peers — more EUI-64 than AC (Fig. 6's 88-104 gap)."""
    return _client_aggregate(n, seed, operators, eui64_fraction=0.40)


def _client_aggregate(
    n: int, seed: int, operators: int, eui64_fraction: float
) -> AddressSet:
    privacy_fraction = 1.0 - eui64_fraction
    scheme = AddressScheme(
        [
            Field("plen32", 8, _operator_prefixes(operators, seed=3001 + seed)),
            Field("net", 8, parts.mixture([
                (0.6, parts.uniform_range(0x0, 0x3FFFFF)),
                (0.4, parts.pool(5000, 8, seed=3002 + seed, high=0x00FFFFFF)),
            ])),
            Field("iid", 16, parts.mixture([
                (privacy_fraction, parts.privacy_iid()),
                (eui64_fraction, parts.eui64_iid(seed=3003 + seed)),
            ])),
        ]
    )
    rng = np.random.default_rng(seed)
    return AddressSet.from_ints(
        scheme.generate(n, rng), width=32, already_truncated=True
    )


def aggregate_by_name(name: str, n: int = 40_000) -> AddressSet:
    """Build AS/AR/AC/AT by name."""
    builders = {
        "AS": build_aggregate_servers,
        "AR": build_aggregate_routers,
        "AC": build_aggregate_clients,
        "AT": build_bittorrent_clients,
    }
    if name not in builders:
        raise KeyError(f"unknown aggregate {name!r}; known: {sorted(builders)}")
    return builders[name](n)
