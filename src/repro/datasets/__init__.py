"""Synthetic dataset substrate (Section 3, Table 1).

The paper trains on proprietary hitlists (CDN logs, DNSDB, Rapid7 FDNS,
rDNS walks, traceroutes, a BitTorrent crawl).  Offline, we substitute
*synthetic network models*: per-dataset address generators that reproduce
every structural phenomenon the paper reports for S1-S5, R1-R5, C1-C5,
the aggregates AS/AR/AC/AT, and the Fig. 1 Japanese-telco client set.
DESIGN.md §2 documents the substitution argument.

- :mod:`repro.datasets.parts` — field samplers (EUI-64, privacy IIDs,
  embedded IPv4, weighted pools, ...);
- :mod:`repro.datasets.schema` — the address-scheme composition DSL;
- :mod:`repro.datasets.networks` — the 16 named network models;
- :mod:`repro.datasets.aggregates` — AS/AR/AC/AT mixtures;
- :mod:`repro.datasets.sampling` — stratified per-/32 sampling (§3).
"""

from repro.datasets.aggregates import (
    build_aggregate_clients,
    build_aggregate_routers,
    build_aggregate_servers,
    build_bittorrent_clients,
)
from repro.datasets.networks import (
    SyntheticNetwork,
    all_networks,
    build_network,
    client_networks,
    router_networks,
    server_networks,
)
from repro.datasets.sampling import stratified_sample
from repro.datasets.schema import AddressScheme, Field
from repro.datasets.temporal import SnapshotSeries, TemporalEvent

__all__ = [
    "AddressScheme",
    "Field",
    "SnapshotSeries",
    "SyntheticNetwork",
    "TemporalEvent",
    "all_networks",
    "build_aggregate_clients",
    "build_aggregate_routers",
    "build_aggregate_servers",
    "build_bittorrent_clients",
    "build_network",
    "client_networks",
    "router_networks",
    "server_networks",
    "stratified_sample",
]
