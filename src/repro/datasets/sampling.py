"""Stratified per-/32 sampling (Section 3).

    "In order to avoid some networks from being over-represented ...
    we used stratified sampling by randomly selecting 1K IPs from the
    /32 prefixes."

Used when analyzing the aggregate datasets (Section 5.1 / Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ipv6.sets import AddressSet


def stratified_sample(
    address_set: AddressSet,
    per_stratum: int = 1000,
    stratum_nybbles: int = 8,
    rng: np.random.Generator = None,
) -> AddressSet:
    """At most ``per_stratum`` random rows from each /32 (or other) stratum.

    ``stratum_nybbles`` selects the stratum width: 8 nybbles = /32, the
    paper's choice.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if per_stratum < 1:
        raise ValueError("per_stratum must be >= 1")
    if not 1 <= stratum_nybbles <= address_set.width:
        raise ValueError(f"invalid stratum width: {stratum_nybbles}")
    strata = address_set.segment_values(1, stratum_nybbles)
    chosen_rows: List[int] = []
    for stratum in np.unique(strata):
        rows = np.nonzero(strata == stratum)[0]
        if len(rows) > per_stratum:
            rows = rng.choice(rows, size=per_stratum, replace=False)
        chosen_rows.extend(int(r) for r in rows)
    chosen_rows.sort()
    return address_set.take(chosen_rows)


def strata_sizes(
    address_set: AddressSet, stratum_nybbles: int = 8
) -> Dict[int, int]:
    """Row count per stratum (e.g. per /32 prefix value)."""
    strata = address_set.segment_values(1, stratum_nybbles)
    values, counts = np.unique(strata, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
