"""A thin, ordered worker pool over ``concurrent.futures``.

Two backends share one interface:

- ``"thread"`` (the default): the shard work units are numpy-heavy
  (BN inverse-CDF sampling, segment decoding, packed-row hashing), and
  numpy releases the GIL inside its kernels, so a thread pool overlaps
  real work without pickling anything across process boundaries.
- ``"process"``: a ``ProcessPoolExecutor`` for work that is bound by
  Python-side time the GIL serializes.  Task functions and arguments
  must be picklable (module-level functions, plain-data payloads); the
  sharded engine ships each shard's packed-uint64 words back as
  pickled numpy arrays and merges them in shard order on the caller's
  thread, so the output contract is backend-independent.

The executor is **long-lived**: it is created lazily on the first
parallel ``map`` and reused by every later call until :meth:`close`
(PRs before this one built a fresh ``ThreadPoolExecutor`` per ``map``
— one per oversampling round).  A pool with ``workers <= 1`` degrades
to a plain loop — no executor, no threads — which keeps the serial
path allocation-free and trivially debuggable.

When the process backend cannot start (a sandboxed host without fork/
spawn, an unpicklable task function) the pool falls back to the thread
backend and records it in :attr:`WorkerPool.active_backend` — output
is bit-identical either way, so the fallback can never change results,
only throughput.  ``fallback=False`` raises
:class:`~repro.errors.ExecBackendError` instead.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ExecBackendError
from repro.faults import fault_point

T = TypeVar("T")
R = TypeVar("R")

#: Execution backends a :class:`WorkerPool` can run shards on.
EXEC_BACKENDS = ("thread", "process")

#: Default cap on mid-``map`` executor rebuilds before the pool gives
#: up on the process backend and degrades to threads.
DEFAULT_MAX_RETRIES = 2

#: Base backoff (seconds) between executor rebuilds; doubles each
#: retry.  Small on purpose — a rebuilt pool is ready immediately, the
#: pause only spaces out repeated crashes of a genuinely sick host.
DEFAULT_RETRY_BACKOFF = 0.05

#: Placeholder for a shard result not yet computed (``None`` is a
#: legitimate task result, so identity against a private sentinel).
_PENDING = object()


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers ``len(os.sched_getaffinity(0))`` where the platform has it:
    a cgroup/affinity-restricted container (exactly what CI runs on)
    may be pinned to far fewer cores than ``os.cpu_count()`` reports,
    and sizing a pool past the affinity mask only adds contention.
    Falls back to ``os.cpu_count()`` elsewhere (macOS, Windows).
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms only
            pass
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument into a concrete worker count.

    ``None`` means serial (1); any negative value means "all available
    cores" — measured by :func:`available_cpus`, i.e. the scheduling
    affinity mask where the platform exposes one (``os.cpu_count()``
    ignores cgroup/affinity limits and would oversubscribe restricted
    containers); positive values pass through.  Zero is rejected — a
    pool with no workers cannot make progress.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers == 0:
        raise ValueError("workers must be nonzero (None or 1 means serial)")
    if workers < 0:
        return available_cpus()
    return workers


def resolve_exec_backend(backend: Optional[str]) -> str:
    """Normalize an ``exec_backend`` argument (``None`` = thread)."""
    if backend is None:
        return "thread"
    if backend not in EXEC_BACKENDS:
        raise ExecBackendError(
            f"unknown exec backend {backend!r} (choose from "
            f"{'/'.join(EXEC_BACKENDS)})"
        )
    return backend


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class WorkerPool:
    """Execute tasks across ``workers`` threads or processes, in order.

    ``map`` returns results in input order regardless of completion
    order, and the first task exception propagates to the caller (the
    remaining tasks still run to completion — shard work units are
    side-effect free, so there is nothing to unwind).

    The pool owns one long-lived executor, created lazily and reused
    across ``map`` calls; call :meth:`close` (or use the pool as a
    context manager) to release its threads/processes.  A closed pool
    transparently re-creates the executor if mapped again — close is a
    resource release, not a poison pill.

    ``backend`` picks the executor kind (see :data:`EXEC_BACKENDS`);
    :attr:`active_backend` reports what is actually running, which
    differs from :attr:`backend` only after a process-start failure
    fell back to threads (``fallback=False`` raises
    :class:`~repro.errors.ExecBackendError` instead).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        fallback: bool = True,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    ):
        self.workers = resolve_workers(workers)
        self.backend = resolve_exec_backend(backend)
        self.active_backend = self.backend
        self._fallback = fallback
        self._executor = None
        self._closed = False
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        #: Mid-``map`` executor rebuilds after losing workers in flight.
        self.retries = 0
        #: Process→thread degradations over the pool's lifetime.
        self.degradations = 0

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------

    def _make_executor(self, backend: str):
        if backend == "process":
            import multiprocessing
            import threading
            from concurrent.futures import ProcessPoolExecutor

            # fork is the cheap start method (no re-import, the numpy
            # pages are shared copy-on-write) — but forking a
            # multithreaded parent can copy another thread's held lock
            # into the child permanently locked, a silent deadlock no
            # BrokenProcessPool fallback can catch (and the reason
            # fork-with-threads is deprecated in recent CPython).  The
            # serving/CLI layers here run pools from worker threads, so
            # fork is only safe when this is the sole thread alive;
            # otherwise forkserver forks from a clean single-threaded
            # server process.  Fall back to the platform default where
            # a method is unavailable.
            method = (
                "forkserver" if threading.active_count() > 1 else "fork"
            )
            try:
                context = multiprocessing.get_context(method)
            except ValueError:  # pragma: no cover - non-POSIX only
                context = None
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers)

    def degrade_to_threads(self, cause: BaseException) -> None:
        """Switch :attr:`active_backend` to threads after a process-path
        failure (``cause``), honoring the fallback policy:
        ``fallback=False`` raises
        :class:`~repro.errors.ExecBackendError` instead.  Called
        internally on executor-start/dispatch failures, and by the
        sharded engine when a task payload (e.g. the model) cannot be
        pickled — the same graceful degradation either way."""
        if not self._fallback:
            raise ExecBackendError(
                f"process exec backend failed: {cause}"
            ) from cause
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self.active_backend != "thread":
            self.degradations += 1
        self.active_backend = "thread"

    def _ensure_executor(self):
        if self._executor is None:
            if self.active_backend == "process":
                try:
                    self._executor = self._make_executor("process")
                except (OSError, ValueError, RuntimeError) as exc:
                    self.degrade_to_threads(exc)
            if self._executor is None:
                self._executor = self._make_executor("thread")
            self._closed = False
        return self._executor

    def close(self) -> None:
        """Release the executor's threads/processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether the pool currently holds no live executor."""
        return self._executor is None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the one operation
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if (
            self.active_backend == "process"
            and self._executor is None
            and not _picklable(fn)
        ):
            # A closure-shaped task can never cross a process boundary;
            # degrade before paying for a process pool that could only
            # fail.  (Module-level task functions — the sharded
            # engine's — pass this probe and keep the process path.)
            self.degrade_to_threads(
                pickle.PicklingError(f"task {fn!r} is not picklable")
            )
        self._ensure_executor()
        if self.active_backend == "process":
            return self._map_process(fn, items)
        return list(self._ensure_executor().map(fn, items))

    def _map_process(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        """Process-backend dispatch with mid-run worker-loss recovery.

        Tasks are submitted individually (not ``executor.map``) so that
        when the pool breaks mid-flight — a worker OOM-killed between
        shards, a sandbox revoking fork at first real use — the results
        that *did* complete are kept, the broken executor is rebuilt,
        and only the unfinished items are re-dispatched, up to
        :attr:`max_retries` rebuilds with exponential backoff.  Shard
        tasks are pure functions of their arguments, so a re-dispatch
        returns bit-identical words and the merged output cannot differ
        from a fault-free run.  When retries are exhausted (or an
        argument refuses to pickle, which no rebuild can fix) the pool
        degrades to threads as before — still bit-identical, and still
        raising :class:`~repro.errors.ExecBackendError` under
        ``fallback=False``.
        """
        from concurrent.futures.process import BrokenProcessPool

        results: List = [_PENDING] * len(items)
        for attempt in range(self.max_retries + 1):
            executor = self._ensure_executor()
            if self.active_backend != "process":
                break  # executor restart itself fell back to threads
            pending = [i for i, r in enumerate(results) if r is _PENDING]
            futures = {}
            try:
                for index in pending:
                    fault_point("pool.dispatch")
                    futures[index] = executor.submit(fn, items[index])
                for index in pending:
                    results[index] = futures[index].result()
                return results
            except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
                # Harvest whatever finished before the break — pure
                # tasks make completed results exactly as valid as
                # they would be in a fault-free run.
                for index, future in futures.items():
                    if (
                        results[index] is _PENDING
                        and future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        results[index] = future.result()
                if self._executor is not None:
                    self._executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = None
                unfixable = isinstance(exc, pickle.PicklingError)
                if unfixable or attempt == self.max_retries:
                    self.degrade_to_threads(exc)
                    break
                self.retries += 1
                if self.retry_backoff > 0:
                    time.sleep(self.retry_backoff * (2 ** attempt))
        executor = self._ensure_executor()
        pending = [i for i, r in enumerate(results) if r is _PENDING]
        if pending:
            finished = executor.map(fn, [items[i] for i in pending])
            for index, value in zip(pending, finished):
                results[index] = value
        return results

    def stats(self) -> dict:
        """Operational counters for health reporting: configured vs
        active backend, mid-run retries, and degradations."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "active_backend": self.active_backend,
            "retries": self.retries,
            "degradations": self.degradations,
        }

    def __repr__(self) -> str:
        suffix = (
            f"->{self.active_backend}"
            if self.active_backend != self.backend
            else ""
        )
        return (
            f"WorkerPool(workers={self.workers}, "
            f"backend={self.backend}{suffix})"
        )
