"""A thin, ordered worker pool over ``concurrent.futures``.

Threads, not processes: the shard work units are numpy-heavy (BN
inverse-CDF sampling, segment decoding, packed-row hashing), and numpy
releases the GIL inside its kernels, so a thread pool overlaps real
work without pickling models across process boundaries.  A pool with
``workers <= 1`` degrades to a plain loop — no executor, no threads —
which keeps the serial path allocation-free and trivially debuggable.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument into a concrete thread count.

    ``None`` means serial (1); any negative value means "all available
    cores" (``os.cpu_count()``); positive values pass through.  Zero is
    rejected — a pool with no workers cannot make progress.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers == 0:
        raise ValueError("workers must be nonzero (None or 1 means serial)")
    if workers < 0:
        return os.cpu_count() or 1
    return workers


class WorkerPool:
    """Execute tasks across ``workers`` threads, preserving order.

    ``map`` returns results in input order regardless of completion
    order, and the first task exception propagates to the caller (the
    remaining tasks still run to completion — shard work units are
    side-effect free, so there is nothing to unwind).
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(items))
        ) as executor:
            return list(executor.map(fn, items))

    def __repr__(self) -> str:
        return f"WorkerPool(workers={self.workers})"
