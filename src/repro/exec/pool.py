"""A thin, ordered worker pool over ``concurrent.futures``.

Two backends share one interface:

- ``"thread"`` (the default): the shard work units are numpy-heavy
  (BN inverse-CDF sampling, segment decoding, packed-row hashing), and
  numpy releases the GIL inside its kernels, so a thread pool overlaps
  real work without pickling anything across process boundaries.
- ``"process"``: a ``ProcessPoolExecutor`` for work that is bound by
  Python-side time the GIL serializes.  Task functions and arguments
  must be picklable (module-level functions, plain-data payloads); the
  sharded engine ships each shard's packed-uint64 words back as
  pickled numpy arrays and merges them in shard order on the caller's
  thread, so the output contract is backend-independent.

The executor is **long-lived**: it is created lazily on the first
parallel ``map`` and reused by every later call until :meth:`close`
(PRs before this one built a fresh ``ThreadPoolExecutor`` per ``map``
— one per oversampling round).  A pool with ``workers <= 1`` degrades
to a plain loop — no executor, no threads — which keeps the serial
path allocation-free and trivially debuggable.

When the process backend cannot start (a sandboxed host without fork/
spawn, an unpicklable task function) the pool falls back to the thread
backend and records it in :attr:`WorkerPool.active_backend` — output
is bit-identical either way, so the fallback can never change results,
only throughput.  ``fallback=False`` raises
:class:`~repro.errors.ExecBackendError` instead.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ExecBackendError

T = TypeVar("T")
R = TypeVar("R")

#: Execution backends a :class:`WorkerPool` can run shards on.
EXEC_BACKENDS = ("thread", "process")


def available_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers ``len(os.sched_getaffinity(0))`` where the platform has it:
    a cgroup/affinity-restricted container (exactly what CI runs on)
    may be pinned to far fewer cores than ``os.cpu_count()`` reports,
    and sizing a pool past the affinity mask only adds contention.
    Falls back to ``os.cpu_count()`` elsewhere (macOS, Windows).
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms only
            pass
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument into a concrete worker count.

    ``None`` means serial (1); any negative value means "all available
    cores" — measured by :func:`available_cpus`, i.e. the scheduling
    affinity mask where the platform exposes one (``os.cpu_count()``
    ignores cgroup/affinity limits and would oversubscribe restricted
    containers); positive values pass through.  Zero is rejected — a
    pool with no workers cannot make progress.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers == 0:
        raise ValueError("workers must be nonzero (None or 1 means serial)")
    if workers < 0:
        return available_cpus()
    return workers


def resolve_exec_backend(backend: Optional[str]) -> str:
    """Normalize an ``exec_backend`` argument (``None`` = thread)."""
    if backend is None:
        return "thread"
    if backend not in EXEC_BACKENDS:
        raise ExecBackendError(
            f"unknown exec backend {backend!r} (choose from "
            f"{'/'.join(EXEC_BACKENDS)})"
        )
    return backend


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class WorkerPool:
    """Execute tasks across ``workers`` threads or processes, in order.

    ``map`` returns results in input order regardless of completion
    order, and the first task exception propagates to the caller (the
    remaining tasks still run to completion — shard work units are
    side-effect free, so there is nothing to unwind).

    The pool owns one long-lived executor, created lazily and reused
    across ``map`` calls; call :meth:`close` (or use the pool as a
    context manager) to release its threads/processes.  A closed pool
    transparently re-creates the executor if mapped again — close is a
    resource release, not a poison pill.

    ``backend`` picks the executor kind (see :data:`EXEC_BACKENDS`);
    :attr:`active_backend` reports what is actually running, which
    differs from :attr:`backend` only after a process-start failure
    fell back to threads (``fallback=False`` raises
    :class:`~repro.errors.ExecBackendError` instead).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        fallback: bool = True,
    ):
        self.workers = resolve_workers(workers)
        self.backend = resolve_exec_backend(backend)
        self.active_backend = self.backend
        self._fallback = fallback
        self._executor = None
        self._closed = False

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------

    def _make_executor(self, backend: str):
        if backend == "process":
            import multiprocessing
            import threading
            from concurrent.futures import ProcessPoolExecutor

            # fork is the cheap start method (no re-import, the numpy
            # pages are shared copy-on-write) — but forking a
            # multithreaded parent can copy another thread's held lock
            # into the child permanently locked, a silent deadlock no
            # BrokenProcessPool fallback can catch (and the reason
            # fork-with-threads is deprecated in recent CPython).  The
            # serving/CLI layers here run pools from worker threads, so
            # fork is only safe when this is the sole thread alive;
            # otherwise forkserver forks from a clean single-threaded
            # server process.  Fall back to the platform default where
            # a method is unavailable.
            method = (
                "forkserver" if threading.active_count() > 1 else "fork"
            )
            try:
                context = multiprocessing.get_context(method)
            except ValueError:  # pragma: no cover - non-POSIX only
                context = None
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers)

    def degrade_to_threads(self, cause: BaseException) -> None:
        """Switch :attr:`active_backend` to threads after a process-path
        failure (``cause``), honoring the fallback policy:
        ``fallback=False`` raises
        :class:`~repro.errors.ExecBackendError` instead.  Called
        internally on executor-start/dispatch failures, and by the
        sharded engine when a task payload (e.g. the model) cannot be
        pickled — the same graceful degradation either way."""
        if not self._fallback:
            raise ExecBackendError(
                f"process exec backend failed to start: {cause}"
            ) from cause
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.active_backend = "thread"

    def _ensure_executor(self):
        if self._executor is None:
            if self.active_backend == "process":
                try:
                    self._executor = self._make_executor("process")
                except (OSError, ValueError, RuntimeError) as exc:
                    self.degrade_to_threads(exc)
            if self._executor is None:
                self._executor = self._make_executor("thread")
            self._closed = False
        return self._executor

    def close(self) -> None:
        """Release the executor's threads/processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether the pool currently holds no live executor."""
        return self._executor is None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the one operation
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if (
            self.active_backend == "process"
            and self._executor is None
            and not _picklable(fn)
        ):
            # A closure-shaped task can never cross a process boundary;
            # degrade before paying for a process pool that could only
            # fail.  (Module-level task functions — the sharded
            # engine's — pass this probe and keep the process path.)
            self.degrade_to_threads(
                pickle.PicklingError(f"task {fn!r} is not picklable")
            )
        executor = self._ensure_executor()
        if self.active_backend == "process":
            from concurrent.futures.process import BrokenProcessPool

            try:
                return list(executor.map(fn, items))
            except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
                # Worker start died after construction (resource limits,
                # a sandbox denying fork at first use) or an argument
                # refused to pickle: shard tasks are pure, so a thread
                # retry is safe and bit-identical.
                self.degrade_to_threads(exc)
                executor = self._ensure_executor()
        return list(executor.map(fn, items))

    def __repr__(self) -> str:
        suffix = (
            f"->{self.active_backend}"
            if self.active_backend != self.backend
            else ""
        )
        return (
            f"WorkerPool(workers={self.workers}, "
            f"backend={self.backend}{suffix})"
        )
