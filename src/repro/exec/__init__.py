"""Sharded parallel execution engine for generation and scanning.

The ROADMAP's north star is a system that "runs as fast as the
hardware allows" via sharding and batching.  This package supplies the
machinery:

- :mod:`repro.exec.sharding` — deterministic work decomposition:
  balanced shard sizes and per-shard RNG streams spawned from one
  ``numpy.random.SeedSequence``;
- :mod:`repro.exec.pool` — a thin ordered worker pool over
  ``concurrent.futures`` (serial when ``workers <= 1``);
- :mod:`repro.exec.engine` — the sharded §5.5 drivers:
  :func:`~repro.exec.engine.sharded_generate_set` (the parallel
  counterpart of :meth:`repro.core.model.AddressModel.generate_set`)
  and :func:`~repro.exec.engine.sharded_map_rows` (row-sharded oracle
  scoring).

The design contract throughout: the *decomposition* is fixed by the
``shards`` count and the caller's RNG, and workers only change how the
shards are executed.  ``workers=4`` is therefore bit-identical to
``workers=1`` at the same seed — and the ``"process"`` backend is
bit-identical to the ``"thread"`` default — parallelism is a pure
throughput knob, never a determinism knob.
"""

from repro.exec.engine import (
    DEFAULT_SHARDS,
    sharded_generate_set,
    sharded_map_rows,
)
from repro.exec.pool import (
    EXEC_BACKENDS,
    WorkerPool,
    available_cpus,
    resolve_exec_backend,
    resolve_workers,
)
from repro.exec.sharding import derive_seed_sequence, shard_bounds, shard_sizes

__all__ = [
    "DEFAULT_SHARDS",
    "EXEC_BACKENDS",
    "WorkerPool",
    "available_cpus",
    "derive_seed_sequence",
    "resolve_exec_backend",
    "resolve_workers",
    "shard_bounds",
    "shard_sizes",
    "sharded_generate_set",
    "sharded_map_rows",
]
