"""Deterministic work decomposition for the sharded engine.

Everything here is a pure function of its inputs: the same total and
shard count always produce the same split, and the same caller RNG
always derives the same ``SeedSequence`` (and therefore the same spawned
child streams).  That is what lets the engine promise bit-identical
output for any worker count.
"""

from __future__ import annotations

from typing import List

import numpy as np


def shard_sizes(total: int, shards: int) -> np.ndarray:
    """Balanced deterministic split of ``total`` items into ``shards``.

    The first ``total % shards`` shards get one extra item; sizes sum
    to ``total`` exactly and zero-size shards are legal (a batch
    smaller than the shard count simply leaves trailing shards empty).
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if shards < 1:
        raise ValueError("shards must be positive")
    base, extra = divmod(total, shards)
    sizes = np.full(shards, base, dtype=np.int64)
    sizes[:extra] += 1
    return sizes


def shard_bounds(total: int, shards: int) -> List[tuple]:
    """``(start, stop)`` row ranges matching :func:`shard_sizes`."""
    stops = np.cumsum(shard_sizes(total, shards))
    starts = np.concatenate([[0], stops[:-1]])
    return [(int(a), int(b)) for a, b in zip(starts, stops)]


def derive_seed_sequence(rng: np.random.Generator) -> np.random.SeedSequence:
    """One ``SeedSequence`` derived deterministically from a generator.

    Draws four 64-bit words off the caller's stream as entropy, so the
    derived sequence (and everything spawned from it) is a pure
    function of the generator's state.  Per-shard streams then come
    from ``seed_sequence.spawn(shards)`` — ``spawn`` advances its
    spawn key, so each generation round gets fresh, never-reused child
    streams without any coordination.
    """
    entropy = [int(word) for word in rng.integers(0, 2**63, size=4)]
    return np.random.SeedSequence(entropy)


def spawn_generators(
    seed_sequence: np.random.SeedSequence, shards: int
) -> List[np.random.Generator]:
    """``shards`` independent generators spawned from one sequence."""
    return [
        np.random.default_rng(child) for child in seed_sequence.spawn(shards)
    ]
