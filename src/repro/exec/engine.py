"""The sharded §5.5 drivers: parallel generation and row-sharded scoring.

:func:`sharded_generate_set` is the parallel counterpart of
:meth:`repro.core.model.AddressModel.generate_set`.  Each oversampling
round is split into ``shards`` fixed sub-draws; every shard samples and
decodes with its own ``SeedSequence``-spawned RNG stream, and the shard
outputs are merged *in shard order* into the same growing
:class:`~repro.ipv6.sets.BucketTable` dedup the serial loop uses.  The
decomposition (shard count, shard sizes, shard streams) is a pure
function of the caller's RNG and ``shards`` — workers only decide how
many shards run concurrently, and ``exec_backend`` only decides
*where* they run — so ``workers=N`` output is bit-identical to
``workers=1`` at the same seed, on either backend.

Under ``exec_backend="process"`` each shard task is a module-level
function (:func:`_draw_shard_task`) whose payload carries the pickled
model once per generation call; worker processes unpickle it once and
cache it by content digest, so steady-state rounds ship only the shard
size and its ``SeedSequence`` across the boundary, and each shard
ships back its packed-uint64 word array (fused path) or its
``(matrix, words)`` pair (two-step path) as pickled numpy buffers,
merged in shard order on the caller's thread.

Zero-size shards (a batch smaller than ``shards``) are never
dispatched: skipping an empty shard is output-neutral because each
shard's RNG stream is independent and an empty shard contributes no
rows — and the task itself short-circuits ``size == 0`` to
correctly-shaped empty arrays without touching its RNG, so the path
is explicitly safe on the fused route, the two-step route, and both
backends.

:func:`sharded_map_rows` is the scoring-side helper: it splits a row
range into contiguous chunks and runs a pure per-chunk function across
the pool, concatenating in order.  Oracle masks are pure per-row
functions, so this is trivially exact for any worker count.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.exec.pool import WorkerPool, resolve_exec_backend
from repro.exec.sharding import (
    derive_seed_sequence,
    shard_bounds,
    shard_sizes,
)
from repro.faults import fault_point
from repro.ipv6.sets import AddressSet

#: Default shard count per generation round.  Part of the determinism
#: contract: changing ``shards`` changes which RNG stream draws which
#: row (and therefore the output); changing ``workers`` or
#: ``exec_backend`` never does.
DEFAULT_SHARDS = 8

#: Row count below which sharded scoring is not worth the thread
#: handoff; the chunk function runs inline instead.
MIN_ROWS_PER_SHARD = 4096

#: Per-process cache of unpickled models, keyed by content digest of
#: the pickled payload — a worker in a long-lived process pool pays
#: the unpickle once per model, not once per shard.  Bounded so a
#: process serving many models over its lifetime cannot grow without
#: limit.
_MODEL_CACHE: "OrderedDict[str, object]" = OrderedDict()
_MODEL_CACHE_LIMIT = 4


def _cached_model(token: str, payload: bytes):
    model = _MODEL_CACHE.get(token)
    if model is None:
        model = pickle.loads(payload)
        _MODEL_CACHE[token] = model
        while len(_MODEL_CACHE) > _MODEL_CACHE_LIMIT:
            _MODEL_CACHE.popitem(last=False)
    else:
        _MODEL_CACHE.move_to_end(token)
    return model


def _empty_shard(width: int, fused: bool):
    """The well-shaped result of a zero-size shard (no RNG consumed)."""
    words = np.zeros((0, (width + 15) // 16), dtype=np.uint64)
    if fused:
        return None, words
    return np.zeros((0, width), dtype=np.uint8), words


def _draw_shard_task(args):
    """One shard's draw, shaped for the process boundary.

    ``args`` is ``(token, payload, use_fused, resolved, size, child,
    call_index, shard_index)``: everything is plain picklable data, and
    the function is module-level, so a ``ProcessPoolExecutor`` can ship
    it.  The same function runs unchanged on the thread backend after a
    process-start fallback (the in-process model cache then makes the
    unpickle a one-time cost there too).  The trailing indices identify
    the shard deterministically — call number within the generation
    call, shard position within the round's decomposition — for the
    ``pool.shard`` fault site, regardless of which worker runs it.
    """
    token, payload, use_fused, resolved, size, child, call_index, shard_index = args
    fault_point("pool.shard", call=call_index, shard=shard_index)
    model = _cached_model(token, payload)
    if size == 0:
        return _empty_shard(model.encoder.width, use_fused)
    rng = np.random.default_rng(child)
    if use_fused:
        from repro.bayes.sampling import sample_packed

        # fused_plan() is a cached pure function of the encoder, so
        # recomputing it worker-side is cheaper (and simpler) than
        # pickling the plan's pre-shifted tables with every payload.
        plan = model.encoder.fused_plan()
        return None, sample_packed(model.network, plan, size, rng)
    codes = model.sample_codes(size, rng, resolved)
    decoded = model.encoder.decode_to_set(codes, rng, validate=False)
    return decoded.matrix, decoded.packed_rows()


def sharded_generate_set(
    model,
    n: int,
    rng: np.random.Generator,
    evidence=None,
    exclude=None,
    max_batches: int = 64,
    workers: int = 1,
    shards: Optional[int] = None,
    state=None,
    fused: Optional[bool] = None,
    exec_backend: Optional[str] = None,
) -> AddressSet:
    """Generate ``n`` distinct candidate rows across a worker pool.

    See :meth:`repro.core.model.AddressModel.generate_set` for the
    contract; this is the engine behind its ``workers=``/``shards=``/
    ``exec_backend=`` parameters.  Both paths run the one shared round
    loop (:func:`~repro.core.model.run_generation_rounds`) — identical
    oversampling policy, saturation guard and first-occurrence
    semantics — and differ only in how each batch is drawn.  ``state``
    (a persistent :class:`~repro.core.model.GenerationSession`) is
    shared with the serial path: shard outputs merge into the session
    in shard order on the caller's thread, so worker count still never
    changes the output or the session's final contents.  A session also
    owns the pool: repeated calls against one session reuse one
    long-lived executor per ``(workers, exec_backend)`` instead of
    re-spawning threads/processes per call (the session's ``close``
    releases them); stateless calls own a pool for the call and close
    it on the way out.

    ``fused`` follows the serial path's semantics: by default each
    shard runs :func:`~repro.bayes.sampling.sample_packed` against its
    own spawned stream when the encoder has a fused plan and there is
    no evidence (each shard's fused draw is bit-identical to its
    two-step draw, so the merged output — and the ``workers=N`` ≡
    ``workers=1`` promise — is unchanged); ``fused=False`` forces the
    two-step reference in every shard.

    ``exec_backend`` picks where shards execute (``"thread"`` default,
    ``"process"`` for real multi-core scaling); it is a pure throughput
    knob — the decomposition above never depends on it, so thread and
    process output is bit-identical.  A process pool that cannot start
    falls back to threads (see :class:`~repro.exec.pool.WorkerPool`).
    """
    from repro.bayes.sampling import sample_packed
    from repro.core.model import run_generation_rounds

    if n < 0:
        raise ValueError("n must be non-negative")
    shards = DEFAULT_SHARDS if shards is None else int(shards)
    if shards < 1:
        raise ValueError("shards must be positive")
    resolved = model.normalize_evidence(evidence) if evidence else None
    plan = (
        model.encoder.fused_plan()
        if fused is not False and not resolved
        else None
    )
    width = model.encoder.width
    seed_sequence = derive_seed_sequence(rng)
    backend = resolve_exec_backend(exec_backend)
    if state is not None and hasattr(state, "get_pool"):
        pool = state.get_pool(workers, backend)
        owns_pool = False
    else:
        pool = WorkerPool(workers, backend=backend)
        owns_pool = True

    payload = None
    if pool.active_backend == "process":
        # One pickle of the model per generation call; shards re-ship
        # the same bytes object (a memcpy) and worker processes cache
        # the unpickled model by content digest.  A model that cannot
        # cross the process boundary degrades to the thread task form
        # like every other process-path failure (ExecBackendError when
        # the pool was built with fallback=False) instead of raising
        # raw out of the one spot the fallback machinery didn't cover.
        try:
            payload = pickle.dumps(model)
        except Exception as exc:
            pool.degrade_to_threads(exc)

    if payload is not None:
        token = hashlib.sha1(payload).hexdigest()

        def make_task(size: int, child, call_index: int, shard_index: int):
            return (
                token, payload, plan is not None, resolved, size, child,
                call_index, shard_index,
            )

        task_fn = _draw_shard_task
    else:

        def make_task(size: int, child, call_index: int, shard_index: int):
            return (size, child, call_index, shard_index)

        def task_fn(args):
            size, child, call_index, shard_index = args
            fault_point("pool.shard", call=call_index, shard=shard_index)
            if size == 0:
                return _empty_shard(width, plan is not None)
            shard_rng = np.random.default_rng(child)
            if plan is not None:
                return None, sample_packed(
                    model.network, plan, size, shard_rng
                )
            codes = model.sample_codes(size, shard_rng, resolved)
            decoded = model.encoder.decode_to_set(
                codes, shard_rng, validate=False
            )
            return decoded.matrix, decoded.packed_rows()

    call_count = 0

    def draw(batch_size: int) -> "tuple[np.ndarray, np.ndarray]":
        nonlocal call_count
        call_index = call_count
        call_count += 1
        sizes = shard_sizes(batch_size, shards)
        children = seed_sequence.spawn(shards)
        # Empty shards are skipped, not dispatched: their streams are
        # independent and they contribute zero rows, so the merged
        # output is unchanged — and no worker ever sees size == 0.
        tasks = [
            make_task(int(size), child, call_index, shard_index)
            for shard_index, (size, child) in enumerate(zip(sizes, children))
            if size > 0
        ]
        if not tasks:
            return _empty_shard(width, plan is not None)
        parts = pool.map(task_fn, tasks)
        words = np.vstack([part[1] for part in parts])
        if plan is not None:
            return None, words
        matrix = np.vstack([part[0] for part in parts])
        return matrix, words

    try:
        return run_generation_rounds(
            width,
            n,
            draw,
            exclude=exclude,
            max_batches=max_batches,
            constrained=bool(evidence),
            state=state,
        )
    finally:
        if owns_pool:
            pool.close()


def sharded_map_rows(
    fn,
    n_rows: int,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    exec_backend: Optional[str] = None,
):
    """Run ``fn(start, stop)`` over contiguous row chunks; concatenate.

    ``fn`` must be a pure function of its row range returning a 1-D or
    2-D array of ``stop - start`` rows (an oracle mask, match
    positions, ...).  With one worker — or too few rows to be worth
    the handoff — the single full-range call runs inline, so serial
    callers pay nothing.  ``exec_backend="process"`` applies only when
    ``fn`` is picklable (a module-level function); the closure-shaped
    oracle scorers degrade to the thread backend automatically, which
    is output-neutral.
    """
    pool = WorkerPool(workers, backend=exec_backend)
    if shards is None:
        shards = pool.workers
    if (
        pool.workers <= 1
        or shards <= 1
        or n_rows < 2 * MIN_ROWS_PER_SHARD
    ):
        return fn(0, n_rows)
    try:
        bounds = shard_bounds(n_rows, shards)
        parts = pool.map(lambda span: fn(span[0], span[1]), bounds)
        return np.concatenate(parts)
    finally:
        pool.close()
