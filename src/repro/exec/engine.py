"""The sharded §5.5 drivers: parallel generation and row-sharded scoring.

:func:`sharded_generate_set` is the parallel counterpart of
:meth:`repro.core.model.AddressModel.generate_set`.  Each oversampling
round is split into ``shards`` fixed sub-draws; every shard samples and
decodes with its own ``SeedSequence``-spawned RNG stream, and the shard
outputs are merged *in shard order* into the same growing
:class:`~repro.ipv6.sets.BucketTable` dedup the serial loop uses.  The
decomposition (shard count, shard sizes, shard streams) is a pure
function of the caller's RNG and ``shards`` — workers only decide how
many shards run concurrently — so ``workers=N`` output is bit-identical
to ``workers=1`` at the same seed.

:func:`sharded_map_rows` is the scoring-side helper: it splits a row
range into contiguous chunks and runs a pure per-chunk function across
the pool, concatenating in order.  Oracle masks are pure per-row
functions, so this is trivially exact for any worker count.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exec.pool import WorkerPool
from repro.exec.sharding import (
    derive_seed_sequence,
    shard_bounds,
    shard_sizes,
)
from repro.ipv6.sets import AddressSet

#: Default shard count per generation round.  Part of the determinism
#: contract: changing ``shards`` changes which RNG stream draws which
#: row (and therefore the output); changing ``workers`` never does.
DEFAULT_SHARDS = 8

#: Row count below which sharded scoring is not worth the thread
#: handoff; the chunk function runs inline instead.
MIN_ROWS_PER_SHARD = 4096


def sharded_generate_set(
    model,
    n: int,
    rng: np.random.Generator,
    evidence=None,
    exclude=None,
    max_batches: int = 64,
    workers: int = 1,
    shards: Optional[int] = None,
    state=None,
    fused: Optional[bool] = None,
) -> AddressSet:
    """Generate ``n`` distinct candidate rows across a worker pool.

    See :meth:`repro.core.model.AddressModel.generate_set` for the
    contract; this is the engine behind its ``workers=``/``shards=``
    parameters.  Both paths run the one shared round loop
    (:func:`~repro.core.model.run_generation_rounds`) — identical
    oversampling policy, saturation guard and first-occurrence
    semantics — and differ only in how each batch is drawn.  ``state``
    (a persistent :class:`~repro.core.model.GenerationSession`) is
    shared with the serial path: shard outputs merge into the session
    in shard order on the caller's thread, so worker count still never
    changes the output or the session's final contents.

    ``fused`` follows the serial path's semantics: by default each
    shard runs :func:`~repro.bayes.sampling.sample_packed` against its
    own spawned stream when the encoder has a fused plan and there is
    no evidence (each shard's fused draw is bit-identical to its
    two-step draw, so the merged output — and the ``workers=N`` ≡
    ``workers=1`` promise — is unchanged); ``fused=False`` forces the
    two-step reference in every shard.
    """
    from repro.bayes.sampling import sample_packed
    from repro.core.model import run_generation_rounds

    if n < 0:
        raise ValueError("n must be non-negative")
    shards = DEFAULT_SHARDS if shards is None else int(shards)
    if shards < 1:
        raise ValueError("shards must be positive")
    resolved = model.normalize_evidence(evidence) if evidence else None
    plan = (
        model.encoder.fused_plan()
        if fused is not False and not resolved
        else None
    )
    seed_sequence = derive_seed_sequence(rng)
    pool = WorkerPool(workers)

    def draw_shard(args) -> "tuple[np.ndarray, np.ndarray]":
        size, child = args
        shard_rng = np.random.default_rng(child)
        if plan is not None:
            return None, sample_packed(model.network, plan, size, shard_rng)
        codes = model.sample_codes(size, shard_rng, resolved)
        decoded = model.encoder.decode_to_set(
            codes, shard_rng, validate=False
        )
        return decoded.matrix, decoded.packed_rows()

    def draw(batch_size: int) -> "tuple[np.ndarray, np.ndarray]":
        sizes = shard_sizes(batch_size, shards)
        children = seed_sequence.spawn(shards)
        parts = pool.map(draw_shard, list(zip(sizes, children)))
        words = np.vstack([part[1] for part in parts])
        if plan is not None:
            return None, words
        matrix = np.vstack([part[0] for part in parts])
        return matrix, words

    return run_generation_rounds(
        model.encoder.width,
        n,
        draw,
        exclude=exclude,
        max_batches=max_batches,
        constrained=bool(evidence),
        state=state,
    )


def sharded_map_rows(
    fn,
    n_rows: int,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
):
    """Run ``fn(start, stop)`` over contiguous row chunks; concatenate.

    ``fn`` must be a pure function of its row range returning a 1-D or
    2-D array of ``stop - start`` rows (an oracle mask, match
    positions, ...).  With one worker — or too few rows to be worth
    the handoff — the single full-range call runs inline, so serial
    callers pay nothing.
    """
    pool = WorkerPool(workers)
    if shards is None:
        shards = pool.workers
    if (
        pool.workers <= 1
        or shards <= 1
        or n_rows < 2 * MIN_ROWS_PER_SHARD
    ):
        return fn(0, n_rows)
    bounds = shard_bounds(n_rows, shards)
    parts = pool.map(lambda span: fn(span[0], span[1]), bounds)
    return np.concatenate(parts)
