"""Incrementally maintained sufficient statistics of a growing feed.

The refit contract of the streaming-ingest subsystem is **bit-identity**:
a drift-triggered refit must produce exactly the model a from-scratch
:meth:`~repro.core.pipeline.EntropyIP.fit` would produce on the same
cumulative rows.  :class:`IncrementalStats` makes that cheap without
making it approximate, by exploiting which fit inputs are exactly
decomposable over batches:

- **nybble counts** are integer bincounts, so per-batch
  :func:`~repro.stats.entropy.nybble_counts` sums are *equal* (not just
  close) to one pass over the concatenated matrix, and
  :meth:`IncrementalStats.entropies` evaluates the same float expression
  :func:`~repro.stats.entropy.nybble_entropies` evaluates on them;
- **code chunks** concatenate exactly: the encoder classifies each row
  independently (cached per-segment lookup tables, no cross-row state),
  so encoding batch by batch equals encoding the concatenation;
- **family count tensors** (:class:`~repro.bayes.scores.FamilyStats`)
  are int64 bincounts too, folded per batch via
  :meth:`~repro.bayes.scores.FamilyStats.extend`.

Only the stages that genuinely depend on the joint row set — value
mining and the structure search — run at refit time, on the
materialized cumulative set and the incrementally maintained counts.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.scores import FamilyStats
from repro.core.encoding import AddressEncoder
from repro.ipv6.sets import AddressSet
from repro.stats.entropy import (
    NYBBLE_CARDINALITY,
    entropy_of_count_rows,
    nybble_counts,
)


def variable_code_counts(
    codes: np.ndarray, cardinalities: Sequence[int]
) -> List[np.ndarray]:
    """Per-variable code histograms of a code matrix.

    One int64 count vector per BN variable — the marginal sufficient
    statistics the drift detector compares between the fitted baseline
    and the pending window.
    """
    codes = np.asarray(codes)
    return [
        np.bincount(codes[:, column], minlength=int(card))
        for column, card in enumerate(cardinalities)
    ]


def same_code_mapping(a: AddressEncoder, b: AddressEncoder) -> bool:
    """Whether two encoders classify every address identically.

    True when both have the same segmentation and, per segment, the
    same ordered value elements (code label, low, high, origin) —
    mined *frequencies* are ignored, they annotate but never steer
    classification.  A false negative only costs a re-encode of the
    cumulative set; a false positive would break bit-identity, so the
    comparison is strict everywhere classification looks.
    """
    if len(a.mined_segments) != len(b.mined_segments):
        return False
    for ma, mb in zip(a.mined_segments, b.mined_segments):
        if (
            ma.segment.first_nybble != mb.segment.first_nybble
            or ma.segment.last_nybble != mb.segment.last_nybble
        ):
            return False
        if len(ma.values) != len(mb.values):
            return False
        for va, vb in zip(ma.values, mb.values):
            if (
                va.code != vb.code
                or va.low != vb.low
                or va.high != vb.high
                or va.origin != vb.origin
            ):
                return False
    return True


class IncrementalStats:
    """Cumulative sufficient statistics of everything ingested so far.

    Seeded with the fitted model's training set (and its encoder);
    :meth:`update` folds each arriving batch into the nybble counts,
    the cached per-batch code chunks, and the
    :class:`~repro.bayes.scores.FamilyStats` family counts — all
    integer-exact, so :meth:`entropies`, :meth:`codes` and
    :attr:`family` always equal what a from-scratch pass over
    :meth:`materialize` would compute.
    """

    def __init__(self, address_set: AddressSet, encoder: AddressEncoder):
        if len(address_set) == 0:
            raise ValueError("cannot seed incremental stats with an empty set")
        if address_set.width != encoder.width:
            raise ValueError(
                f"address set width {address_set.width} != encoder width "
                f"{encoder.width}"
            )
        self._width = address_set.width
        self._chunks: List[np.ndarray] = [address_set.matrix]
        self._counts = nybble_counts(address_set).copy()
        self._rows = len(address_set)
        self._encoder = encoder
        codes = encoder.encode_set(address_set)
        self._code_chunks: List[np.ndarray] = [codes]
        self._family = FamilyStats(codes, encoder.cardinalities)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        return self._width

    @property
    def rows(self) -> int:
        """Total rows folded in (training set + every batch)."""
        return self._rows

    @property
    def encoder(self) -> AddressEncoder:
        """The encoder the cached code chunks were classified under."""
        return self._encoder

    @property
    def family(self) -> FamilyStats:
        """The incrementally extended family-count statistics."""
        return self._family

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------

    def update(self, batch: AddressSet) -> Tuple[np.ndarray, np.ndarray]:
        """Fold one batch; returns its ``(nybble_counts, codes)``.

        Integer-exact everywhere: counts add, code chunks append (the
        encoder is row-independent), family counts extend.  The caller
        (the drift detector) reuses the returned per-batch statistics
        so nothing is counted twice.
        """
        if batch.width != self._width:
            raise ValueError(
                f"batch width {batch.width} != feed width {self._width}"
            )
        batch_counts = nybble_counts(batch)
        codes = self._encoder.encode_set(batch)
        if len(batch):
            self._counts += batch_counts
            self._chunks.append(batch.matrix)
            self._code_chunks.append(codes)
            self._family.extend(codes)
            self._rows += len(batch)
        return batch_counts, codes

    # ------------------------------------------------------------------
    # refit inputs
    # ------------------------------------------------------------------

    def entropies(self) -> np.ndarray:
        """Per-nybble normalized entropies of the cumulative rows.

        Evaluates the exact expression of
        :func:`~repro.stats.entropy.nybble_entropies` on the summed
        counts — same op order, so the floats are bit-identical to a
        full pass over :meth:`materialize`.
        """
        return entropy_of_count_rows(self._counts) / math.log(
            NYBBLE_CARDINALITY
        )

    def materialize(self) -> AddressSet:
        """The cumulative rows as one :class:`AddressSet`, in arrival
        order (training rows first).  Collapses the chunk list so
        repeated refits never re-concatenate history."""
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks, axis=0)]
        return AddressSet(self._chunks[0])

    def codes(self) -> np.ndarray:
        """The cumulative code matrix under the current encoder."""
        if len(self._code_chunks) > 1:
            self._code_chunks = [np.concatenate(self._code_chunks, axis=0)]
        return self._code_chunks[0]

    def rebase(
        self, encoder: AddressEncoder, codes: Optional[np.ndarray] = None
    ) -> None:
        """Switch the cached code statistics onto a new encoder.

        When a refit's new encoder classifies differently
        (:func:`same_code_mapping` is False), the cached chunks are
        invalid; ``codes`` supplies the cumulative matrix re-encoded
        under the new mapping and the family counts restart from it.
        With ``codes=None`` the mapping was unchanged and only the
        encoder object is swapped — chunks and family counts carry
        over.
        """
        if codes is not None:
            if codes.shape[0] != self._rows:
                raise ValueError(
                    f"codes cover {codes.shape[0]} rows, feed has {self._rows}"
                )
            self._code_chunks = [codes]
            self._family = FamilyStats(codes, encoder.cardinalities)
        self._encoder = encoder
