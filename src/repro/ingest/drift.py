"""The drift signal: does the pending window still look like the model?

Reuses the §6 temporal machinery
(:func:`repro.core.temporal.jensen_shannon`, the entropy-shift framing
of ``detect_changes``) over the *incrementally maintained* statistics
of :mod:`repro.ingest.stats` — no refit, no re-scan of history, just
count arithmetic per batch:

- **entropy shift**: largest absolute difference between the pending
  window's per-nybble normalized entropies and the fitted baseline's —
  a renumbered block or a new allocation policy moves structure;
- **code divergence**: largest per-BN-variable Jensen-Shannon
  divergence (normalized to [0, 1] by log 2) between the baseline code
  histogram and the pending window's — the distribution over *mined
  values* shifting even when marginal entropy doesn't.

Both are exactly 0.0 — not merely small — when the pending window
reproduces the training distribution, because identical integer counts
feed identical float expressions; the "batch identical to training"
edge case can therefore never fire a refit on rounding noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.temporal import jensen_shannon
from repro.errors import DriftWindowOverflowError
from repro.stats.entropy import NYBBLE_CARDINALITY, entropy_of_count_rows

#: Default refit threshold, matching the structural-change threshold of
#: :func:`repro.core.temporal.detect_changes`.
DEFAULT_DRIFT_THRESHOLD = 0.15


@dataclass(frozen=True)
class DriftSignal:
    """One evaluation of the drift score over the pending window."""

    #: max(entropy_shift, code_divergence) — what the threshold gates.
    score: float
    #: Largest absolute per-nybble entropy change vs. the baseline.
    entropy_shift: float
    #: Largest per-variable JS divergence / log 2 vs. the baseline.
    code_divergence: float
    #: Rows accumulated since the last rebase (fit or refit).
    pending_rows: int
    #: The configured firing threshold, for self-contained reporting.
    threshold: float
    #: Whether this evaluation crossed the threshold.
    fired: bool


class DriftDetector:
    """Accumulates pending-window statistics and scores drift.

    ``baseline_entropies`` / ``baseline_code_counts`` describe the
    currently fitted model (the training rows under the fitted
    encoder); :meth:`update` folds each batch's count statistics into
    the pending window, :meth:`signal` scores the window, and
    :meth:`rebase` resets it after a refit adopts the window into a new
    baseline.  ``min_rows`` suppresses firing until the window holds
    enough rows to mean anything.

    ``max_pending_rows`` caps the pending window (0 = uncapped, the
    historical behavior).  A drift-free feed with automatic refits
    disabled accumulates forever otherwise; with a cap, an
    :meth:`update` that would push the window past it raises
    :class:`~repro.errors.DriftWindowOverflowError` *before* any
    statistic mutates — the caller refits (which rebases the window)
    or drops the batch, but never silently grows without bound.
    """

    def __init__(
        self,
        baseline_entropies: np.ndarray,
        baseline_code_counts: Sequence[np.ndarray],
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
        min_rows: int = 1,
        max_pending_rows: int = 0,
    ):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_rows < 1:
            raise ValueError(f"min_rows must be positive, got {min_rows}")
        if max_pending_rows < 0:
            raise ValueError(
                f"max_pending_rows must be >= 0, got {max_pending_rows}"
            )
        self.threshold = threshold
        self.min_rows = min_rows
        self.max_pending_rows = int(max_pending_rows)
        self._baseline_entropies = np.asarray(
            baseline_entropies, dtype=np.float64
        )
        self._baseline_code_counts = [
            np.asarray(c, dtype=np.int64) for c in baseline_code_counts
        ]
        self._pending_counts = np.zeros(
            (len(self._baseline_entropies), NYBBLE_CARDINALITY),
            dtype=np.int64,
        )
        self._pending_code_counts = [
            np.zeros_like(c) for c in self._baseline_code_counts
        ]
        self._pending_rows = 0

    @property
    def pending_rows(self) -> int:
        """Rows in the pending window."""
        return self._pending_rows

    def check_capacity(self, rows: int) -> None:
        """Raise :class:`~repro.errors.DriftWindowOverflowError` if a
        ``rows``-row batch would push the pending window past
        ``max_pending_rows`` (no-op when uncapped or ``rows == 0``).

        Exposed separately so callers that maintain statistics of
        their own alongside the detector (the ingest pipeline) can
        reject the batch *before* folding it anywhere.
        """
        if rows == 0 or not self.max_pending_rows:
            return
        if self._pending_rows + rows > self.max_pending_rows:
            raise DriftWindowOverflowError(
                f"pending window of {self._pending_rows} rows + batch of "
                f"{rows} would exceed max_pending_rows="
                f"{self.max_pending_rows}; refit (rebase) or drop the batch"
            )

    def update(
        self,
        batch_counts: np.ndarray,
        batch_code_counts: Sequence[np.ndarray],
        rows: int,
    ) -> None:
        """Fold one batch's count statistics into the pending window.

        Raises :class:`~repro.errors.DriftWindowOverflowError` — with
        no partial mutation — when a configured ``max_pending_rows``
        cap would be exceeded.
        """
        if rows == 0:
            return
        self.check_capacity(rows)
        self._pending_counts += batch_counts
        for pending, batch in zip(
            self._pending_code_counts, batch_code_counts
        ):
            pending += batch
        self._pending_rows += rows

    def signal(self) -> DriftSignal:
        """Score the pending window against the baseline."""
        if self._pending_rows == 0:
            return DriftSignal(
                score=0.0,
                entropy_shift=0.0,
                code_divergence=0.0,
                pending_rows=0,
                threshold=self.threshold,
                fired=False,
            )
        pending_entropies = entropy_of_count_rows(
            self._pending_counts
        ) / math.log(NYBBLE_CARDINALITY)
        entropy_shift = float(
            np.abs(pending_entropies - self._baseline_entropies).max()
        )
        code_divergence = 0.0
        for baseline, pending in zip(
            self._baseline_code_counts, self._pending_code_counts
        ):
            if len(baseline) < 2:
                continue  # constant variable: nothing to diverge
            divergence = jensen_shannon(baseline, pending) / math.log(2)
            if divergence > code_divergence:
                code_divergence = divergence
        score = max(entropy_shift, code_divergence)
        return DriftSignal(
            score=score,
            entropy_shift=entropy_shift,
            code_divergence=code_divergence,
            pending_rows=self._pending_rows,
            threshold=self.threshold,
            fired=(
                self._pending_rows >= self.min_rows
                and score > self.threshold
            ),
        )

    def snapshot(self) -> dict:
        """The detector's full state as plain arrays — baseline *and*
        pending window.  The baseline is serialized rather than
        recomputed on restore because rows may have arrived since the
        last rebase: a freshly constructed detector over the cumulative
        statistics would fold the pending rows into its baseline and
        score every future batch against the wrong reference."""
        return {
            "threshold": self.threshold,
            "min_rows": self.min_rows,
            "max_pending_rows": self.max_pending_rows,
            "baseline_entropies": np.array(
                self._baseline_entropies, copy=True
            ),
            "baseline_code_counts": [
                np.array(c, copy=True) for c in self._baseline_code_counts
            ],
            "pending_counts": np.array(self._pending_counts, copy=True),
            "pending_code_counts": [
                np.array(c, copy=True) for c in self._pending_code_counts
            ],
            "pending_rows": self._pending_rows,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "DriftDetector":
        """Rebuild a detector from a :meth:`snapshot` — same baseline,
        same pending window, so the next :meth:`signal` is
        bit-identical to what the snapshotted detector would score."""
        detector = cls(
            snapshot["baseline_entropies"],
            snapshot["baseline_code_counts"],
            threshold=float(snapshot["threshold"]),
            min_rows=int(snapshot["min_rows"]),
            max_pending_rows=int(snapshot["max_pending_rows"]),
        )
        detector._pending_counts = np.array(
            snapshot["pending_counts"], dtype=np.int64, copy=True
        )
        detector._pending_code_counts = [
            np.array(c, dtype=np.int64, copy=True)
            for c in snapshot["pending_code_counts"]
        ]
        detector._pending_rows = int(snapshot["pending_rows"])
        return detector

    def rebase(
        self,
        baseline_entropies: np.ndarray,
        baseline_code_counts: Sequence[np.ndarray],
    ) -> None:
        """Adopt a refitted model as the new baseline; clear the window."""
        self._baseline_entropies = np.asarray(
            baseline_entropies, dtype=np.float64
        )
        self._baseline_code_counts = [
            np.asarray(c, dtype=np.int64) for c in baseline_code_counts
        ]
        self._pending_counts = np.zeros(
            (len(self._baseline_entropies), NYBBLE_CARDINALITY),
            dtype=np.int64,
        )
        self._pending_code_counts = [
            np.zeros_like(c) for c in self._baseline_code_counts
        ]
        self._pending_rows = 0
