"""The online ingestion pipeline: feed in, drift-gated refits out.

:class:`IngestPipeline` is the subsystem that connects the repo's
static fit (:class:`~repro.core.pipeline.EntropyIP`) to the serving
runtime as a *living* model.  Address batches arrive
(:meth:`IngestPipeline.ingest`), fold into incrementally maintained
sufficient statistics (:mod:`repro.ingest.stats`), and move a drift
score (:mod:`repro.ingest.drift`); only when the score crosses the
configured threshold does a refit run — on the cumulative rows, and
**bit-identical** to a from-scratch ``EntropyIP.fit`` on them (the
golden-digest suite asserts it).

A refit then rolls forward in place: the new analysis registers under
the same name in the :class:`~repro.serve.registry.ModelRegistry`
(content digest changes → version bumps) and every live
:class:`~repro.serve.lifecycle.ManagedSession` on the model adopts the
new entry *without* resetting its exclusion/dedup state or RNG
position — clients keep their no-repeat guarantee across the roll;
``rollover`` remains the explicit full-reset escape hatch.  If another
writer replaced the registry entry behind the pipeline's back, the
refit refuses with :class:`~repro.errors.StaleModelError` instead of
clobbering it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.bayes.structure import StructureConfig, learn_structure
from repro.core.encoding import AddressEncoder
from repro.core.mining import MiningConfig, mine_segments
from repro.core.model import AddressModel
from repro.core.pipeline import EntropyIP, _as_address_set
from repro.core.segmentation import (
    SegmentationConfig,
    boundaries_from_entropy,
    segments_from_boundaries,
)
from repro.errors import (
    IngestDriftError,
    ModelDigestMismatch,
    StaleModelError,
    UnknownModelError,
)
from repro.faults import fault_point
from repro.ingest.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftDetector,
    DriftSignal,
)
from repro.ingest.stats import (
    IncrementalStats,
    same_code_mapping,
    variable_code_counts,
)
from repro.serve.registry import model_digest

if TYPE_CHECKING:
    from repro.serve.lifecycle import SessionManager
    from repro.serve.registry import ModelRegistry


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of the streaming-ingest pipeline.

    ``threshold`` gates refits on the drift score (max of entropy
    shift and per-variable JS divergence, both in [0, 1]);
    ``min_refit_rows`` suppresses firing until the pending window holds
    that many rows.  ``auto_refit=False`` turns a fired signal into
    :class:`~repro.errors.IngestDriftError` instead of an inline refit
    — the batch is *kept* (statistics already folded); the caller
    decides when to pay the refit.  ``max_pending_rows`` caps the
    drift detector's pending window (0 = uncapped): a batch that would
    push it past the cap raises
    :class:`~repro.errors.DriftWindowOverflowError` before anything
    folds in — the guard against unbounded accumulation when refits
    never fire.  The three stage configs are passed through to the
    refit exactly as ``EntropyIP.fit`` would take them.
    """

    threshold: float = DEFAULT_DRIFT_THRESHOLD
    min_refit_rows: int = 1
    auto_refit: bool = True
    max_pending_rows: int = 0
    segmentation: SegmentationConfig = SegmentationConfig()
    mining: MiningConfig = MiningConfig()
    structure: StructureConfig = StructureConfig()


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`IngestPipeline.ingest` call did."""

    #: Rows in this batch (after width normalization).
    rows: int
    #: Cumulative rows folded in so far (training set included).
    total_rows: int
    #: The drift evaluation after folding this batch.
    signal: DriftSignal
    #: Whether this call ran a refit.
    refit: bool
    #: Wall-clock seconds of that refit (None when none ran).
    refit_seconds: Optional[float]
    #: Content digest of the current model after this call.
    digest: str
    #: Registry version of the current model after this call.
    version: int


class IngestPipeline:
    """Online ingestion for one named model.

    Thread-safe (one lock serializes folds and refits — batches on one
    feed are ordered by definition).  ``registry`` and ``sessions`` are
    optional: without them the pipeline still ingests, detects drift
    and refits, tracking digest/version locally — the library-only
    mode the tests exercise; with them, refits roll into the serving
    runtime.
    """

    def __init__(
        self,
        name: str,
        analysis: EntropyIP,
        config: Optional[IngestConfig] = None,
        registry: Optional["ModelRegistry"] = None,
        sessions: Optional["SessionManager"] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.name = name
        self.config = config if config is not None else IngestConfig()
        self.registry = registry
        self.sessions = sessions
        self._clock = clock
        self._lock = threading.RLock()
        self._analysis = analysis
        self._width = analysis.encoder.width
        self._stats = IncrementalStats(analysis.address_set, analysis.encoder)
        self._detector = DriftDetector(
            analysis.entropies,
            variable_code_counts(
                self._stats.codes(), analysis.encoder.cardinalities
            ),
            threshold=self.config.threshold,
            min_rows=self.config.min_refit_rows,
            max_pending_rows=self.config.max_pending_rows,
        )
        if registry is not None:
            entry = registry.register(name, analysis)
            self._digest = entry.digest
            self._version = entry.version
        else:
            self._digest = model_digest(analysis)
            self._version = 1
        self.batches = 0
        self.rows_ingested = 0
        self.refits = 0
        self.refit_seconds_total = 0.0
        self.last_refit_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def analysis(self) -> EntropyIP:
        """The currently served analysis (latest refit, or the seed)."""
        return self._analysis

    @property
    def digest(self) -> str:
        """Content digest of the current model."""
        return self._digest

    @property
    def version(self) -> int:
        """Registry version of the current model."""
        return self._version

    @property
    def total_rows(self) -> int:
        """Cumulative rows folded in (training set + every batch)."""
        return self._stats.rows

    @property
    def pending_rows(self) -> int:
        """Rows accumulated since the last fit/refit baseline."""
        return self._detector.pending_rows

    # ------------------------------------------------------------------
    # the feed
    # ------------------------------------------------------------------

    def ingest(self, rows) -> IngestReport:
        """Fold one arriving batch; refit if (and only if) drift fired.

        ``rows`` is anything ``EntropyIP.fit`` accepts — an
        :class:`~repro.ipv6.sets.AddressSet` or an iterable of address
        strings / integers; wider sets are truncated to the feed
        width.  Empty batches are legal no-ops (the signal is still
        evaluated and reported).  With ``auto_refit=False`` a fired
        signal raises :class:`~repro.errors.IngestDriftError` *after*
        folding — no data is lost; call :meth:`refit` to catch up.
        """
        batch = _as_address_set(rows, self._width)
        with self._lock:
            n = len(batch)
            if n:
                # Reject an over-cap batch before *anything* folds in —
                # stats and detector must stay consistent.
                self._detector.check_capacity(n)
                batch_counts, codes = self._stats.update(batch)
                self._detector.update(
                    batch_counts,
                    variable_code_counts(
                        codes, self._stats.encoder.cardinalities
                    ),
                    n,
                )
                self.rows_ingested += n
            self.batches += 1
            signal = self._detector.signal()
            refit_seconds: Optional[float] = None
            if signal.fired:
                if not self.config.auto_refit:
                    raise IngestDriftError(
                        f"drift score {signal.score:.3f} crossed threshold "
                        f"{signal.threshold} over {signal.pending_rows} "
                        f"pending rows of model {self.name!r}; the batch is "
                        f"kept — call refit() to roll the model"
                    )
                refit_seconds = self.refit()
            return IngestReport(
                rows=n,
                total_rows=self._stats.rows,
                signal=signal,
                refit=refit_seconds is not None,
                refit_seconds=refit_seconds,
                digest=self._digest,
                version=self._version,
            )

    def refit(self) -> float:
        """Refit on the cumulative rows and roll the result forward.

        Runs exactly the ``EntropyIP.fit`` stage sequence, feeding each
        stage from the incrementally maintained statistics where they
        are integer-exact (entropies from summed counts, the code
        matrix from cached chunks, family counts via
        ``FamilyStats.extend``) and from the materialized cumulative
        set where the stage is inherently joint (value mining) — so
        the result is bit-identical to a from-scratch fit on the same
        rows.  Registers the new analysis (same name, version bump on
        digest change), adopts it into live sessions, rebases the
        drift baseline, and returns the wall-clock seconds spent.
        """
        with self._lock:
            # Fault site: a refit that dies here loses no data — the
            # statistics are already folded, so the caller simply calls
            # refit() again (or the next fired signal does).
            fault_point("ingest.refit")
            start = self._clock()
            cumulative = self._stats.materialize()
            entropies = self._stats.entropies()
            starts = boundaries_from_entropy(
                entropies, self.config.segmentation
            )
            segments = segments_from_boundaries(starts, self._width)
            mined = mine_segments(cumulative, segments, self.config.mining)
            encoder = AddressEncoder(mined)
            if same_code_mapping(self._stats.encoder, encoder):
                self._stats.rebase(encoder)
                codes = self._stats.codes()
            else:
                codes = encoder.encode_set(cumulative)
                self._stats.rebase(encoder, codes)
            network = learn_structure(
                codes,
                encoder.variable_names,
                encoder.cardinalities,
                self.config.structure,
                stats=self._stats.family,
            )
            model = AddressModel(encoder, network)
            analysis = EntropyIP(cumulative, entropies, segments, mined, model)
            if self.registry is not None:
                try:
                    self.registry.get(self.name, digest=self._digest)
                except ModelDigestMismatch as exc:
                    raise StaleModelError(
                        f"model {self.name!r} was replaced in the registry "
                        f"behind this ingest pipeline ({exc}); refusing to "
                        f"clobber it — re-open the pipeline on the current "
                        f"model to continue"
                    ) from exc
                except UnknownModelError:
                    pass  # evicted/expired: re-registering is harmless
                entry = self.registry.register(self.name, analysis)
                self._digest = entry.digest
                self._version = entry.version
                if self.sessions is not None:
                    self.sessions.adopt_model(self.name)
            else:
                digest = model_digest(analysis)
                if digest != self._digest:
                    self._digest = digest
                    self._version += 1
            self._analysis = analysis
            self._detector.rebase(
                entropies,
                variable_code_counts(codes, encoder.cardinalities),
            )
            seconds = self._clock() - start
            self.refits += 1
            self.refit_seconds_total += seconds
            self.last_refit_seconds = seconds
            return seconds

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The pipeline's complete resumable state as plain data.

        Carries the current analysis (model included), the cumulative
        rows folded in since that analysis' fit (the suffix the
        analysis itself does not hold), the drift detector's baseline
        *and* pending window, and the counters.  Taken under the
        pipeline lock — always a consistent point between batches.
        Persist via :func:`repro.checkpoint.save_checkpoint`; resume
        with :meth:`restore`.
        """
        import numpy as np

        with self._lock:
            cumulative = self._stats.materialize()
            base_rows = len(self._analysis.address_set)
            return {
                "name": self.name,
                "width": self._width,
                "digest": self._digest,
                "version": self._version,
                "analysis": self._analysis,
                # Rows folded in after the current analysis' fit: the
                # analysis carries its own training rows, so only the
                # suffix needs to ride along (it is a prefix-extension
                # by construction — refits materialize cumulatively).
                "extra_matrix": np.array(
                    cumulative.matrix[base_rows:], copy=True
                ),
                "detector": self._detector.snapshot(),
                "counters": {
                    "batches": self.batches,
                    "rows_ingested": self.rows_ingested,
                    "refits": self.refits,
                    "refit_seconds_total": self.refit_seconds_total,
                    "last_refit_seconds": self.last_refit_seconds,
                },
            }

    @classmethod
    def restore(
        cls,
        payload: dict,
        config: Optional[IngestConfig] = None,
        registry: Optional["ModelRegistry"] = None,
        sessions: Optional["SessionManager"] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "IngestPipeline":
        """Rebuild a pipeline from a :meth:`snapshot`.

        The incremental statistics are reconstructed by folding the
        snapshot's post-fit rows back in (count sums are
        order-independent and the row order is preserved, so the
        cumulative matrix — and therefore any later refit — is
        bit-identical to the uninterrupted run's), and the drift
        detector resumes with its exact saved baseline and pending
        window, so the next batch scores identically too.
        """
        from repro.ipv6.sets import AddressSet

        pipeline = cls(
            payload["name"],
            payload["analysis"],
            config=config,
            registry=registry,
            sessions=sessions,
            clock=clock,
        )
        with pipeline._lock:
            extra = payload["extra_matrix"]
            if len(extra):
                pipeline._stats.update(AddressSet(extra))
            pipeline._detector = DriftDetector.restore(payload["detector"])
            counters = payload["counters"]
            pipeline.batches = int(counters["batches"])
            pipeline.rows_ingested = int(counters["rows_ingested"])
            pipeline.refits = int(counters["refits"])
            pipeline.refit_seconds_total = float(
                counters["refit_seconds_total"]
            )
            pipeline.last_refit_seconds = counters["last_refit_seconds"]
            if registry is None:
                # Library mode tracks digest/version locally.
                pipeline._digest = payload["digest"]
                pipeline._version = int(payload["version"])
            else:
                # A registry-backed resume re-registered the analysis
                # in __init__, but a fresh process's registry counter
                # restarts at 1 — fast-forward the entry so the version
                # lineage clients saw before the crash never regresses.
                entry = registry.resume_version(
                    pipeline.name, int(payload["version"])
                )
                pipeline._version = entry.version
        return pipeline

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Pipeline counters for service-level introspection."""
        with self._lock:
            return {
                "model": self.name,
                "batches": self.batches,
                "rows_ingested": self.rows_ingested,
                "total_rows": self._stats.rows,
                "pending_rows": self._detector.pending_rows,
                "refits": self.refits,
                "refit_seconds_total": round(self.refit_seconds_total, 6),
                "last_refit_seconds": (
                    round(self.last_refit_seconds, 6)
                    if self.last_refit_seconds is not None
                    else None
                ),
                "digest": self._digest,
                "version": self._version,
            }

    def __repr__(self) -> str:
        return (
            f"IngestPipeline({self.name!r}, rows={self._stats.rows}, "
            f"pending={self._detector.pending_rows}, refits={self.refits}, "
            f"version={self._version})"
        )
