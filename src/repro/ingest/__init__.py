"""Streaming ingestion: online statistics, drift detection, live refits.

The online counterpart of the static ``EntropyIP.fit``: address
batches arrive continuously, sufficient statistics update
incrementally, and a refit runs only when a drift signal says the
fitted model no longer matches the feed — then rolls into the serving
runtime without resetting client streams.  See
:class:`~repro.ingest.pipeline.IngestPipeline` for the full contract.
"""

from repro.ingest.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftDetector,
    DriftSignal,
)
from repro.ingest.pipeline import IngestConfig, IngestPipeline, IngestReport
from repro.ingest.stats import (
    IncrementalStats,
    same_code_mapping,
    variable_code_counts,
)

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "DriftDetector",
    "DriftSignal",
    "IncrementalStats",
    "IngestConfig",
    "IngestPipeline",
    "IngestReport",
    "same_code_mapping",
    "variable_code_counts",
]
