"""Hitlist-as-a-service runtime: registry, session lifecycle, facade.

Three layers over the core library, each usable alone:

- :mod:`repro.serve.registry` — :class:`ModelRegistry`: fitted
  :class:`~repro.core.pipeline.EntropyIP` models warm in memory, keyed
  by name + content digest, LRU/TTL bounded.
- :mod:`repro.serve.lifecycle` — :class:`SessionManager`: warm
  :class:`~repro.core.model.GenerationSession` streams per
  (model, client), with backend selection, capacity caps, idle
  eviction, and explicit close/rollover.  :class:`SessionSpec` is the
  canonical session-opening recipe shared by every entry point.
- :mod:`repro.serve.service` — :class:`HitlistService`: the
  thread-safe concurrent facade with bounded-queue backpressure and
  per-request latency accounting.
"""

from repro.serve.lifecycle import (
    ManagedSession,
    SessionClosedError,
    SessionManager,
    SessionSpec,
    UnknownSessionError,
)
from repro.serve.registry import (
    ModelDigestMismatch,
    ModelEntry,
    ModelRegistry,
    UnknownModelError,
    model_digest,
)
from repro.serve.service import (
    HitlistService,
    ServiceClosedError,
    ServiceOverloadedError,
)

__all__ = [
    "HitlistService",
    "ManagedSession",
    "ModelDigestMismatch",
    "ModelEntry",
    "ModelRegistry",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "SessionClosedError",
    "SessionManager",
    "SessionSpec",
    "UnknownModelError",
    "UnknownSessionError",
    "model_digest",
]
