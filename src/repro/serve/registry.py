"""The model registry: warm fitted :class:`EntropyIP` models by name.

A serving runtime cannot afford to refit a model per request — the fit
is ~5–20 ms, but the point of serving is amortizing *one* fit across
thousands of requests and many concurrent clients.  The
:class:`ModelRegistry` keeps fitted analyses warm, keyed by **name +
content digest**:

- the *name* is the caller's handle ("S1", "march-17-clients", a file
  path) — what requests address;
- the *digest* (:func:`model_digest` — the same canonical sha256 the
  golden-fit suite pins) identifies the fitted content, so the registry
  can tell a redundant re-registration (same digest: the warm entry is
  reused untouched) from a genuine model update (new digest: the entry
  is replaced and its version bumped), and a caller holding a stale
  handle can detect the swap (``get(name, digest=...)`` raises
  :class:`ModelDigestMismatch`).

Capacity is bounded: at most ``capacity`` entries live at once, evicted
least-recently-used; ``ttl`` additionally expires entries idle longer
than the given seconds (checked on every access, and on demand via
:meth:`ModelRegistry.prune`).  All methods are thread-safe — the
registry is shared by every worker thread of a
:class:`~repro.serve.service.HitlistService`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.pipeline import EntropyIP
# Defined in the consolidated hierarchy (repro.errors); re-exported
# here because this module is their historical home.
from repro.errors import ModelDigestMismatch, UnknownModelError


def model_digest(analysis: EntropyIP) -> str:
    """Canonical content digest of a fitted model.

    Covers everything generation depends on: segmentation, the mined
    value/range codes (with bit-exact frequencies), the learned BN
    edges, and the raw CPD table bytes.  This is the digest the
    golden-fit regression suite pins for the benchmark networks, and
    the registry's content key: two fits hashing equal are
    interchangeable for serving, byte for byte.
    """
    h = hashlib.sha256()
    for segment in analysis.segments:
        h.update(
            f"segment:{segment.label}:{segment.first_nybble}:"
            f"{segment.last_nybble}\n".encode()
        )
    for mined in analysis.mined:
        for value in mined.values:
            h.update(
                f"value:{mined.segment.label}:{value.code}:{value.low:x}:"
                f"{value.high:x}:{value.origin}:{value.frequency.hex()}\n".encode()
            )
    for parent, child in sorted(analysis.model.network.edges()):
        h.update(f"edge:{parent}->{child}\n".encode())
    for name in analysis.model.network.variables:
        cpd = analysis.model.network.cpd(name)
        h.update(
            f"cpd:{name}:{','.join(cpd.parents)}:{cpd.table.shape}\n".encode()
        )
        h.update(np.ascontiguousarray(cpd.table).tobytes())
    return h.hexdigest()


@dataclass
class ModelEntry:
    """One registered model and its bookkeeping.

    The entry object is stable across touches — holders (warm sessions)
    keep a reference and compare ``digest`` to detect replacement.
    """

    name: str
    digest: str
    analysis: EntropyIP
    #: Monotonically increasing per name: 1 for the first registration,
    #: bumped each time a *different* digest replaces the entry.
    version: int
    registered_at: float
    last_used: float = 0.0
    uses: int = 0
    #: Address-set width the model generates (convenience for callers
    #: normalizing membership queries without touching the analysis).
    width: int = field(init=False)

    def __post_init__(self) -> None:
        self.width = self.analysis.encoder.width


class ModelRegistry:
    """Bounded, thread-safe store of fitted models (LRU + TTL).

    ``capacity`` caps live entries (least-recently-used evicted on
    overflow); ``ttl`` (seconds, by ``clock``) expires idle entries.
    ``clock`` is injectable so tests can drive time explicitly; it
    defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        capacity: int = 8,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self._capacity = capacity
        self._ttl = ttl
        self._clock = clock
        self._lock = threading.RLock()
        #: name -> entry, maintained in LRU order (oldest first).
        self._entries: "OrderedDict[str, ModelEntry]" = OrderedDict()
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def fit(self, name: str, addresses, width: int = 32, **fit_kwargs) -> ModelEntry:
        """Fit :meth:`EntropyIP.fit` on ``addresses`` and register it.

        The fit runs outside the registry lock (it is the expensive
        part); only the registration itself serializes.
        """
        analysis = EntropyIP.fit(addresses, width=width, **fit_kwargs)
        return self.register(name, analysis)

    def register(self, name: str, analysis: EntropyIP) -> ModelEntry:
        """Register a fitted analysis under ``name``.

        Same name + same digest: the existing warm entry is touched and
        returned (re-registering identical content is free and never
        invalidates holders).  Same name + different digest: the entry
        is replaced, version bumped.  Distinct names may share a digest
        — entries are independent.
        """
        digest = model_digest(analysis)
        now = self._clock()
        with self._lock:
            self._expire(now)
            existing = self._entries.get(name)
            if existing is not None and existing.digest == digest:
                self._touch(existing, now)
                return existing
            entry = ModelEntry(
                name=name,
                digest=digest,
                analysis=analysis,
                version=existing.version + 1 if existing else 1,
                registered_at=now,
                last_used=now,
            )
            self._entries[name] = entry
            self._entries.move_to_end(name)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return entry

    def resume_version(self, name: str, version: int) -> ModelEntry:
        """Fast-forward ``name``'s version lineage to at least ``version``.

        A process restored from a checkpoint re-registers its model in
        a *fresh* registry whose per-name counter restarts at 1, which
        would roll the version clients observed before the crash
        backwards.  The checkpointed version is the lineage's
        high-water mark, so a resume raises the live entry to it; an
        already-higher live version (the registry moved on while the
        checkpoint aged) is kept.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownModelError(f"no registered model named {name!r}")
            entry.version = max(entry.version, int(version))
            return entry

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, name: str, digest: Optional[str] = None) -> ModelEntry:
        """Fetch the live entry for ``name`` (touching its LRU/TTL
        clock).  ``digest`` pins the expected content: a mismatch —
        the model was replaced under this name — raises
        :class:`ModelDigestMismatch` instead of silently serving a
        different model.
        """
        now = self._clock()
        with self._lock:
            self._expire(now)
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownModelError(f"no registered model named {name!r}")
            if digest is not None and entry.digest != digest:
                raise ModelDigestMismatch(
                    f"model {name!r} is now digest {entry.digest[:12]}… "
                    f"(version {entry.version}), caller expected "
                    f"{digest[:12]}…"
                )
            self._touch(entry, now)
            return entry

    def __contains__(self, name: str) -> bool:
        with self._lock:
            self._expire(self._clock())
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            self._expire(self._clock())
            return len(self._entries)

    def names(self) -> List[str]:
        """Live model names, least-recently-used first."""
        with self._lock:
            self._expire(self._clock())
            return list(self._entries)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def evict(self, name: str) -> bool:
        """Drop ``name`` now; returns whether it was present."""
        with self._lock:
            return self._entries.pop(name, None) is not None

    def prune(self) -> int:
        """Drop every TTL-expired entry; returns how many were dropped."""
        with self._lock:
            before = self._expirations
            self._expire(self._clock())
            return self._expirations - before

    def stats(self) -> dict:
        """Registry counters (for service-level introspection)."""
        with self._lock:
            return {
                "models": len(self._entries),
                "capacity": self._capacity,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }

    def versions(self) -> dict:
        """``{model name: current version}`` for every live entry —
        what the serve protocol's ``health`` verb reports."""
        with self._lock:
            return {
                name: entry.version for name, entry in self._entries.items()
            }

    # ------------------------------------------------------------------

    def _touch(self, entry: ModelEntry, now: float) -> None:
        entry.last_used = now
        entry.uses += 1
        self._entries.move_to_end(entry.name)

    def _expire(self, now: float) -> None:
        if self._ttl is None:
            return
        expired = [
            name
            for name, entry in self._entries.items()
            if now - entry.last_used > self._ttl
        ]
        for name in expired:
            del self._entries[name]
            self._expirations += 1

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ModelRegistry(models={len(self._entries)}, "
                f"capacity={self._capacity}, ttl={self._ttl})"
            )
