"""Session lifecycle: warm :class:`GenerationSession` streams per client.

The second runtime layer.  A served candidate stream is *stateful
twice over*: the :class:`~repro.core.model.GenerationSession` holds the
client's probed universe (every row served is retired forever), and the
RNG holds the position in the client's deterministic draw stream.  The
:class:`SessionManager` owns both per ``(model name, client)`` key, so
"next N candidates for network X excluding what I've seen" is a lookup
plus one ``generate_set`` call on warm state.

The determinism contract of every prior subsystem carries through
unchanged: a managed stream is **bit-identical** to the direct library
path — ``model.session(exclude=…, backend=…)`` plus a
``numpy.random.default_rng(seed)`` fed through the same sequence of
``generate_set(n, rng, state=session, workers=…)`` calls — for the
same ``(seed, workers, backend)``.  The manager adds only bookkeeping
(locking, idle eviction, capacity caps), never a different code path.

:class:`SessionSpec` is the one canonical recipe for opening a session
— the CLI, ``scan/evaluate.py``, ``scan/campaign.py`` and the manager
all construct sessions through it, so backend selection and capacity
semantics cannot drift between entry points.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.model import (
    AddressModel,
    ExcludeLike,
    GenerationSession,
)
# Defined in the consolidated hierarchy (repro.errors); re-exported
# here because this module is their historical home.
from repro.errors import (
    CheckpointError,
    SessionClosedError,
    UnknownSessionError,
)
from repro.ipv6.backends import BackendSpec
from repro.ipv6.sets import AddressSet
from repro.serve.registry import ModelEntry, ModelRegistry


@dataclass(frozen=True)
class SessionSpec:
    """The canonical recipe for opening a generation session.

    Every entry point — the service runtime, the CLI subcommands,
    ``scan_experiment`` and ``ScanCampaign`` — opens sessions through
    :meth:`open`, so the ``backend``/``capacity`` semantics live in
    exactly one place.

    ``capacity`` is the *enforceable* cap of
    :class:`~repro.core.model.GenerationSession` (0 = uncapped):
    exceeding it raises
    :class:`~repro.core.model.SessionCapacityError`, it never silently
    grows past the cap.  ``workers`` is part of the stream identity
    (serial and sharded draws differ by design; any sharded worker
    *count* is bit-identical to any other).  ``exec_backend`` is *not*
    part of the stream identity — thread and process execution are
    bit-identical, it is recorded here only so a stream's draws run
    where the deployment asked, and with ``workers`` unset (the serial
    stream) it is ignored entirely: it can place shards, never create
    them.
    """

    exclude: Optional[ExcludeLike] = None
    capacity: int = 0
    backend: BackendSpec = None
    workers: Optional[int] = None
    exec_backend: Optional[str] = None

    def open(self, model: AddressModel) -> GenerationSession:
        """Open a fresh session on ``model`` per this recipe."""
        return model.session(
            exclude=self.exclude,
            capacity=self.capacity,
            backend=self.backend,
        )


class ManagedSession:
    """One client's warm candidate stream over a registered model.

    Owns the persistent :class:`GenerationSession`, the client's RNG
    stream, and a lock serializing draws — concurrent requests against
    the *same* stream execute one at a time (interleaving draws on one
    RNG would make the stream depend on scheduling), while requests
    against different sessions run fully concurrently.
    """

    def __init__(
        self,
        key: Tuple[str, str],
        entry: ModelEntry,
        spec: SessionSpec,
        seed: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.key = key
        self.entry = entry
        self.spec = spec
        self.seed = seed
        self.session = spec.open(entry.analysis.model)
        self.rng = np.random.default_rng(seed)
        self._clock = clock
        self._lock = threading.Lock()
        self.created_at = clock()
        self.last_used = self.created_at
        self.requests = 0
        self.rows_served = 0
        self.closed = False

    @property
    def model_name(self) -> str:
        return self.key[0]

    @property
    def client(self) -> str:
        return self.key[1]

    def generate(
        self, n: int, workers: Optional[int] = None
    ) -> AddressSet:
        """Serve the next ``n`` candidates of this client's stream.

        Exactly the direct library call — ``generate_set(n, rng,
        state=session, workers=…)`` on the warm state — under the
        stream lock.  ``workers`` defaults to the spec's value; passing
        a different *sharded* worker count is output-neutral (the
        engine's invariance contract), switching between serial
        (``None``) and sharded is not, which is why the spec pins it.
        """
        with self._lock:
            if self.closed:
                raise SessionClosedError(
                    f"session {self.key} is closed"
                )
            out = self.entry.analysis.model.generate_set(
                n,
                self.rng,
                state=self.session,
                workers=self.spec.workers if workers is None else workers,
                exec_backend=self.spec.exec_backend,
            )
            self.requests += 1
            self.rows_served += len(out)
            self.last_used = self._clock()
            return out

    def touch(self) -> None:
        """Refresh the idle clock (any manager access counts as use)."""
        self.last_used = self._clock()

    def adopt(self, entry: ModelEntry) -> None:
        """Swap this stream onto a new registry entry for its model —
        the drift-triggered roll of the streaming-ingest path.

        Only the model reference changes: the session's exclusion/dedup
        table and the client's RNG position carry over untouched, so
        every row ever served (or observed) stays retired and the
        stream continues from where it was — exactly how adaptive
        campaign refits reuse their session.  ``rollover`` remains the
        explicit full-reset escape hatch.  The new entry must generate
        the same address width as the session it inherits.
        """
        with self._lock:
            if self.closed:
                raise SessionClosedError(f"session {self.key} is closed")
            if entry.width != self.session.width:
                raise ValueError(
                    f"cannot adopt model of width {entry.width} into a "
                    f"width-{self.session.width} session"
                )
            self.entry = entry
            self.last_used = self._clock()

    def membership(self, rows: ExcludeLike) -> np.ndarray:
        """Which of ``rows`` this session has already retired (seed
        exclusions or previously served candidates)."""
        from repro.core.model import exclude_packed_words

        words = exclude_packed_words(rows, self.session.width)
        with self._lock:
            if self.closed:
                raise SessionClosedError(f"session {self.key} is closed")
            self.last_used = self._clock()
            return self.session.table.contains(words)

    def observe(self, rows: ExcludeLike) -> int:
        """Fold client-observed rows into the exclusion state."""
        with self._lock:
            if self.closed:
                raise SessionClosedError(f"session {self.key} is closed")
            fresh = self.session.observe(rows)
            self.last_used = self._clock()
            return fresh

    def snapshot(self) -> dict:
        """This stream's complete state as plain data: the generation
        session's snapshot plus the RNG's bit-generator state (the
        stream position), the opening spec, and the usage counters.

        Taken under the stream lock, so it is always a consistent
        point between draws.  The spec's ``exclude`` is deliberately
        *not* serialized — seed exclusions are already rows in the
        session table, which the snapshot carries in full.
        """
        with self._lock:
            if self.closed:
                raise SessionClosedError(f"session {self.key} is closed")
            return {
                "model": self.key[0],
                "client": self.key[1],
                "seed": self.seed,
                "model_digest": self.entry.digest,
                "spec": {
                    "capacity": self.spec.capacity,
                    "backend": self.spec.backend,
                    "workers": self.spec.workers,
                    "exec_backend": self.spec.exec_backend,
                },
                "rng_state": self.rng.bit_generator.state,
                "requests": self.requests,
                "rows_served": self.rows_served,
                "session": self.session.snapshot(),
            }

    @classmethod
    def restore(
        cls,
        entry: ModelEntry,
        payload: dict,
        clock: Callable[[], float] = time.monotonic,
    ) -> "ManagedSession":
        """Rebuild a stream from a :meth:`snapshot` against ``entry``.

        The registry entry must carry the *same model* the snapshot
        was taken under (digest-checked): resuming a stream against a
        different model would silently break the bit-identity promise
        — the whole point of a checkpoint.  The restored stream's RNG
        resumes at the exact saved position, so its subsequent draws
        are bit-identical to the uninterrupted run's.
        """
        if entry.digest != payload["model_digest"]:
            raise CheckpointError(
                f"checkpointed stream for model {payload['model']!r} was "
                f"taken under digest {payload['model_digest'][:12]}..., "
                f"the registry now holds {entry.digest[:12]}..."
            )
        spec_data = payload["spec"]
        spec = SessionSpec(
            exclude=None,
            capacity=int(spec_data["capacity"]),
            backend=spec_data["backend"],
            workers=spec_data["workers"],
            exec_backend=spec_data["exec_backend"],
        )
        managed = cls(
            (payload["model"], payload["client"]),
            entry,
            spec,
            seed=int(payload["seed"]),
            clock=clock,
        )
        # Swap the freshly opened (empty) session for the restored one
        # and rewind the RNG to the saved stream position.
        managed.session.close()
        managed.session = GenerationSession.restore(
            payload["session"], backend=spec.backend
        )
        managed.rng.bit_generator.state = payload["rng_state"]
        managed.requests = int(payload["requests"])
        managed.rows_served = int(payload["rows_served"])
        return managed

    def close(self) -> None:
        with self._lock:
            self.closed = True
            # Release the GenerationSession's long-lived worker pools —
            # eviction/expiry must not leak executor threads/processes.
            self.session.close()

    def __repr__(self) -> str:
        return (
            f"ManagedSession({self.key}, seed={self.seed}, "
            f"requests={self.requests}, rows={self.rows_served}, "
            f"closed={self.closed})"
        )


class SessionManager:
    """Bounded, thread-safe pool of warm sessions (LRU + idle TTL).

    ``capacity`` caps live sessions; over it, the least-recently-used
    session is closed and dropped.  ``ttl`` closes sessions idle longer
    than the given seconds.  ``default_backend`` applies when a spec
    does not choose one, so a deployment can flip its whole session
    pool to ``"sharded64"`` in one place.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        capacity: int = 64,
        ttl: Optional[float] = None,
        default_backend: BackendSpec = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.registry = registry
        self._capacity = capacity
        self._ttl = ttl
        self._default_backend = default_backend
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[Tuple[str, str], ManagedSession]" = (
            OrderedDict()
        )
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def open(
        self,
        model_name: str,
        client: str,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = False,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> ManagedSession:
        """Get-or-create the warm session for ``(model_name, client)``.

        An existing live session is returned untouched (the open
        parameters describe only a *new* stream; they cannot mutate a
        running one — use :meth:`rollover` to restart with different
        settings).  ``exclude_training`` seeds the session with the
        model's own training set — the §5.5 default of "scan for
        addresses not yet seen".
        """
        key = (model_name, client)
        now = self._clock()
        with self._lock:
            self._expire(now)
            session = self._sessions.get(key)
            if session is not None and not session.closed:
                session.touch()
                self._sessions.move_to_end(key)
                return session
            entry = self.registry.get(model_name)
            if exclude_training:
                if exclude is not None:
                    raise ValueError(
                        "pass exclude= or exclude_training=, not both"
                    )
                exclude = entry.analysis.address_set
            spec = SessionSpec(
                exclude=exclude,
                capacity=capacity,
                backend=(
                    backend if backend is not None else self._default_backend
                ),
                workers=workers,
                exec_backend=exec_backend,
            )
            session = ManagedSession(
                key, entry, spec, seed=seed, clock=self._clock
            )
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self._capacity:
                _, evicted = self._sessions.popitem(last=False)
                evicted.close()
                self._evictions += 1
            return session

    def get(self, model_name: str, client: str) -> ManagedSession:
        """Fetch a live session; raises :class:`UnknownSessionError`."""
        key = (model_name, client)
        with self._lock:
            self._expire(self._clock())
            session = self._sessions.get(key)
            if session is None or session.closed:
                raise UnknownSessionError(
                    f"no live session for model {model_name!r}, "
                    f"client {client!r}"
                )
            session.touch()
            self._sessions.move_to_end(key)
            return session

    def close(self, model_name: str, client: str) -> bool:
        """Close and drop a session; returns whether it was live."""
        key = (model_name, client)
        with self._lock:
            session = self._sessions.pop(key, None)
            if session is None:
                return False
            session.close()
            return True

    def close_all(self) -> int:
        """Close and drop every live session; returns how many.

        Used by an owning :class:`~repro.serve.service.HitlistService`
        on shutdown so no session leaves worker pool threads/processes
        behind.
        """
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
        return len(sessions)

    def rollover(self, model_name: str, client: str) -> ManagedSession:
        """Close the client's stream and reopen it fresh.

        The new session reuses the old one's spec and seed against the
        *current* registry entry for the model — the clean way to pick
        up a refitted model (new digest) or to reset a stream whose
        capacity cap was reached: exclusion state and RNG position
        restart from zero.
        """
        key = (model_name, client)
        with self._lock:
            old = self._sessions.pop(key, None)
            if old is None:
                raise UnknownSessionError(
                    f"no live session for model {model_name!r}, "
                    f"client {client!r}"
                )
            old.close()
            entry = self.registry.get(model_name)
            session = ManagedSession(
                key, entry, old.spec, seed=old.seed, clock=self._clock
            )
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            return session

    def restore_session(self, payload: dict) -> ManagedSession:
        """Install a stream restored from a
        :meth:`ManagedSession.snapshot` payload.

        The model is looked up by the snapshot's name and
        digest-checked (see :meth:`ManagedSession.restore`); an
        existing live session under the same key is closed and
        replaced — a resume supersedes whatever partial state a
        restarted process may have accumulated.
        """
        with self._lock:
            entry = self.registry.get(payload["model"])
            session = ManagedSession.restore(
                entry, payload, clock=self._clock
            )
            old = self._sessions.pop(session.key, None)
            if old is not None:
                old.close()
            self._sessions[session.key] = session
            self._sessions.move_to_end(session.key)
            while len(self._sessions) > self._capacity:
                _, evicted = self._sessions.popitem(last=False)
                evicted.close()
                self._evictions += 1
            return session

    def snapshot_all(self) -> List[dict]:
        """Snapshots of every live session (for a checkpoint sweep)."""
        with self._lock:
            sessions = [
                session
                for session in self._sessions.values()
                if not session.closed
            ]
        return [session.snapshot() for session in sessions]

    def exec_stats(self) -> dict:
        """Mid-run retry / degradation counters summed over every live
        session's worker pools (for the service ``health`` verb)."""
        with self._lock:
            sessions = list(self._sessions.values())
        totals = {"retries": 0, "degradations": 0}
        for session in sessions:
            if session.closed:
                continue
            stats = session.session.exec_stats()
            totals["retries"] += stats["retries"]
            totals["degradations"] += stats["degradations"]
        return totals

    def adopt_model(self, model_name: str) -> int:
        """Roll every live session of ``model_name`` onto the model's
        *current* registry entry, preserving each stream's
        exclusion/dedup state and RNG position.

        The streaming-ingest pipeline calls this after a drift-triggered
        refit lands in the registry: clients keep their no-repeat
        guarantee across the model roll (nothing they were served or
        observed is ever re-emitted), only the distribution future
        draws come from changes.  Sessions already on the current
        digest are left untouched.  Returns how many sessions adopted
        the new entry; ``rollover`` stays the explicit way to *reset* a
        stream instead.
        """
        with self._lock:
            entry = self.registry.get(model_name)
            adopted = 0
            for key, session in self._sessions.items():
                if key[0] != model_name or session.closed:
                    continue
                if session.entry.digest == entry.digest:
                    continue
                session.adopt(entry)
                adopted += 1
            return adopted

    # ------------------------------------------------------------------
    # introspection / eviction
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            self._expire(self._clock())
            return len(self._sessions)

    def keys(self) -> List[Tuple[str, str]]:
        with self._lock:
            self._expire(self._clock())
            return list(self._sessions)

    def prune(self) -> int:
        """Close every idle-expired session; returns how many."""
        with self._lock:
            before = self._expirations
            self._expire(self._clock())
            return self._expirations - before

    def stats(self) -> dict:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "capacity": self._capacity,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }

    def _expire(self, now: float) -> None:
        if self._ttl is None:
            return
        expired = [
            key
            for key, session in self._sessions.items()
            if now - session.last_used > self._ttl
        ]
        for key in expired:
            session = self._sessions.pop(key)
            session.close()
            self._expirations += 1

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SessionManager(sessions={len(self._sessions)}, "
                f"capacity={self._capacity}, ttl={self._ttl})"
            )
