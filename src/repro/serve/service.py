"""The hitlist-as-a-service facade: concurrent requests over warm state.

The top runtime layer.  :class:`HitlistService` fronts a
:class:`~repro.serve.registry.ModelRegistry` and a
:class:`~repro.serve.lifecycle.SessionManager` with a **bounded work
queue** and a small worker-thread pool, serving the three §5.5-shaped
request families concurrently:

- ``generate``  — "next N candidates for network X, excluding what
  this client has seen" (a warm session's stream);
- ``membership`` — "which of these rows has this client's stream
  already retired";
- ``fit`` / ``report`` — "fit this seed set" / "render the full
  analyst report".

Backpressure is explicit: at most ``max_pending`` requests queue; a
submission past that raises :class:`ServiceOverloadedError` immediately
instead of growing an unbounded backlog (the caller sheds load or
retries — the queue never does).  Every request's queue wait and
service time are recorded; :meth:`HitlistService.stats` reports
per-kind counts, p50/p99 latency and completed requests/s — the
serving-side analogue of the addr/s benchmark stages.

Determinism is inherited from the layers below: a served generate
stream is bit-identical to the direct
``AddressModel.session()``/``generate_set`` path for the same (seed,
workers, backend), because the service *is* that path plus queuing —
asserted by the threaded stress suite and the ``service_throughput``
benchmark stage.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.model import ExcludeLike
# Defined in the consolidated hierarchy (repro.errors); re-exported
# here because this module is their historical home.
from repro.errors import (
    RequestTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.faults import fault_point
from repro.ipv6.backends import BackendSpec
from repro.ipv6.sets import AddressSet
from repro.serve.lifecycle import ManagedSession, SessionManager
from repro.serve.registry import ModelEntry, ModelRegistry

#: Request kinds with dedicated latency accounting.
REQUEST_KINDS = ("generate", "membership", "fit", "ingest", "report", "other")

#: Default cap (seconds) on how long :meth:`HitlistService.close`
#: waits for workers to drain queued requests.  ``None`` waits
#: forever — the pre-deadline behavior.
DEFAULT_CLOSE_TIMEOUT = 30.0

#: How many times a request hit by a transient pre-execution fault
#: (the ``service.worker`` fault site) is requeued before the fault is
#: surfaced on its future.
_MAX_WORKER_RETRIES = 3

_SHUTDOWN = object()


class HitlistService:
    """Thread-safe serving facade over warm models and sessions.

    ``workers`` sizes the executor pool (requests already queued run
    concurrently up to this); ``max_pending`` bounds the work queue —
    the backpressure knob; ``latency_window`` bounds the per-kind
    latency samples kept for percentile reporting.

    The service owns its registry/session-manager by default; passing
    shared ones composes (e.g. several services over one registry).
    Use as a context manager or call :meth:`close` — worker threads
    are non-daemonic bookkeeping-wise but shut down cleanly.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        sessions: Optional[SessionManager] = None,
        workers: int = 2,
        max_pending: int = 64,
        latency_window: int = 2048,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be positive, got {max_pending}"
            )
        self.registry = registry if registry is not None else ModelRegistry()
        # When the service built its own manager it also owns the
        # sessions' worker pools: close() shuts them down.  A shared
        # manager outlives any one service, so its owner closes it.
        self._owns_sessions = sessions is None
        self.sessions = (
            sessions
            if sessions is not None
            else SessionManager(self.registry)
        )
        self._clock = clock
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._max_pending = max_pending
        self._lock = threading.Lock()
        self._closed = False
        self._rejected = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        #: (queue wait + service) latency samples per request kind.
        self._latencies: Dict[str, deque] = {
            kind: deque(maxlen=latency_window) for kind in REQUEST_KINDS
        }
        self._kind_counts: Dict[str, int] = {
            kind: 0 for kind in REQUEST_KINDS
        }
        #: Requests shed worker-side: deadline already expired.
        self._timeouts: Dict[str, int] = {kind: 0 for kind in REQUEST_KINDS}
        #: Requests shed submit-side: bounded queue full.
        self._shed: Dict[str, int] = {kind: 0 for kind in REQUEST_KINDS}
        #: Requests requeued after a transient pre-execution fault.
        self._retried: Dict[str, int] = {kind: 0 for kind in REQUEST_KINDS}
        #: Completion timestamps for the requests/s window.
        self._completions: deque = deque(maxlen=latency_window)
        #: model name -> live streaming-ingest pipeline (lazy import of
        #: repro.ingest keeps serving importable on its own).
        self._pipelines: Dict[str, object] = {}
        self._pipelines_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"hitlist-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # the request plane
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: str,
        fn: Callable[[], object],
        deadline: Optional[float] = None,
    ) -> "Future":
        """Enqueue ``fn`` as a ``kind`` request; returns its future.

        The one entry point every typed request goes through: the
        bounded queue is the backpressure boundary, so a full queue
        raises :class:`ServiceOverloadedError` *here*, synchronously —
        the caller knows immediately, holding no ticket.

        ``deadline`` is a queue-wait budget in seconds (on the
        service's own clock): a worker that dequeues the request after
        the budget has elapsed sheds it with
        :class:`~repro.errors.RequestTimeoutError` on the future
        *before* doing any work, so a stalled queue fails fast instead
        of making every stream behind the stall later still.  ``None``
        (the default) never expires.
        """
        if kind not in REQUEST_KINDS:
            kind = "other"
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be non-negative, got {deadline}")
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            future: "Future" = Future()
            now = self._clock()
            expires = None if deadline is None else now + deadline
            item = (future, kind, fn, now, expires, 0)
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self._rejected += 1
                self._shed[kind] += 1
                raise ServiceOverloadedError(
                    f"work queue full ({self._max_pending} pending)"
                ) from None
            self._submitted += 1
            return future

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            future, kind, fn, queued_at, expires, attempts = item
            # The pre-execution fault site.  A transient fault here
            # (injected, or a real pre-dispatch hiccup modeled on one)
            # requeues the request — bounded, counted — rather than
            # failing work that never ran; shutdown signals raised at
            # the site propagate like shutdown signals anywhere else
            # in this loop.
            try:
                fault_point("service.worker")
            except (KeyboardInterrupt, SystemExit) as exc:
                # Same contract as a signal during execution below:
                # unblock the waiter with a typed error, then let the
                # signal stop this worker.
                future.set_exception(
                    ServiceClosedError(
                        f"worker stopped by {type(exc).__name__} "
                        f"before a {kind} request"
                    )
                )
                raise
            except Exception as exc:
                with self._lock:
                    self._retried[kind] += 1
                if attempts < _MAX_WORKER_RETRIES:
                    self._queue.put(
                        (future, kind, fn, queued_at, expires, attempts + 1)
                    )
                    continue
                if future.set_running_or_notify_cancel():
                    with self._lock:
                        self._failed += 1
                    future.set_exception(exc)
                continue
            if not future.set_running_or_notify_cancel():
                continue
            now = self._clock()
            if expires is not None and now >= expires:
                # Shed before doing the work: the caller's budget is
                # already blown, so running the request could only
                # delay everything queued behind it further.
                with self._lock:
                    self._failed += 1
                    self._timeouts[kind] += 1
                future.set_exception(
                    RequestTimeoutError(
                        f"{kind} request deadline expired "
                        f"{now - expires:.3f}s before a worker reached it"
                    )
                )
                continue
            try:
                result = fn()
            except (KeyboardInterrupt, SystemExit) as exc:
                # A shutdown signal is not a request failure: unblock
                # the waiter with a typed error, then let the signal
                # propagate and stop this worker — swallowing it into
                # the future would leave the process uninterruptible.
                future.set_exception(
                    ServiceClosedError(
                        f"worker stopped by {type(exc).__name__} "
                        f"during a {kind} request"
                    )
                )
                raise
            except Exception as exc:  # surfaced via the future
                with self._lock:
                    self._failed += 1
                future.set_exception(exc)
            else:
                future.set_result(result)
            finished = self._clock()
            with self._lock:
                self._completed += 1
                self._kind_counts[kind] += 1
                self._latencies[kind].append(finished - queued_at)
                self._completions.append(finished)

    # ------------------------------------------------------------------
    # typed requests (synchronous wrappers over submit)
    # ------------------------------------------------------------------

    def fit(
        self, name: str, addresses, width: int = 32, **fit_kwargs
    ) -> ModelEntry:
        """Fit and register a model (a queued request like any other)."""
        return self.submit(
            "fit",
            lambda: self.registry.fit(
                name, addresses, width=width, **fit_kwargs
            ),
        ).result()

    def register(self, name: str, analysis) -> ModelEntry:
        """Register an already-fitted analysis (inline: no fit cost)."""
        return self.registry.register(name, analysis)

    def open_session(
        self,
        model: str,
        client: str,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = True,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> ManagedSession:
        """Get-or-create the client's warm stream (inline bookkeeping).

        Defaults to ``exclude_training=True`` — the §5.5 contract that
        served candidates never repeat the model's training rows.
        """
        return self.sessions.open(
            model,
            client,
            seed=seed,
            exclude=exclude,
            exclude_training=exclude_training,
            capacity=capacity,
            backend=backend,
            workers=workers,
            exec_backend=exec_backend,
        )

    def generate(
        self,
        model: str,
        client: str,
        n: int,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = True,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> AddressSet:
        """Serve the next ``n`` candidates of ``(model, client)``'s
        stream; blocks for the result.  See :meth:`generate_async`."""
        return self.generate_async(
            model,
            client,
            n,
            seed=seed,
            exclude=exclude,
            exclude_training=exclude_training,
            capacity=capacity,
            backend=backend,
            workers=workers,
            exec_backend=exec_backend,
        ).result()

    def generate_async(
        self,
        model: str,
        client: str,
        n: int,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = True,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> "Future":
        """Queue a generate request; the future resolves to the
        :class:`AddressSet`.

        The session open/get happens inside the request (on the worker
        thread), so first-touch session construction is paid under the
        same accounting as the draw.  Open parameters only shape a
        *new* stream; an existing live session ignores them.
        """
        session = None
        try:
            session = self.sessions.get(model, client)
        except KeyError:
            pass

        def run() -> AddressSet:
            live = session
            if live is None or live.closed:
                live = self.open_session(
                    model,
                    client,
                    seed=seed,
                    exclude=exclude,
                    exclude_training=exclude_training,
                    capacity=capacity,
                    backend=backend,
                    workers=workers,
                    exec_backend=exec_backend,
                )
            return live.generate(n, workers=workers)

        return self.submit("generate", run)

    def membership(
        self, model: str, client: str, rows: ExcludeLike
    ) -> np.ndarray:
        """Which of ``rows`` the client's stream has already retired
        (seed exclusions or previously served candidates)."""
        session = self.sessions.get(model, client)
        return self.submit(
            "membership", lambda: session.membership(rows)
        ).result()

    def report(
        self,
        model: str,
        title: Optional[str] = None,
        n_candidates: int = 10,
        seed: int = 0,
    ) -> str:
        """Render the full §1 analyst report for a registered model."""
        from repro.core.report import full_report

        entry = self.registry.get(model)

        def run() -> str:
            return full_report(
                entry.analysis,
                title=title or f"Entropy/IP report: {model}",
                n_candidates=n_candidates,
                rng=np.random.default_rng(seed),
            )

        return self.submit("report", run).result()

    def close_session(self, model: str, client: str) -> bool:
        """Explicitly close one client stream."""
        return self.sessions.close(model, client)

    def rollover_session(self, model: str, client: str) -> ManagedSession:
        """Restart one client stream (same spec/seed, fresh state)."""
        return self.sessions.rollover(model, client)

    # ------------------------------------------------------------------
    # the streaming-ingest plane
    # ------------------------------------------------------------------

    def open_ingest(self, model: str, config=None):
        """Get-or-create the streaming-ingest pipeline for ``model``.

        One pipeline per registered model name: it folds arriving
        batches into cached sufficient statistics and, on drift,
        refits and rolls the new version into this service's registry
        and live sessions (:class:`~repro.ingest.pipeline.IngestPipeline`).
        ``config`` (an :class:`~repro.ingest.pipeline.IngestConfig`)
        only shapes a *newly created* pipeline; an existing one keeps
        its configuration.
        """
        from repro.ingest import IngestPipeline

        with self._pipelines_lock:
            pipeline = self._pipelines.get(model)
            if pipeline is None:
                entry = self.registry.get(model)
                pipeline = IngestPipeline(
                    entry.name,
                    entry.analysis,
                    config=config,
                    registry=self.registry,
                    sessions=self.sessions,
                )
                self._pipelines[model] = pipeline
            return pipeline

    def restore_ingest(self, payload: dict, config=None):
        """Install a streaming-ingest pipeline restored from an
        :meth:`~repro.ingest.pipeline.IngestPipeline.snapshot` payload.

        The restored pipeline is wired to this service's registry and
        session manager (its analysis is re-registered, so a resumed
        feed rolls refits into live streams exactly like an
        uninterrupted one) and replaces any pipeline already open for
        the same model name — a resume supersedes whatever a restarted
        process built up.
        """
        from repro.ingest import IngestPipeline

        pipeline = IngestPipeline.restore(
            payload,
            config=config,
            registry=self.registry,
            sessions=self.sessions,
        )
        with self._pipelines_lock:
            self._pipelines[pipeline.name] = pipeline
        return pipeline

    def ingest(self, model: str, rows):
        """Feed one batch of arriving addresses into ``model``'s
        streaming-ingest pipeline; blocks for the
        :class:`~repro.ingest.pipeline.IngestReport`.

        Queued like any other request — the bounded work queue is the
        ingest backpressure boundary too, so a producer outrunning the
        service sees :class:`ServiceOverloadedError` instead of an
        unbounded backlog.
        """
        pipeline = self.open_ingest(model)
        return self.submit("ingest", lambda: pipeline.ingest(rows)).result()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service counters and latency percentiles.

        ``requests_per_second`` is measured over the retained window of
        completion timestamps; ``p50_ms``/``p99_ms`` per request kind
        over the same window.  All numbers are wall-clock *including*
        queue wait — the latency a caller actually observes.
        """
        with self._lock:
            kinds = {}
            for kind in REQUEST_KINDS:
                samples = self._latencies[kind]
                activity = (
                    self._kind_counts[kind]
                    + self._timeouts[kind]
                    + self._shed[kind]
                    + self._retried[kind]
                )
                if activity == 0:
                    continue
                entry = {"requests": self._kind_counts[kind]}
                if self._timeouts[kind]:
                    entry["timeouts"] = self._timeouts[kind]
                if self._shed[kind]:
                    entry["shed"] = self._shed[kind]
                if self._retried[kind]:
                    entry["retries"] = self._retried[kind]
                if samples:
                    values = np.asarray(samples, dtype=np.float64)
                    entry["p50_ms"] = round(
                        float(np.percentile(values, 50)) * 1e3, 3
                    )
                    entry["p99_ms"] = round(
                        float(np.percentile(values, 99)) * 1e3, 3
                    )
                kinds[kind] = entry
            completions = list(self._completions)
            rate = 0.0
            if len(completions) >= 2:
                span = completions[-1] - completions[0]
                if span > 0:
                    rate = round((len(completions) - 1) / span, 2)
            return {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "timeouts": sum(self._timeouts.values()),
                "retries": sum(self._retried.values()),
                "pending": self._queue.qsize(),
                "max_pending": self._max_pending,
                "workers": len(self._threads),
                "requests_per_second": rate,
                "kinds": kinds,
                "registry": self.registry.stats(),
                "sessions": self.sessions.stats(),
            }

    def health(self) -> dict:
        """A compact liveness/ops summary — the ``health`` verb of the
        serve protocol.

        Everything an operator needs at a glance: queue depth against
        its bound, worker count, shed/timeout/retry totals, the exec
        layer's mid-run retry and process→thread degradation counters
        aggregated across live sessions, and the registered models
        with their current versions.
        """
        with self._lock:
            depth = self._queue.qsize()
            summary = {
                "status": "closed" if self._closed else "ok",
                "pending": depth,
                "max_pending": self._max_pending,
                "workers": len(self._threads),
                "timeouts": sum(self._timeouts.values()),
                "shed": self._rejected,
                "retries": sum(self._retried.values()),
            }
        summary["exec"] = self.sessions.exec_stats()
        summary["models"] = self.registry.versions()
        return summary

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(
        self,
        wait: bool = True,
        timeout: Optional[float] = DEFAULT_CLOSE_TIMEOUT,
    ) -> bool:
        """Stop accepting requests; drain queued work, stop workers.

        The drain runs under a deadline: ``timeout`` bounds the total
        time spent waiting for workers (seconds; ``None`` waits
        forever — the pre-deadline behavior).  A request wedged past
        the deadline no longer hangs shutdown: close returns ``False``
        with the stuck worker left behind (daemonic, so process exit
        is never blocked), instead of ``True`` for a clean full drain.

        When the service owns its session manager (it was not passed a
        shared one), every live session is closed too, releasing the
        sessions' worker pool threads/processes — a closed service
        leaves nothing running.
        """
        with self._lock:
            if self._closed:
                return True
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        drained = True
        if wait:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            for thread in self._threads:
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                thread.join(remaining)
                if thread.is_alive():
                    drained = False
        if self._owns_sessions:
            self.sessions.close_all()
        return drained

    def __enter__(self) -> "HitlistService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"HitlistService(workers={len(self._threads)}, "
            f"max_pending={self._max_pending}, "
            f"models={len(self.registry)}, sessions={len(self.sessions)})"
        )
