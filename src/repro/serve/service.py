"""The hitlist-as-a-service facade: concurrent requests over warm state.

The top runtime layer.  :class:`HitlistService` fronts a
:class:`~repro.serve.registry.ModelRegistry` and a
:class:`~repro.serve.lifecycle.SessionManager` with a **bounded work
queue** and a small worker-thread pool, serving the three §5.5-shaped
request families concurrently:

- ``generate``  — "next N candidates for network X, excluding what
  this client has seen" (a warm session's stream);
- ``membership`` — "which of these rows has this client's stream
  already retired";
- ``fit`` / ``report`` — "fit this seed set" / "render the full
  analyst report".

Backpressure is explicit: at most ``max_pending`` requests queue; a
submission past that raises :class:`ServiceOverloadedError` immediately
instead of growing an unbounded backlog (the caller sheds load or
retries — the queue never does).  Every request's queue wait and
service time are recorded; :meth:`HitlistService.stats` reports
per-kind counts, p50/p99 latency and completed requests/s — the
serving-side analogue of the addr/s benchmark stages.

Determinism is inherited from the layers below: a served generate
stream is bit-identical to the direct
``AddressModel.session()``/``generate_set`` path for the same (seed,
workers, backend), because the service *is* that path plus queuing —
asserted by the threaded stress suite and the ``service_throughput``
benchmark stage.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.model import ExcludeLike
# Defined in the consolidated hierarchy (repro.errors); re-exported
# here because this module is their historical home.
from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.ipv6.backends import BackendSpec
from repro.ipv6.sets import AddressSet
from repro.serve.lifecycle import ManagedSession, SessionManager
from repro.serve.registry import ModelEntry, ModelRegistry

#: Request kinds with dedicated latency accounting.
REQUEST_KINDS = ("generate", "membership", "fit", "ingest", "report", "other")

_SHUTDOWN = object()


class HitlistService:
    """Thread-safe serving facade over warm models and sessions.

    ``workers`` sizes the executor pool (requests already queued run
    concurrently up to this); ``max_pending`` bounds the work queue —
    the backpressure knob; ``latency_window`` bounds the per-kind
    latency samples kept for percentile reporting.

    The service owns its registry/session-manager by default; passing
    shared ones composes (e.g. several services over one registry).
    Use as a context manager or call :meth:`close` — worker threads
    are non-daemonic bookkeeping-wise but shut down cleanly.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        sessions: Optional[SessionManager] = None,
        workers: int = 2,
        max_pending: int = 64,
        latency_window: int = 2048,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be positive, got {max_pending}"
            )
        self.registry = registry if registry is not None else ModelRegistry()
        # When the service built its own manager it also owns the
        # sessions' worker pools: close() shuts them down.  A shared
        # manager outlives any one service, so its owner closes it.
        self._owns_sessions = sessions is None
        self.sessions = (
            sessions
            if sessions is not None
            else SessionManager(self.registry)
        )
        self._clock = clock
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._max_pending = max_pending
        self._lock = threading.Lock()
        self._closed = False
        self._rejected = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        #: (queue wait + service) latency samples per request kind.
        self._latencies: Dict[str, deque] = {
            kind: deque(maxlen=latency_window) for kind in REQUEST_KINDS
        }
        self._kind_counts: Dict[str, int] = {
            kind: 0 for kind in REQUEST_KINDS
        }
        #: Completion timestamps for the requests/s window.
        self._completions: deque = deque(maxlen=latency_window)
        #: model name -> live streaming-ingest pipeline (lazy import of
        #: repro.ingest keeps serving importable on its own).
        self._pipelines: Dict[str, object] = {}
        self._pipelines_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"hitlist-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # the request plane
    # ------------------------------------------------------------------

    def submit(self, kind: str, fn: Callable[[], object]) -> "Future":
        """Enqueue ``fn`` as a ``kind`` request; returns its future.

        The one entry point every typed request goes through: the
        bounded queue is the backpressure boundary, so a full queue
        raises :class:`ServiceOverloadedError` *here*, synchronously —
        the caller knows immediately, holding no ticket.
        """
        if kind not in REQUEST_KINDS:
            kind = "other"
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            future: "Future" = Future()
            item = (future, kind, fn, self._clock())
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self._rejected += 1
                raise ServiceOverloadedError(
                    f"work queue full ({self._max_pending} pending)"
                ) from None
            self._submitted += 1
            return future

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            future, kind, fn, queued_at = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = fn()
            except BaseException as exc:  # surfaced via the future
                with self._lock:
                    self._failed += 1
                future.set_exception(exc)
            else:
                future.set_result(result)
            finished = self._clock()
            with self._lock:
                self._completed += 1
                self._kind_counts[kind] += 1
                self._latencies[kind].append(finished - queued_at)
                self._completions.append(finished)

    # ------------------------------------------------------------------
    # typed requests (synchronous wrappers over submit)
    # ------------------------------------------------------------------

    def fit(
        self, name: str, addresses, width: int = 32, **fit_kwargs
    ) -> ModelEntry:
        """Fit and register a model (a queued request like any other)."""
        return self.submit(
            "fit",
            lambda: self.registry.fit(
                name, addresses, width=width, **fit_kwargs
            ),
        ).result()

    def register(self, name: str, analysis) -> ModelEntry:
        """Register an already-fitted analysis (inline: no fit cost)."""
        return self.registry.register(name, analysis)

    def open_session(
        self,
        model: str,
        client: str,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = True,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> ManagedSession:
        """Get-or-create the client's warm stream (inline bookkeeping).

        Defaults to ``exclude_training=True`` — the §5.5 contract that
        served candidates never repeat the model's training rows.
        """
        return self.sessions.open(
            model,
            client,
            seed=seed,
            exclude=exclude,
            exclude_training=exclude_training,
            capacity=capacity,
            backend=backend,
            workers=workers,
            exec_backend=exec_backend,
        )

    def generate(
        self,
        model: str,
        client: str,
        n: int,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = True,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> AddressSet:
        """Serve the next ``n`` candidates of ``(model, client)``'s
        stream; blocks for the result.  See :meth:`generate_async`."""
        return self.generate_async(
            model,
            client,
            n,
            seed=seed,
            exclude=exclude,
            exclude_training=exclude_training,
            capacity=capacity,
            backend=backend,
            workers=workers,
            exec_backend=exec_backend,
        ).result()

    def generate_async(
        self,
        model: str,
        client: str,
        n: int,
        seed: int = 0,
        exclude: Optional[ExcludeLike] = None,
        exclude_training: bool = True,
        capacity: int = 0,
        backend: BackendSpec = None,
        workers: Optional[int] = None,
        exec_backend: Optional[str] = None,
    ) -> "Future":
        """Queue a generate request; the future resolves to the
        :class:`AddressSet`.

        The session open/get happens inside the request (on the worker
        thread), so first-touch session construction is paid under the
        same accounting as the draw.  Open parameters only shape a
        *new* stream; an existing live session ignores them.
        """
        session = None
        try:
            session = self.sessions.get(model, client)
        except KeyError:
            pass

        def run() -> AddressSet:
            live = session
            if live is None or live.closed:
                live = self.open_session(
                    model,
                    client,
                    seed=seed,
                    exclude=exclude,
                    exclude_training=exclude_training,
                    capacity=capacity,
                    backend=backend,
                    workers=workers,
                    exec_backend=exec_backend,
                )
            return live.generate(n, workers=workers)

        return self.submit("generate", run)

    def membership(
        self, model: str, client: str, rows: ExcludeLike
    ) -> np.ndarray:
        """Which of ``rows`` the client's stream has already retired
        (seed exclusions or previously served candidates)."""
        session = self.sessions.get(model, client)
        return self.submit(
            "membership", lambda: session.membership(rows)
        ).result()

    def report(
        self,
        model: str,
        title: Optional[str] = None,
        n_candidates: int = 10,
        seed: int = 0,
    ) -> str:
        """Render the full §1 analyst report for a registered model."""
        from repro.core.report import full_report

        entry = self.registry.get(model)

        def run() -> str:
            return full_report(
                entry.analysis,
                title=title or f"Entropy/IP report: {model}",
                n_candidates=n_candidates,
                rng=np.random.default_rng(seed),
            )

        return self.submit("report", run).result()

    def close_session(self, model: str, client: str) -> bool:
        """Explicitly close one client stream."""
        return self.sessions.close(model, client)

    def rollover_session(self, model: str, client: str) -> ManagedSession:
        """Restart one client stream (same spec/seed, fresh state)."""
        return self.sessions.rollover(model, client)

    # ------------------------------------------------------------------
    # the streaming-ingest plane
    # ------------------------------------------------------------------

    def open_ingest(self, model: str, config=None):
        """Get-or-create the streaming-ingest pipeline for ``model``.

        One pipeline per registered model name: it folds arriving
        batches into cached sufficient statistics and, on drift,
        refits and rolls the new version into this service's registry
        and live sessions (:class:`~repro.ingest.pipeline.IngestPipeline`).
        ``config`` (an :class:`~repro.ingest.pipeline.IngestConfig`)
        only shapes a *newly created* pipeline; an existing one keeps
        its configuration.
        """
        from repro.ingest import IngestPipeline

        with self._pipelines_lock:
            pipeline = self._pipelines.get(model)
            if pipeline is None:
                entry = self.registry.get(model)
                pipeline = IngestPipeline(
                    entry.name,
                    entry.analysis,
                    config=config,
                    registry=self.registry,
                    sessions=self.sessions,
                )
                self._pipelines[model] = pipeline
            return pipeline

    def ingest(self, model: str, rows):
        """Feed one batch of arriving addresses into ``model``'s
        streaming-ingest pipeline; blocks for the
        :class:`~repro.ingest.pipeline.IngestReport`.

        Queued like any other request — the bounded work queue is the
        ingest backpressure boundary too, so a producer outrunning the
        service sees :class:`ServiceOverloadedError` instead of an
        unbounded backlog.
        """
        pipeline = self.open_ingest(model)
        return self.submit("ingest", lambda: pipeline.ingest(rows)).result()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Service counters and latency percentiles.

        ``requests_per_second`` is measured over the retained window of
        completion timestamps; ``p50_ms``/``p99_ms`` per request kind
        over the same window.  All numbers are wall-clock *including*
        queue wait — the latency a caller actually observes.
        """
        with self._lock:
            kinds = {}
            for kind in REQUEST_KINDS:
                samples = self._latencies[kind]
                if self._kind_counts[kind] == 0:
                    continue
                entry = {"requests": self._kind_counts[kind]}
                if samples:
                    values = np.asarray(samples, dtype=np.float64)
                    entry["p50_ms"] = round(
                        float(np.percentile(values, 50)) * 1e3, 3
                    )
                    entry["p99_ms"] = round(
                        float(np.percentile(values, 99)) * 1e3, 3
                    )
                kinds[kind] = entry
            completions = list(self._completions)
            rate = 0.0
            if len(completions) >= 2:
                span = completions[-1] - completions[0]
                if span > 0:
                    rate = round((len(completions) - 1) / span, 2)
            return {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "pending": self._queue.qsize(),
                "max_pending": self._max_pending,
                "workers": len(self._threads),
                "requests_per_second": rate,
                "kinds": kinds,
                "registry": self.registry.stats(),
                "sessions": self.sessions.stats(),
            }

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain queued work, stop workers.

        When the service owns its session manager (it was not passed a
        shared one), every live session is closed too, releasing the
        sessions' worker pool threads/processes — a closed service
        leaves nothing running.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()
        if self._owns_sessions:
            self.sessions.close_all()

    def __enter__(self) -> "HitlistService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"HitlistService(workers={len(self._threads)}, "
            f"max_pending={self._max_pending}, "
            f"models={len(self.registry)}, sessions={len(self.sessions)})"
        )
