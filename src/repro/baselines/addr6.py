"""Stateless IID classification à la RFC 7707 / the SI6 ``addr6`` tool.

Section 1 of the paper calls out exactly this approach as error-prone:

    "the reasonable, but stateless, rules to detect pseudo-random IIDs
    implemented in the addr6 tool misclassify
    2001:db8:221:ffff:ffff:ffff:ffc0:122a as having a randomized IID
    even when it is accompanied by one thousand other similarly
    constructed addresses in the 2001:db8:221:ffff:ffff:ffff:ff::/104
    prefix."

We implement the classifier faithfully (per-address, no context) so the
benchmark suite can demonstrate the misclassification and show that
Entropy/IP's set-level entropy analysis gets the same case right.
"""

from __future__ import annotations

import enum
from typing import Union

from repro.ipv6.address import IPv6Address
from repro.ipv6.eui64 import decode_ipv4_decimal_words, is_eui64_iid


class IIDClass(enum.Enum):
    """addr6-style interface-identifier classes."""

    EUI64 = "ieee-derived"
    EMBEDDED_IPV4 = "embedded-ipv4"
    EMBEDDED_PORT = "embedded-port"
    LOW_BYTE = "low-byte"
    PATTERN_BYTES = "pattern-bytes"
    RANDOMIZED = "randomized"


#: Well-known service ports addr6 looks for in the low word — both as
#: plain integers and as the hex words that *display* as the port
#: number (operators write ``::443`` meaning HTTPS, which is 0x443).
_PORT_NUMBERS = (21, 22, 25, 53, 80, 123, 443, 8080)
_SERVICE_PORTS = frozenset(_PORT_NUMBERS) | frozenset(
    int(str(port), 16) for port in _PORT_NUMBERS
)


def classify_iid(iid: int) -> IIDClass:
    """Classify a 64-bit IID using only the IID itself (stateless).

    Rules, in addr6's priority order:

    1. ``ff:fe`` in the middle → IEEE-derived (Modified EUI-64);
    2. decodable base-10 octets per word, or hex IPv4 in the low 32
       bits with zeros above → embedded IPv4;
    3. low word equals a well-known service port, rest zeros → port;
    4. only the low byte (plus at most the second-low nybble) set →
       low-byte;
    5. few distinct bytes / repeated bytes → pattern-bytes;
    6. otherwise → randomized.
    """
    if not 0 <= iid < (1 << 64):
        raise ValueError(f"IID out of range: {iid}")
    if is_eui64_iid(iid):
        return IIDClass.EUI64
    if decode_ipv4_decimal_words(iid) is not None and iid >> 48 != 0:
        return IIDClass.EMBEDDED_IPV4
    if (iid >> 32) == 0 and iid > 0xFFFF:
        # Hex-embedded IPv4 in the low 32 bits: plausible dotted quad.
        octets = [(iid >> (8 * k)) & 0xFF for k in range(4)]
        if all(o != 0 for o in octets[2:]) or octets[3] != 0:
            return IIDClass.EMBEDDED_IPV4
    if (iid >> 16) == 0 and iid in _SERVICE_PORTS:
        return IIDClass.EMBEDDED_PORT
    if iid <= 0xFFF:
        return IIDClass.LOW_BYTE
    bytes_ = [(iid >> (8 * k)) & 0xFF for k in range(8)]
    distinct = len(set(bytes_))
    if distinct <= 2:
        return IIDClass.PATTERN_BYTES
    return IIDClass.RANDOMIZED


def classify_address(address: Union[IPv6Address, int, str]) -> IIDClass:
    """Classify the IID of a full address (bottom 64 bits)."""
    return classify_iid(IPv6Address(address).interface_identifier())


def looks_predictable(iid_class: IIDClass) -> bool:
    """addr6's implied scanability verdict per class."""
    return iid_class is not IIDClass.RANDOMIZED
