"""Ullrich-et-al.-style recurring-IID-pattern target generation (§2).

The paper positions Entropy/IP against the pattern-based scanning of
Ullrich et al. (ARES 2015): "they algorithmically detect recurring bit
patterns (i.e., structure) in the IID portion of training subsets ...
and then generate candidate targets according to those patterns ...
they assume a surveyor or adversary knows which /64 prefixes to
target."

This baseline reproduces that design point: it learns *per-nybble value
pools* over the bottom 64 bits only, generates IIDs from the product of
those pools, and must be pointed at known /64 prefixes.  The ablation
bench contrasts it with Entropy/IP, which models the whole address and
generates /64s it never saw.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ipv6.sets import AddressSet

#: Number of nybbles in an interface identifier.
_IID_NYBBLES = 16


class IIDPatternModel:
    """Recurring per-nybble value pools over the bottom 64 bits."""

    def __init__(self, pools: Sequence[np.ndarray], weights: Sequence[np.ndarray]):
        if len(pools) != _IID_NYBBLES or len(weights) != _IID_NYBBLES:
            raise ValueError("expected one pool per IID nybble")
        self._pools = [np.asarray(p, dtype=np.int64) for p in pools]
        self._weights = [np.asarray(w, dtype=np.float64) for w in weights]

    @classmethod
    def fit(
        cls, training: AddressSet, min_frequency: float = 0.01
    ) -> "IIDPatternModel":
        """Learn the recurring values of each IID nybble.

        A value recurs if it covers at least ``min_frequency`` of the
        training set; nybbles where nothing recurs (pseudo-random) keep
        all 16 values uniformly.
        """
        if training.width != 32:
            raise ValueError("IID pattern mining needs full addresses")
        n = len(training)
        if n == 0:
            raise ValueError("empty training set")
        pools: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        for position in range(17, 33):
            column = training.column(position)
            counts = np.bincount(column, minlength=16).astype(np.float64)
            recurring = counts / n >= min_frequency
            if recurring.any():
                values = np.nonzero(recurring)[0]
                mass = counts[values]
            else:
                values = np.arange(16)
                mass = np.ones(16)
            pools.append(values)
            weights.append(mass / mass.sum())
        return cls(pools, weights)

    def pattern_space_size(self) -> int:
        """Number of distinct IIDs the learned patterns can produce."""
        size = 1
        for pool in self._pools:
            size *= len(pool)
        return size

    def generate_iids(self, n: int, rng: np.random.Generator) -> List[int]:
        """Draw ``n`` IIDs from the per-nybble pools (independent)."""
        columns = [
            pool[rng.choice(len(pool), size=n, p=weight)]
            for pool, weight in zip(self._pools, self._weights)
        ]
        iids = np.zeros(n, dtype=np.uint64)
        for column in columns:
            iids = (iids << np.uint64(4)) | column.astype(np.uint64)
        return [int(v) for v in iids]

    def generate_targets(
        self,
        prefixes: Sequence[int],
        n: int,
        rng: np.random.Generator,
    ) -> List[int]:
        """Candidate addresses: known /64 prefixes x pattern IIDs.

        ``prefixes`` are 64-bit network identifiers the surveyor already
        knows — the assumption the paper's §2 highlights.  Returns up to
        ``n`` distinct 128-bit addresses.
        """
        if not prefixes:
            raise ValueError("the pattern baseline requires known /64s")
        prefix_array = np.asarray(list(prefixes), dtype=np.uint64)
        seen: Dict[int, None] = {}
        # Bounded rounds: a small pattern space may not hold n distinct
        # targets, in which case we return what exists.
        for _ in range(64):
            if len(seen) >= n:
                break
            batch = min(max(n * 2, 1024), 65536)
            chosen = prefix_array[rng.integers(0, len(prefix_array), size=batch)]
            iids = self.generate_iids(batch, rng)
            for prefix, iid in zip(chosen, iids):
                value = (int(prefix) << 64) | iid
                seen.setdefault(value)
                if len(seen) >= n:
                    break
        return list(seen)[:n]
