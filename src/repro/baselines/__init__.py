"""Baseline methods the paper compares against or improves upon.

- :mod:`repro.baselines.addr6` — the stateless per-address classifier
  of RFC 7707 / the SI6 ``addr6`` tool, whose context-blindness
  motivates Entropy/IP's set-level approach (§1, §2);
- :mod:`repro.baselines.iid_patterns` — an Ullrich-et-al.-style
  recurring-IID-pattern target generator, the §2 comparison point that
  only predicts the bottom 64 bits.
"""

from repro.baselines.addr6 import IIDClass, classify_address, classify_iid
from repro.baselines.iid_patterns import IIDPatternModel

__all__ = [
    "IIDClass",
    "IIDPatternModel",
    "classify_address",
    "classify_iid",
]
