"""Low-level ASCII plotting primitives.

Pure-text building blocks used by :mod:`repro.viz.figures`: horizontal
bars, sparklines, multi-row line plots, and heat-map shading characters.
Everything returns plain strings so outputs are diffable and testable.
"""

from __future__ import annotations

from typing import List, Sequence

#: Shading ramp for heat maps, light to dark.
HEAT_RAMP = " .:-=+*#%@"

#: Eight-level block characters for sparklines.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def heat_char(value: float, low: float = 0.0, high: float = 1.0) -> str:
    """Map a value to a shading character ('.'-ish light → '@' dark)."""
    if high <= low:
        return HEAT_RAMP[0]
    fraction = (value - low) / (high - low)
    fraction = min(max(fraction, 0.0), 1.0)
    index = min(int(fraction * len(HEAT_RAMP)), len(HEAT_RAMP) - 1)
    return HEAT_RAMP[index]


def sparkline(values: Sequence[float], low: float = 0.0, high: float = 1.0) -> str:
    """One-line block-character plot of a numeric series."""
    if high <= low:
        high = low + 1.0
    chars = []
    for value in values:
        fraction = (value - low) / (high - low)
        fraction = min(max(fraction, 0.0), 1.0)
        index = min(int(fraction * len(SPARK_LEVELS)), len(SPARK_LEVELS) - 1)
        chars.append(SPARK_LEVELS[index])
    return "".join(chars)


def bar(value: float, width: int = 40, high: float = 1.0) -> str:
    """A horizontal bar of '#' characters proportional to ``value``."""
    if high <= 0:
        raise ValueError("high must be positive")
    filled = int(round(min(max(value / high, 0.0), 1.0) * width))
    return "#" * filled + " " * (width - filled)


def line_plot(
    series: Sequence[Sequence[float]],
    height: int = 10,
    markers: str = "*o+x",
    low: float = 0.0,
    high: float = 1.0,
) -> List[str]:
    """Plot one or more series as character rows (top row = ``high``).

    Later series draw over earlier ones where they collide.  Returns the
    plot rows without axes; callers add labels.
    """
    if not series or not series[0]:
        return []
    width = max(len(s) for s in series)
    if high <= low:
        high = low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for series_index, values in enumerate(series):
        marker = markers[series_index % len(markers)]
        for x, value in enumerate(values):
            fraction = (value - low) / (high - low)
            fraction = min(max(fraction, 0.0), 1.0)
            y = height - 1 - min(int(fraction * height), height - 1)
            grid[y][x] = marker
    return ["".join(row) for row in grid]
