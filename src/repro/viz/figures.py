"""Figure-level renderings (text analogues of the paper's plots).

Each function returns a multi-line string; the benchmark harness prints
these so every figure in the paper has a regenerable artifact.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.browser import ConditionalBrowser
from repro.core.mining import MinedSegment
from repro.core.pipeline import EntropyIP
from repro.core.windowing import WindowingResult
from repro.viz.ascii import heat_char, line_plot


def render_acr_entropy_plot(
    analysis: EntropyIP, title: str = "", height: int = 12
) -> str:
    """Figs. 6-10 style: entropy ('*') vs 4-bit ACR ('o') per nybble.

    Segment boundaries are marked under the X axis with the segment
    labels, like the dashed lines of Fig. 1(a).
    """
    entropy = analysis.entropy()
    acr = analysis.acr()
    rows = line_plot([list(entropy), list(acr)], height=height, markers="*o")
    width = len(entropy)
    labels = [" "] * width
    for segment in analysis.segments:
        labels[segment.first_nybble - 1] = "|"
        mid = (segment.first_nybble + segment.last_nybble) // 2 - 1
        if labels[mid] == " ":
            labels[mid] = segment.label[0]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"H_S={analysis.total_entropy():.1f}  "
        f"n={len(analysis.address_set)}  (*=entropy, o=4-bit ACR)"
    )
    lines.append("1.0 " + "-" * width)
    lines.extend("    " + row for row in rows)
    lines.append("0.0 " + "-" * width)
    lines.append("    " + "".join(labels))
    lines.append("    bits 0" + " " * (width - 9) + "128"[: max(0, width - 6)])
    return "\n".join(lines)


def render_browser(
    browser: ConditionalBrowser,
    max_rows: int = 8,
    title: str = "",
) -> str:
    """Fig. 1(b,c) style: per-segment value boxes with probabilities."""
    lines: List[str] = []
    if title:
        lines.append(title)
    evidence = browser.evidence_codes()
    if evidence:
        clicks = ", ".join(f"{k}={v}" for k, v in sorted(evidence.items()))
        lines.append(f"conditioned on: {clicks} "
                     f"(P={browser.probability_of_evidence():.3f})")
    else:
        lines.append("unconditioned")
    for label, rows in browser.rows().items():
        ordered = sorted(rows, key=lambda r: -r.probability)[:max_rows]
        lines.append(f"segment {label}:")
        for row in ordered:
            if row.probability < 0.001 and not row.is_evidence:
                continue
            mark = "▶" if row.is_evidence else " "
            shade = heat_char(row.probability)
            lines.append(
                f"  {mark}{shade} {row.code:<6} {row.value_text:<28} "
                f"{100 * row.probability:6.2f}%"
            )
    return "\n".join(lines)


def render_bn_graph(analysis: EntropyIP, highlight: Optional[str] = None) -> str:
    """Fig. 2 style: the segment dependency graph as an edge list.

    ``highlight`` marks the direct parents of one segment (the red edges
    of Fig. 2).
    """
    network = analysis.model.network
    lines = ["Bayesian network structure (parent -> child):"]
    edges = network.edges()
    if not edges:
        lines.append("  (no edges: all segments independent)")
    for parent, child in edges:
        marker = " <== direct influence" if highlight and child == highlight else ""
        lines.append(f"  {parent} -> {child}{marker}")
    for variable in network.variables:
        if highlight == variable:
            parents = network.parents(variable)
            lines.append(
                f"segment {variable} depends directly on: "
                f"{', '.join(parents) if parents else '(nothing)'}"
            )
    return "\n".join(lines)


def render_mining_table(analysis: EntropyIP) -> str:
    """Table 3 style: per-segment codes, values, frequencies."""
    lines = ["Seg.  Code   Value                          Freq."]
    for mined in analysis.encoder.mined_segments:
        segment = mined.segment
        start, end = segment.bits
        header = f"{segment.label} ({start}-{end})"
        lines.append(header)
        nybbles = segment.nybble_count
        for value in mined.values:
            lines.append(
                f"      {value.code:<6} {value.format_value(nybbles):<30} "
                f"{100 * value.frequency:6.2f}%"
            )
    return "\n".join(lines)


def render_segment_histogram(
    mined: MinedSegment,
    analysis: EntropyIP,
    width: int = 64,
) -> str:
    """Fig. 4 style: the segment's value histogram with code annotations."""
    segment = mined.segment
    values = analysis.address_set.segment_values(
        segment.first_nybble, segment.last_nybble
    )
    distinct, counts = np.unique(values, return_counts=True)
    lines = [
        f"histogram of segment {segment.label} "
        f"({len(distinct)} distinct values, annotations = mined codes)"
    ]
    # Bucket the value space into `width` columns.
    cardinality = segment.cardinality
    buckets = np.zeros(width)
    for value, count in zip(distinct, counts):
        bucket = min(int(int(value) / cardinality * width), width - 1)
        buckets[bucket] += count
    top = buckets.max() if buckets.max() > 0 else 1
    lines.append("".join(heat_char(b, 0, top) for b in buckets))
    for element in mined.values:
        low_bucket = min(int(element.low / cardinality * width), width - 1)
        lines.append(
            " " * low_bucket + f"^{element.code} ({100 * element.frequency:.1f}%)"
        )
    return "\n".join(lines)


def render_windowing_map(result: WindowingResult, bit_step: int = 4) -> str:
    """Fig. 5 style: triangular (position x length) heat map."""
    matrix = result.as_matrix(bit_step)
    if matrix.size == 0:
        return "(empty windowing result)"
    top = np.nanmax(matrix)
    lines = [
        f"windowed {result.measure} (rows = window position, "
        f"cols = window length, step {bit_step} bits, max={top:.1f})"
    ]
    rows, cols = matrix.shape
    for r in range(rows):
        cells = []
        for c in range(cols):
            value = matrix[r, c]
            cells.append(" " if np.isnan(value) else heat_char(value, 0, top))
        lines.append(f"{r * bit_step:>4} " + "".join(cells))
    return "\n".join(lines)


def render_mi_heatmap(address_set, normalized: bool = True) -> str:
    """§6 extension: pairwise nybble mutual-information heat map."""
    from repro.stats.mutual_information import mi_matrix

    matrix = mi_matrix(address_set, normalized=normalized)
    top = float(np.nanmax(matrix)) or 1.0
    lines = [
        f"pairwise {'normalized ' if normalized else ''}mutual information "
        f"({address_set.width} nybbles, max={top:.2f})"
    ]
    for i in range(matrix.shape[0]):
        row = "".join(heat_char(matrix[i, j], 0, top)
                      for j in range(matrix.shape[1]))
        lines.append(f"{i + 1:>3} {row}")
    return "\n".join(lines)


def render_snapshot_delta(delta, height: int = 8) -> str:
    """§6 extension: render a temporal comparison of two snapshots."""
    lines = ["temporal snapshot comparison:"]
    lines.append("entropy delta (+ = more random in the later snapshot):")
    shifted = 0.5 + delta.entropy_delta / 2.0  # map [-1,1] -> [0,1]
    rows = line_plot([list(shifted)], height=height, markers="*")
    lines.extend("  " + row for row in rows)
    lines.append(f"  {delta.summary()}")
    for drift in delta.segment_drift:
        marker = "CHANGED" if drift.changed else "stable"
        lines.append(
            f"  segment {drift.label:<3} "
            f"JS={drift.js_divergence:6.3f}  {marker}"
        )
    return "\n".join(lines)
