"""Text visualizations of Entropy/IP's figures.

The paper's system renders an interactive web page; offline we render
deterministic ASCII: entropy/ACR line plots (Figs. 6-10), the
conditional probability browser heat map (Fig. 1b/c), the BN dependency
graph (Fig. 2), the mining histogram (Fig. 4), and the windowing heat
map (Fig. 5).
"""

from repro.viz.ascii import bar, heat_char, line_plot, sparkline
from repro.viz.figures import (
    render_acr_entropy_plot,
    render_mi_heatmap,
    render_snapshot_delta,
    render_bn_graph,
    render_browser,
    render_mining_table,
    render_segment_histogram,
    render_windowing_map,
)

__all__ = [
    "bar",
    "heat_char",
    "line_plot",
    "render_acr_entropy_plot",
    "render_bn_graph",
    "render_browser",
    "render_mi_heatmap",
    "render_mining_table",
    "render_snapshot_delta",
    "render_segment_histogram",
    "render_windowing_map",
    "sparkline",
]
