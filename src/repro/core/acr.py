"""4-bit Aggregate Count Ratio (ACR), normalized to 0-1.

Figures 7-10 plot, next to per-nybble entropy, a "4-bit ACR" derived from
the Multi-Resolution Aggregate analysis of Plonka & Berger [27] (itself
building on Kohler et al. [19]).  The paper's reading of the metric:

    "ACR reveals how much a segment of the address is relevant to
    grouping addresses into areas of the address space.  The higher the
    ACR value, the more pertinent to prefix discrimination a given
    segment is."

We realize this as the per-nybble *branching factor* of the prefix trie,
on a log scale normalized to [0, 1]: with A_i the number of distinct
i-nybble prefixes in the set,

    ACR_i = log16(A_i / A_{i-1})            (A_0 = 1)

- ACR_i = 0 when the i-th nybble never splits any prefix (each
  (i-1)-nybble aggregate extends into exactly one i-nybble aggregate);
- ACR_i = 1 when every aggregate splits 16 ways (maximal discrimination).

This matches the qualitative uses in the paper, e.g. high entropy with
near-zero ACR in client IID bits (each address already unique, so no
further aggregate splitting), and ACR spikes where subnetting happens.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.ipv6.sets import AddressSet


def aggregate_count_ratio(address_set: AddressSet) -> np.ndarray:
    """Normalized 4-bit ACR per nybble position (length = set width).

    >>> s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
    >>> acr = aggregate_count_ratio(s)
    >>> float(acr[0]), float(acr[31]) > 0
    (0.0, True)
    """
    matrix = address_set.matrix
    n, width = matrix.shape
    if n == 0:
        return np.zeros(width, dtype=np.float64)
    result = np.zeros(width, dtype=np.float64)
    previous_count = 1
    # Count distinct prefixes incrementally: hash rows by their first i
    # columns using void views for speed.
    for i in range(1, width + 1):
        block = np.ascontiguousarray(matrix[:, :i])
        view = block.view([("", block.dtype)] * i)
        current_count = len(np.unique(view))
        result[i - 1] = math.log(current_count / previous_count, 16)
        previous_count = current_count
    return result


def acr_from_counts(counts: Sequence[int]) -> np.ndarray:
    """ACR directly from a list of aggregate counts A_1..A_w (A_0 = 1)."""
    counts = list(counts)
    if any(c <= 0 for c in counts):
        raise ValueError("aggregate counts must be positive")
    result = np.zeros(len(counts), dtype=np.float64)
    previous = 1
    for i, count in enumerate(counts):
        if count < previous:
            raise ValueError("aggregate counts must be non-decreasing")
        result[i] = math.log(count / previous, 16)
        previous = count
    return result
