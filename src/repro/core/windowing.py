"""Windowing analysis of entropy (Section 4.5, Fig. 5).

For every possible address window — determined by a starting bit position
and a length, both nybble-aligned — compute the (unnormalized) entropy of
the window's values across the dataset.  Fig. 5 renders these as a
triangular heat map (window length on X, window position on Y).

The paper floats this as "a preliminary idea ... especially useful in
conjunction with ... visual discovery of patterns"; we implement it fully
along with a pluggable variability measure, since §4.5 notes one could
use "a different variability measure than the entropy, e.g. number of
distinct values, inter-quartile range, frequency of the most popular
value".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.ipv6.sets import AddressSet
from repro.stats.entropy import entropy_of_counts

#: A variability measure maps the counts of distinct window values to a
#: single score.
VariabilityMeasure = Callable[[np.ndarray], float]


def entropy_bits(counts: np.ndarray) -> float:
    """Shannon entropy in bits (the Fig. 5 measure)."""
    return entropy_of_counts(counts) / math.log(2)


def distinct_values(counts: np.ndarray) -> float:
    """Number of distinct values in the window."""
    return float(len(counts))


def top_value_frequency(counts: np.ndarray) -> float:
    """Relative frequency of the most popular value (low = variable)."""
    total = counts.sum()
    return float(counts.max() / total) if total else 0.0


MEASURES: Dict[str, VariabilityMeasure] = {
    "entropy": entropy_bits,
    "distinct": distinct_values,
    "top-frequency": top_value_frequency,
}


@dataclass(frozen=True)
class WindowCell:
    """One (position, length) cell of the windowing analysis."""

    position_bits: int
    length_bits: int
    score: float


@dataclass(frozen=True)
class WindowingResult:
    """All cells plus enough metadata to render a Fig. 5-style map."""

    cells: Tuple[WindowCell, ...]
    measure: str
    n_addresses: int

    def as_matrix(self, bit_step: int = 4) -> np.ndarray:
        """Dense (position, length) matrix with NaN for absent cells.

        Rows index window position, columns window length (both in
        ``bit_step`` units, matching the axes of Fig. 5).
        """
        if not self.cells:
            return np.full((0, 0), np.nan)
        max_position = max(c.position_bits for c in self.cells)
        max_length = max(c.length_bits for c in self.cells)
        matrix = np.full(
            (max_position // bit_step + 1, max_length // bit_step + 1), np.nan
        )
        for cell in self.cells:
            matrix[cell.position_bits // bit_step, cell.length_bits // bit_step] = (
                cell.score
            )
        return matrix

    def max_score(self) -> float:
        return max((c.score for c in self.cells), default=0.0)


def windowing_analysis(
    address_set: AddressSet,
    measure: str = "entropy",
    bit_step: int = 4,
    max_window_bits: int = 64,
) -> WindowingResult:
    """Evaluate the variability measure for every nybble-aligned window.

    ``max_window_bits`` bounds window length (the entropy of very wide
    windows saturates at log2 n anyway, and 64 bits keeps the segment
    values vectorizable).
    """
    if measure not in MEASURES:
        raise KeyError(
            f"unknown measure {measure!r}; available: {sorted(MEASURES)}"
        )
    if bit_step % 4 != 0 or bit_step <= 0:
        raise ValueError("bit_step must be a positive multiple of 4")
    score = MEASURES[measure]
    nybble_step = bit_step // 4
    width = address_set.width
    cells: List[WindowCell] = []
    for start in range(0, width, nybble_step):
        for stop in range(start + nybble_step, width + 1, nybble_step):
            if (stop - start) * 4 > max_window_bits:
                continue
            values = address_set.segment_values(start + 1, stop)
            _, counts = np.unique(values, return_counts=True)
            cells.append(
                WindowCell(
                    position_bits=start * 4,
                    length_bits=(stop - start) * 4,
                    score=score(counts.astype(np.float64)),
                )
            )
    return WindowingResult(
        cells=tuple(cells), measure=measure, n_addresses=len(address_set)
    )
