"""The BN address model (Section 4.4) over mined code vectors.

:class:`AddressModel` glues the encoder (Section 4.3) to the Bayesian
network substrate: it learns structure and parameters from a training
set's code matrix, answers conditional queries (the probability browser),
and generates candidate addresses (Section 5.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import forward_sample, likelihood_weighted_sample
from repro.bayes.structure import StructureConfig, learn_structure
from repro.core.encoding import AddressEncoder
from repro.ipv6.sets import AddressSet

#: Evidence may name states by code string ("J1") or by index (0).
EvidenceLike = Mapping[str, Union[str, int]]


class AddressModel:
    """A fitted Entropy/IP statistical model of one address set."""

    def __init__(self, encoder: AddressEncoder, network: BayesianNetwork):
        if list(network.variables) != encoder.variable_names:
            raise ValueError("network variables do not match encoder segments")
        self.encoder = encoder
        self.network = network
        self._inference = VariableElimination(network)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        address_set: AddressSet,
        encoder: AddressEncoder,
        config: StructureConfig = StructureConfig(),
    ) -> "AddressModel":
        """Learn BN structure + parameters from a training set."""
        codes = encoder.encode_set(address_set)
        network = learn_structure(
            codes,
            encoder.variable_names,
            encoder.cardinalities,
            config,
        )
        return cls(encoder, network)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def normalize_evidence(self, evidence: Optional[EvidenceLike]) -> Dict[str, int]:
        """Resolve code strings / indices into state indices."""
        resolved: Dict[str, int] = {}
        for label, state in (evidence or {}).items():
            mined = self._mined_by_label(label)
            if isinstance(state, str):
                try:
                    resolved[label] = mined.codes().index(state)
                except ValueError:
                    raise KeyError(
                        f"unknown code {state!r} for segment {label}"
                    ) from None
            else:
                if not 0 <= int(state) < mined.cardinality:
                    raise IndexError(
                        f"state {state} out of range for segment {label}"
                    )
                resolved[label] = int(state)
        return resolved

    def marginals(
        self, evidence: Optional[EvidenceLike] = None
    ) -> Dict[str, np.ndarray]:
        """Posterior distribution of every non-evidence segment.

        This is the quantity behind the conditional probability browser:
        evidence on any segment reshapes all the others, in both
        directions (evidential reasoning, Fig. 1b→1c).
        """
        return self._inference.all_marginals(self.normalize_evidence(evidence))

    def joint(
        self, labels: Sequence[str], evidence: Optional[EvidenceLike] = None
    ):
        """Joint posterior factor over several segments."""
        return self._inference.query(labels, self.normalize_evidence(evidence))

    def evidence_probability(self, evidence: EvidenceLike) -> float:
        """P(evidence) under the model (e.g. the 60% of Fig. 1b)."""
        return self._inference.evidence_probability(
            self.normalize_evidence(evidence)
        )

    def conditional_probability_table(
        self,
        target: str,
        target_state: Union[str, int],
        given: Sequence[str],
    ) -> Dict[Tuple[int, ...], float]:
        """P(target = state | each joint configuration of ``given``).

        Reproduces Table 2: probability of segment J's value conditional
        on the values of segments H and C.
        """
        target_index = self.normalize_evidence({target: target_state})[target]
        factor = self._inference.query([target] + list(given))
        table: Dict[Tuple[int, ...], float] = {}
        given_cards = [self.network.cardinality(g) for g in given]
        for flat in range(int(np.prod(given_cards)) if given_cards else 1):
            states = []
            remainder = flat
            for card in reversed(given_cards):
                states.append(remainder % card)
                remainder //= card
            states.reverse()
            assignment = {g: s for g, s in zip(given, states)}
            assignment[target] = target_index
            joint_value = factor.value(assignment)
            reduced = factor
            for g, s in zip(given, states):
                reduced = reduced.reduce(g, s)
            denominator = reduced.table.sum()
            table[tuple(states)] = (
                joint_value / denominator if denominator > 0 else 0.0
            )
        return table

    def log_likelihood(self, address_set: AddressSet) -> float:
        """Model log-likelihood of a (held-out) address set's codes."""
        return self.network.log_likelihood(self.encoder.encode_set(address_set))

    # ------------------------------------------------------------------
    # generation (Section 5.5)
    # ------------------------------------------------------------------

    def sample_codes(
        self,
        n: int,
        rng: np.random.Generator,
        evidence: Optional[EvidenceLike] = None,
    ) -> np.ndarray:
        """Draw code vectors from the model."""
        resolved = self.normalize_evidence(evidence)
        if resolved:
            return likelihood_weighted_sample(self.network, n, rng, resolved)
        return forward_sample(self.network, n, rng)

    def generate(
        self,
        n: int,
        rng: np.random.Generator,
        evidence: Optional[EvidenceLike] = None,
        exclude: Optional[Iterable[int]] = None,
        max_batches: int = 64,
    ) -> List[int]:
        """Generate ``n`` distinct candidate values (``width``-nybble ints).

        Candidates in ``exclude`` (typically the training set — the paper
        scans for addresses "not yet seen") are suppressed.  Gives up
        after ``max_batches`` rounds if the model's support is too small
        to produce ``n`` distinct values, returning what it has.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        excluded: Set[int] = set(exclude or ())
        found: List[int] = []
        seen: Set[int] = set()
        batch_size = max(n, 4096)
        for _ in range(max_batches):
            if len(found) >= n:
                break
            codes = self.sample_codes(batch_size, rng, evidence)
            for value in self.encoder.decode_matrix(codes, rng):
                if value in seen or value in excluded:
                    continue
                seen.add(value)
                found.append(value)
                if len(found) >= n:
                    break
        return found

    def generate_set(
        self,
        n: int,
        rng: np.random.Generator,
        evidence: Optional[EvidenceLike] = None,
        exclude: Optional[Iterable[int]] = None,
    ) -> AddressSet:
        """Like :meth:`generate`, packaged as an :class:`AddressSet`."""
        values = self.generate(n, rng, evidence=evidence, exclude=exclude)
        return AddressSet.from_ints(
            values, width=self.encoder.width, already_truncated=True
        )

    # ------------------------------------------------------------------

    def _mined_by_label(self, label: str):
        for mined in self.encoder.mined_segments:
            if mined.segment.label == label:
                return mined
        raise KeyError(f"no segment labeled {label!r}")

    def __repr__(self) -> str:
        return (
            f"AddressModel(segments={len(self.encoder.mined_segments)}, "
            f"edges={len(self.network.edges())})"
        )
