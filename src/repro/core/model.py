"""The BN address model (Section 4.4) over mined code vectors.

:class:`AddressModel` glues the encoder (Section 4.3) to the Bayesian
network substrate: it learns structure and parameters from a training
set's code matrix, answers conditional queries (the probability browser),
and generates candidate addresses (Section 5.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bayes.inference import VariableElimination
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import (
    forward_sample,
    likelihood_weighted_sample,
    sample_packed,
)
from repro.bayes.structure import StructureConfig, learn_structure
from repro.core.encoding import AddressEncoder
# Defined in the consolidated hierarchy (repro.errors); re-exported
# here because this module is its historical home.
from repro.errors import SessionCapacityError
from repro.ipv6.backends import AddressSetBackend, BackendSpec, make_backend
from repro.ipv6.sets import AddressSet, BucketTable, unpack_rows

#: Evidence may name states by code string ("J1") or by index (0).
EvidenceLike = Mapping[str, Union[str, int]]

#: Any accepted form of the generation exclusion set.
ExcludeLike = Union[AddressSet, np.ndarray, Iterable[int]]


def exclude_packed_words(
    exclude: Optional[ExcludeLike], width: int
) -> np.ndarray:
    """Normalize any accepted ``exclude`` form into packed uint64 rows.

    Accepts an :class:`AddressSet` of matching width (zero conversion),
    a pre-packed ``(n, ceil(width/16))`` uint64 word matrix
    (:meth:`AddressSet.packed_rows` form — what the campaign maintains
    incrementally across rounds), or an iterable of ``width``-nybble
    integers; integer values outside ``[0, 16**width)`` can never be
    generated, so they are dropped.
    """
    words_per_row = (width + 15) // 16
    if isinstance(exclude, AddressSet):
        if exclude.width != width:
            raise ValueError(
                f"exclude width {exclude.width} != model width {width}"
            )
        return exclude.packed_rows()
    if isinstance(exclude, np.ndarray) and exclude.ndim == 2:
        # Pre-packed rows (packed_rows form), trusted as-is.
        if exclude.shape[1] != words_per_row or exclude.dtype != np.uint64:
            raise ValueError(
                f"packed exclude must be (n, {words_per_row}) uint64, "
                f"got {exclude.dtype} shape {exclude.shape}"
            )
        return exclude
    bound = 1 << (4 * width)
    return AddressSet.from_ints(
        [
            int(v)
            for v in (exclude if exclude is not None else ())
            if 0 <= v < bound
        ],
        width=width,
        already_truncated=True,
    ).packed_rows()


class GenerationSession:
    """Persistent cross-round exclusion/dedup state for §5.5 campaigns.

    The adaptive scanning loop is inherently *stateful*: probe, fold
    the hits back in, refit, probe again.  A session owns the one
    growing :class:`~repro.ipv6.sets.BucketTable` that serves as the
    combined exclusion + dedup index for the lifetime of that loop —
    seeded once with the initial exclusions (typically the training
    set), then fed each ``generate_set(..., state=session)`` call's
    returned rows (and nothing else, so an oversampled batch's
    overshoot is never permanently excluded).  Per-call cost therefore
    depends only on the batches drawn in that call, never on the
    length of the campaign history; and because the session is
    independent of the model object, an adaptive refit simply reuses
    it — only the BN changed, not the probed universe.

    The output contract is unchanged: a sequence of session-backed
    calls is bit-identical to the legacy pattern of re-passing an
    ever-growing packed ``exclude`` matrix to each call, for any
    worker count.

    ``capacity`` is an **enforceable cap** on total distinct rows the
    session may hold (0 = uncapped).  It still pre-sizes the table —
    steady-state rounds almost never rehash — but it is no longer
    *only* a sizing hint (the pre-PR-7 semantics): seeding, observing,
    or generating past the cap raises :class:`SessionCapacityError`
    with no partial state mutation, so a serving layer can bound each
    client's memory and surface a clean typed error instead of
    unbounded growth.

    A session also owns the campaign's **worker pools**: parallel
    ``generate_set(..., state=session, workers=N)`` calls fetch a
    long-lived :class:`~repro.exec.pool.WorkerPool` from
    :meth:`get_pool` (one per ``(workers, exec_backend)`` pair), so a
    multi-round campaign reuses one executor instead of re-spawning
    threads/processes every round.  :meth:`close` (or the session as a
    context manager) releases them; a closed session's table remains
    readable, and a later parallel call transparently recreates its
    pool.
    """

    __slots__ = ("_width", "_table", "_excluded", "_capacity", "_pools")

    def __init__(
        self,
        width: int,
        exclude: Optional[ExcludeLike] = None,
        capacity: int = 0,
        backend: BackendSpec = None,
    ):
        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        excluded = exclude_packed_words(exclude, width)
        self._width = width
        self._capacity = int(capacity)
        # ``backend`` picks the exclusion-set storage layout (see
        # repro.ipv6.backends): None/"memory" is the flat BucketTable,
        # "sharded64" the per-prefix sharded bank for 100M+-row
        # campaigns.  All backends share exact insert/limit semantics,
        # so the choice never changes which rows a session emits.
        self._table = make_backend(
            backend,
            (width + 15) // 16,
            capacity=max(self._capacity, len(excluded)),
        )
        self._table.insert_packed(excluded)
        self._excluded = len(self._table)
        self._pools: Dict[Tuple[int, str], "object"] = {}
        if self._capacity and self._excluded > self._capacity:
            raise SessionCapacityError(
                f"seed exclusions ({self._excluded} distinct rows) exceed "
                f"session capacity {self._capacity}"
            )

    @property
    def width(self) -> int:
        """Row width (nybbles) every call on this session must match."""
        return self._width

    @property
    def table(self) -> AddressSetBackend:
        """The underlying combined exclusion+dedup store (a
        :class:`~repro.ipv6.sets.BucketTable` by default; see
        :mod:`repro.ipv6.backends` for the alternatives)."""
        return self._table

    @property
    def excluded_rows(self) -> int:
        """Distinct rows folded in as exclusions (seed + ``observe``)."""
        return self._excluded

    @property
    def generated_rows(self) -> int:
        """Distinct rows generated (and therefore retired) so far."""
        return len(self._table) - self._excluded

    @property
    def capacity(self) -> int:
        """The enforceable cap on total distinct rows (0 = uncapped)."""
        return self._capacity

    @property
    def remaining_capacity(self) -> Optional[int]:
        """Rows the session may still admit, or ``None`` if uncapped."""
        if not self._capacity:
            return None
        return self._capacity - len(self._table)

    def __len__(self) -> int:
        """Total distinct rows the session will never emit again."""
        return len(self._table)

    def get_pool(self, workers: Optional[int], exec_backend: Optional[str]):
        """The session's long-lived :class:`~repro.exec.pool.WorkerPool`
        for a ``(workers, exec_backend)`` pair, created on first use.

        Pool construction is cheap (the executor itself is lazy), but
        the executor a pool eventually spawns persists across the
        campaign's generate calls until :meth:`close` — that reuse is
        the point.
        """
        from repro.exec.pool import (
            WorkerPool,
            resolve_exec_backend,
            resolve_workers,
        )

        key = (resolve_workers(workers), resolve_exec_backend(exec_backend))
        pool = self._pools.get(key)
        if pool is None:
            pool = WorkerPool(key[0], backend=key[1])
            self._pools[key] = pool
        return pool

    def close(self) -> None:
        """Release every worker pool's threads/processes (idempotent).

        The exclusion table is untouched — a closed session can still
        be inspected, observed into, or even generated against (a later
        parallel call recreates its pool on demand).
        """
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.close()

    def __enter__(self) -> "GenerationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def exec_stats(self) -> Dict[str, int]:
        """Fault-tolerance counters aggregated over this session's
        worker pools: mid-run executor rebuilds (``retries``) and
        process→thread fallbacks (``degradations``)."""
        stats = {"retries": 0, "degradations": 0}
        for pool in self._pools.values():
            stats["retries"] += pool.retries
            stats["degradations"] += pool.degradations
        return stats

    def snapshot(self) -> dict:
        """The session's complete generation state as plain data.

        The table's stored-rows matrix *is* the session (rehash and
        rollback already rebuild everything from it), so a snapshot is
        that matrix plus the exclusion split and the cap — no backend
        internals, no pool state (pools are lazily recreated).  Pair
        with :meth:`restore`; persist via
        :func:`repro.checkpoint.save_checkpoint`.
        """
        words = np.array(
            self._table.stored_words(), dtype=np.uint64, copy=True
        )
        return {
            "width": self._width,
            "capacity": self._capacity,
            "excluded_rows": self._excluded,
            "words": words,
            "digest": self._table.state_digest(),
        }

    @classmethod
    def restore(
        cls, snapshot: dict, backend: BackendSpec = None
    ) -> "GenerationSession":
        """Rebuild a session from a :meth:`snapshot`.

        Re-inserting the stored rows rebuilds a table with exactly the
        same membership set, exclusion split, and capacity headroom —
        everything generation behavior depends on — so a restored
        session continues exactly where the snapshot left off: with
        the caller resuming the same RNG stream, subsequent draws are
        bit-identical to an uninterrupted run.  The snapshot's
        order-independent state digest is re-verified after the
        rebuild; corruption fails with
        :class:`~repro.errors.CheckpointError` instead of silently
        serving rows the original session had already retired.
        """
        from repro.errors import CheckpointError

        session = cls(
            int(snapshot["width"]),
            capacity=int(snapshot["capacity"]),
            backend=backend,
        )
        words = np.ascontiguousarray(
            np.asarray(snapshot["words"], dtype=np.uint64)
        )
        if len(words):
            session._table.reserve(len(words))
            session._table.insert_packed(words)
        session._excluded = int(snapshot["excluded_rows"])
        expected = snapshot.get("digest")
        if expected is not None and session._table.state_digest() != expected:
            raise CheckpointError(
                "restored session state digest mismatch (wrong storage "
                "backend, or a corrupt snapshot)"
            )
        return session

    def observe(self, exclude: ExcludeLike) -> int:
        """Fold additional exclusions in mid-campaign; returns how many
        of them were actually new to the session.

        On a capacity-capped session an over-cap batch raises
        :class:`SessionCapacityError` and the insert is rolled back
        exactly — the fresh count is only knowable after deduplication,
        so the insert runs reversibly and commits only under the cap.
        """
        words = exclude_packed_words(exclude, self._width)
        if not self._capacity:
            fresh = int(np.count_nonzero(self._table.insert_packed(words)))
            self._excluded += fresh
            return fresh
        mask = self._table.insert_reversible(words)
        if len(self._table) > self._capacity:
            overflow = len(self._table) - self._capacity
            self._table.revert_insert()
            raise SessionCapacityError(
                f"observe batch would exceed session capacity "
                f"{self._capacity} by {overflow} rows"
            )
        self._table.commit_insert()
        fresh = int(np.count_nonzero(mask))
        self._excluded += fresh
        return fresh

    def __repr__(self) -> str:
        cap = f", capacity={self._capacity}" if self._capacity else ""
        return (
            f"GenerationSession(width={self._width}, "
            f"excluded={self._excluded}, generated={self.generated_rows}"
            f"{cap})"
        )


def generation_batch_size(
    need: int, marginal_yield: float, batch_cap: int
) -> int:
    """Oversampled batch size for one generation round.

    Shared by the serial loop and the sharded engine so both converge
    identically: draw enough that the observed marginal yield should
    cover ``need``, plus a 12.5% cushion, floored at 4096 and capped by
    ``batch_cap``.
    """
    return min(
        max(int(need / marginal_yield) + need // 8 + 64, 4096), batch_cap
    )


def run_generation_rounds(
    width: int,
    n: int,
    draw,
    exclude: Optional[ExcludeLike] = None,
    max_batches: int = 64,
    constrained: bool = False,
    state: Optional[GenerationSession] = None,
) -> AddressSet:
    """The §5.5 streaming generation loop, draw strategy abstracted.

    One implementation drives both the serial path
    (:meth:`AddressModel.generate_set`) and the sharded engine
    (:func:`repro.exec.sharded_generate_set`): per round, ask ``draw``
    for ``batch_size`` candidate rows — returned as a ``(matrix,
    packed_words)`` pair, where a fused draw may return ``matrix=None``
    and the loop reconstructs the nybble matrix for the *kept* rows
    only via :func:`~repro.ipv6.sets.unpack_rows` (the exact inverse of
    packing, so output is unchanged) — feed them into a growing
    :class:`~repro.ipv6.sets.BucketTable` that suppresses duplicates
    and ``exclude`` members (already-kept rows are never re-sorted),
    re-estimate the marginal yield to oversample the next round, and
    stop early when the model's effective support is exhausted.  Only
    the drawing differs between callers, so the oversampling policy and
    saturation behavior cannot drift between them.

    ``state`` runs the loop on a persistent :class:`GenerationSession`
    instead of a per-call table: the session's table *is* the dedup
    index, and the rows this call returns stay in it, so the next call
    (or the next campaign round) excludes them automatically without
    anyone re-feeding the probed history.  Batch inserts are bounded by
    the outstanding need, so an oversampled final round's overshoot is
    rolled back rather than retired — the session ends the call holding
    exactly its prior rows plus the rows returned, which keeps
    session-backed sequences bit-identical to the legacy grow-and-repass
    ``exclude`` pattern.

    ``constrained`` marks evidence-constrained draws, which materialize
    an oversample=4 likelihood-weighting pool per batch and therefore
    get a tighter batch cap to keep peak memory at ~4n transient rows.

    Deterministic for a deterministic ``draw``; first-occurrence order
    within the stream is preserved.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    words_per_row = (width + 15) // 16
    if state is not None:
        if exclude is not None:
            raise ValueError(
                "pass exclusions to the GenerationSession, not alongside it"
            )
        if state.width != width:
            raise ValueError(
                f"session width {state.width} != model width {width}"
            )
        remaining = state.remaining_capacity
        if remaining is not None and n > remaining:
            # Generation admits at most n fresh rows (inserts are
            # bounded by the outstanding need), so the cap check is an
            # exact precondition — raised before any draw or insert.
            raise SessionCapacityError(
                f"requested {n} rows but session has capacity for only "
                f"{max(remaining, 0)} more (cap {state.capacity})"
            )
        seen = state.table
    else:
        excluded = exclude_packed_words(exclude, width)
        # Pre-size for the expected final population (kept rows plus
        # exclusions) so the table almost never grows — and therefore
        # never rehashes — mid-campaign.
        seen = BucketTable(words_per_row, capacity=n + len(excluded))
        seen.insert_packed(excluded)
    chunks_matrix: List[np.ndarray] = []
    chunks_words: List[np.ndarray] = []
    kept = 0
    # Marginal yield of distinct non-excluded rows per drawn sample,
    # re-estimated each round and used to oversample the next batch,
    # so the loop converges in a couple of rounds instead of
    # geometrically many.
    marginal_yield = 1.0
    batch_cap = max(n if constrained else 4 * n, 8192)
    for round_index in range(max_batches):
        need = n - kept
        if need <= 0:
            break
        batch_size = generation_batch_size(need, marginal_yield, batch_cap)
        matrix, words = draw(batch_size)
        # Bounded insert: at most ``need`` fresh rows are admitted, so
        # the table never retains overshoot beyond the requested n.
        # The returned rows are identical to the unbounded
        # insert-then-truncate pattern (the limited mask keeps the
        # first ``need`` fresh rows in stream order — exactly the rows
        # truncation kept), and for a persistent session the rollback
        # is what keeps future calls able to re-emit the overshoot.
        fresh = seen.insert_packed(words, limit=need)
        new_found = int(np.count_nonzero(fresh))
        if new_found:
            kept_chunk = words[fresh]
            if matrix is None:
                # Fused draw: the nybble matrix was never built for the
                # batch; materialize it for the kept rows alone.
                chunks_matrix.append(unpack_rows(kept_chunk, width))
            else:
                chunks_matrix.append(matrix[fresh])
            chunks_words.append(kept_chunk)
            kept += new_found
        marginal_yield = max(new_found / batch_size, 1.0 / batch_size)
        # Saturation guard: when the model's effective support is
        # (nearly) exhausted, rounds trickle in a handful of new rows
        # each.  Stop once the remaining rounds cannot plausibly close
        # the gap at the observed marginal yield, returning the partial
        # result instead of burning max-size batches.
        rounds_left = max_batches - round_index - 1
        reachable = marginal_yield * batch_cap * rounds_left
        if new_found == 0 or reachable < n - kept:
            break
    if not chunks_matrix:
        return AddressSet.empty(width)
    kept_matrix = (
        chunks_matrix[0]
        if len(chunks_matrix) == 1
        else np.vstack(chunks_matrix)
    )
    kept_words = (
        chunks_words[0] if len(chunks_words) == 1 else np.vstack(chunks_words)
    )
    # Hand the packed words over with the rows: campaign-style callers
    # fold them straight into their running exclude matrix.
    return AddressSet._with_packed(kept_matrix[:n], kept_words[:n])


class AddressModel:
    """A fitted Entropy/IP statistical model of one address set."""

    def __init__(self, encoder: AddressEncoder, network: BayesianNetwork):
        if list(network.variables) != encoder.variable_names:
            raise ValueError("network variables do not match encoder segments")
        self.encoder = encoder
        self.network = network
        self._inference = VariableElimination(network)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        address_set: AddressSet,
        encoder: AddressEncoder,
        config: StructureConfig = StructureConfig(),
    ) -> "AddressModel":
        """Learn BN structure + parameters from a training set."""
        codes = encoder.encode_set(address_set)
        network = learn_structure(
            codes,
            encoder.variable_names,
            encoder.cardinalities,
            config,
        )
        return cls(encoder, network)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def normalize_evidence(self, evidence: Optional[EvidenceLike]) -> Dict[str, int]:
        """Resolve code strings / indices into state indices."""
        resolved: Dict[str, int] = {}
        for label, state in (evidence or {}).items():
            mined = self._mined_by_label(label)
            if isinstance(state, str):
                try:
                    resolved[label] = mined.codes().index(state)
                except ValueError:
                    raise KeyError(
                        f"unknown code {state!r} for segment {label}"
                    ) from None
            else:
                if not 0 <= int(state) < mined.cardinality:
                    raise IndexError(
                        f"state {state} out of range for segment {label}"
                    )
                resolved[label] = int(state)
        return resolved

    def marginals(
        self, evidence: Optional[EvidenceLike] = None
    ) -> Dict[str, np.ndarray]:
        """Posterior distribution of every non-evidence segment.

        This is the quantity behind the conditional probability browser:
        evidence on any segment reshapes all the others, in both
        directions (evidential reasoning, Fig. 1b→1c).
        """
        return self._inference.all_marginals(self.normalize_evidence(evidence))

    def joint(
        self, labels: Sequence[str], evidence: Optional[EvidenceLike] = None
    ):
        """Joint posterior factor over several segments."""
        return self._inference.query(labels, self.normalize_evidence(evidence))

    def evidence_probability(self, evidence: EvidenceLike) -> float:
        """P(evidence) under the model (e.g. the 60% of Fig. 1b)."""
        return self._inference.evidence_probability(
            self.normalize_evidence(evidence)
        )

    def conditional_probability_table(
        self,
        target: str,
        target_state: Union[str, int],
        given: Sequence[str],
    ) -> Dict[Tuple[int, ...], float]:
        """P(target = state | each joint configuration of ``given``).

        Reproduces Table 2: probability of segment J's value conditional
        on the values of segments H and C.
        """
        target_index = self.normalize_evidence({target: target_state})[target]
        factor = self._inference.query([target] + list(given))
        table: Dict[Tuple[int, ...], float] = {}
        given_cards = [self.network.cardinality(g) for g in given]
        for flat in range(int(np.prod(given_cards)) if given_cards else 1):
            states = []
            remainder = flat
            for card in reversed(given_cards):
                states.append(remainder % card)
                remainder //= card
            states.reverse()
            assignment = {g: s for g, s in zip(given, states)}
            assignment[target] = target_index
            joint_value = factor.value(assignment)
            reduced = factor
            for g, s in zip(given, states):
                reduced = reduced.reduce(g, s)
            denominator = reduced.table.sum()
            table[tuple(states)] = (
                joint_value / denominator if denominator > 0 else 0.0
            )
        return table

    def log_likelihood(self, address_set: AddressSet) -> float:
        """Model log-likelihood of a (held-out) address set's codes."""
        return self.network.log_likelihood(self.encoder.encode_set(address_set))

    # ------------------------------------------------------------------
    # generation (Section 5.5)
    # ------------------------------------------------------------------

    def sample_codes(
        self,
        n: int,
        rng: np.random.Generator,
        evidence: Optional[EvidenceLike] = None,
    ) -> np.ndarray:
        """Draw code vectors from the model."""
        resolved = self.normalize_evidence(evidence)
        if resolved:
            return likelihood_weighted_sample(self.network, n, rng, resolved)
        return forward_sample(self.network, n, rng)

    def session(
        self,
        exclude: Optional[ExcludeLike] = None,
        capacity: int = 0,
        backend: BackendSpec = None,
    ) -> GenerationSession:
        """Open a persistent :class:`GenerationSession` for this model's
        width, seeded with ``exclude``.

        The session is the steady-state campaign primitive: pass it as
        ``generate_set(..., state=session)`` and every returned row is
        retired from all future calls — across rounds *and across
        adaptive refits* (a refitted model of the same width reuses the
        session unchanged).  ``capacity`` is an enforceable cap on the
        session's total distinct rows (0 = uncapped) — exceeding it
        raises :class:`SessionCapacityError`; it also pre-sizes the
        table (e.g. to the campaign's probe budget) so steady-state
        rounds almost never rehash.  ``backend`` picks the
        exclusion-store layout
        (``"memory"``/``"sharded64"``, see :mod:`repro.ipv6.backends`);
        emitted rows are identical for every backend.
        """
        return GenerationSession(
            self.encoder.width,
            exclude=exclude,
            capacity=capacity,
            backend=backend,
        )

    def generate_set(
        self,
        n: int,
        rng: np.random.Generator,
        evidence: Optional[EvidenceLike] = None,
        exclude: Optional[ExcludeLike] = None,
        max_batches: int = 64,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        state: Optional[GenerationSession] = None,
        fused: Optional[bool] = None,
        exec_backend: Optional[str] = None,
    ) -> AddressSet:
        """Generate ``n`` distinct candidate rows as an :class:`AddressSet`.

        The batched streaming hot path of §5.5: each round draws a
        batch from the BN and suppresses duplicates and ``exclude``
        members (typically the training set — the paper scans for
        addresses "not yet seen") by feeding each batch into a growing
        :class:`~repro.ipv6.sets.BucketTable`: already-kept rows are
        never re-sorted, so a saturated multi-round run pays for each
        drawn row once.  No stage round-trips through per-row Python.

        ``fused`` controls how a batch is drawn.  By default
        (``None``), unconstrained draws whose encoder has a fused plan
        (:meth:`AddressEncoder.fused_plan`) run
        :func:`~repro.bayes.sampling.sample_packed`, which lands BN
        states directly in packed uint64 words — skipping the
        ``(vars, n)`` codes matrix, the nybble matrix, and the whole
        :meth:`~repro.core.encoding.AddressEncoder.decode_to_set` pass.
        The fused draw consumes the RNG stream in exactly the two-step
        order, so output is bit-identical.  ``fused=False`` forces the
        retained two-step :meth:`sample_codes` →
        :meth:`decode_to_set <repro.core.encoding.AddressEncoder.decode_to_set>`
        reference; ``fused=True`` insists on fusion where possible
        (evidence-constrained draws and planless encoders still fall
        back to the reference — fusion is an implementation detail,
        never a behavior change).

        ``exclude`` is ideally an :class:`AddressSet` of matching width,
        which feeds the dedup directly with zero conversion, or a
        pre-packed ``(n, ceil(width/16))`` uint64 word matrix
        (:meth:`AddressSet.packed_rows` form); an iterable of
        ``width``-nybble integers is also accepted for compatibility.

        ``state`` replaces ``exclude`` with a persistent
        :class:`GenerationSession` (see :meth:`session`): the session
        already holds everything excluded or previously generated, and
        this call's returned rows are folded into it — the multi-round
        campaign pattern, with per-call cost independent of how much
        history the session carries.

        ``workers``/``shards`` switch to the sharded parallel engine
        (:func:`repro.exec.sharded_generate_set`): each batch is split
        into ``shards`` fixed sub-draws with independent
        ``SeedSequence``-spawned RNG streams executed across ``workers``
        threads (``exec_backend="thread"``, the default) or worker
        processes (``exec_backend="process"``, for real multi-core
        scaling past the GIL).  The output depends only on ``(rng,
        shards)`` — any worker count and either backend produce
        bit-identical rows.  ``exec_backend`` is a pure throughput
        knob: it only places shards the ``workers``/``shards``
        arguments created, never selects the sharded route by itself,
        so with ``workers`` and ``shards`` both ``None`` the serial
        single-stream path below runs and ``exec_backend`` is ignored
        (there are no shards to place).

        Deterministic for a fixed ``rng``; first-occurrence order within
        the stream is preserved.  Gives up after ``max_batches`` rounds
        if the model's support is too small to produce ``n`` distinct
        rows, returning what it has.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        # exec_backend deliberately does NOT select the sharded route:
        # sharding changes the RNG stream (by documented design), while
        # exec_backend is a pure throughput knob that must never change
        # the output — `exec_backend="process"` with workers/shards
        # unset is the serial stream, not a silently different one.
        if workers is not None or shards is not None:
            from repro.exec import sharded_generate_set

            return sharded_generate_set(
                self,
                n,
                rng,
                evidence=evidence,
                exclude=exclude,
                max_batches=max_batches,
                workers=workers if workers is not None else 1,
                shards=shards,
                state=state,
                fused=fused,
                exec_backend=exec_backend,
            )

        plan = (
            self.encoder.fused_plan()
            if fused is not False and not evidence
            else None
        )

        def draw(batch_size: int) -> "tuple[np.ndarray, np.ndarray]":
            if plan is not None:
                return None, sample_packed(self.network, plan, batch_size, rng)
            codes = self.sample_codes(batch_size, rng, evidence)
            batch = self.encoder.decode_to_set(codes, rng, validate=False)
            return batch.matrix, batch.packed_rows()

        return run_generation_rounds(
            self.encoder.width,
            n,
            draw,
            exclude=exclude,
            max_batches=max_batches,
            constrained=bool(evidence),
            state=state,
        )

    def generate(
        self,
        n: int,
        rng: np.random.Generator,
        evidence: Optional[EvidenceLike] = None,
        exclude: Optional[ExcludeLike] = None,
        max_batches: int = 64,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        state: Optional[GenerationSession] = None,
        fused: Optional[bool] = None,
        exec_backend: Optional[str] = None,
    ) -> List[int]:
        """Generate ``n`` distinct candidate values (``width``-nybble ints).

        Compatibility wrapper over :meth:`generate_set`; bulk callers
        should prefer the set form, which never materializes Python
        integers.
        """
        return self.generate_set(
            n,
            rng,
            evidence=evidence,
            exclude=exclude,
            max_batches=max_batches,
            workers=workers,
            shards=shards,
            state=state,
            fused=fused,
            exec_backend=exec_backend,
        ).to_ints()

    # ------------------------------------------------------------------

    def _mined_by_label(self, label: str):
        for mined in self.encoder.mined_segments:
            if mined.segment.label == label:
                return mined
        raise KeyError(f"no segment labeled {label!r}")

    def __repr__(self) -> str:
        return (
            f"AddressModel(segments={len(self.encoder.mined_segments)}, "
            f"edges={len(self.network.edges())})"
        )
