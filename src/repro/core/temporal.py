"""Temporal structural analysis (§6 future work).

The paper: "future work would benefit from integrating temporal
considerations into our method ... Another consideration for future
work is structural analysis in time-series, e.g., to detect changes in
network deployments."

This module compares Entropy/IP analyses of the same network at
different times: per-nybble entropy drift, appearance/disappearance of
segment boundaries, per-segment distribution divergence, and /64
prefix churn — enough to flag renumbering events, new subnet rollouts,
and addressing-policy changes in a snapshot series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.scan.generator import prefixes64


@dataclass(frozen=True)
class SegmentDrift:
    """Distribution change of one aligned nybble region."""

    label: str
    first_nybble: int
    last_nybble: int
    js_divergence: float  # Jensen-Shannon divergence, in [0, log 2]

    @property
    def changed(self) -> bool:
        """True when the divergence is structurally meaningful."""
        return self.js_divergence > 0.1


@dataclass(frozen=True)
class SnapshotDelta:
    """The full comparison of two snapshots of one network."""

    entropy_delta: np.ndarray
    boundary_added: Tuple[int, ...]
    boundary_removed: Tuple[int, ...]
    segment_drift: Tuple[SegmentDrift, ...]
    new_prefixes64: int
    vanished_prefixes64: int
    shared_prefixes64: int

    def max_entropy_shift(self) -> float:
        """Largest absolute per-nybble entropy change."""
        return float(np.abs(self.entropy_delta).max()) if len(
            self.entropy_delta
        ) else 0.0

    def renumbering_suspected(self) -> bool:
        """Heuristic: most prefixes replaced between snapshots."""
        total = self.shared_prefixes64 + self.vanished_prefixes64
        return total > 0 and self.vanished_prefixes64 > 0.5 * total

    def summary(self) -> str:
        """One-paragraph human-readable delta."""
        drifted = [d.label for d in self.segment_drift if d.changed]
        return (
            f"max entropy shift {self.max_entropy_shift():.2f}; "
            f"boundaries +{list(self.boundary_added)} "
            f"-{list(self.boundary_removed)}; "
            f"drifted segments {drifted or 'none'}; "
            f"/64s: {self.new_prefixes64} new, "
            f"{self.vanished_prefixes64} vanished, "
            f"{self.shared_prefixes64} shared"
            + ("; RENUMBERING SUSPECTED" if self.renumbering_suspected() else "")
        )


def jensen_shannon(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence between two count/probability vectors.

    Symmetric, bounded by log 2; zero iff the distributions match.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have equal length")
    if p.sum() <= 0 or q.sum() <= 0:
        raise ValueError("distributions must have positive mass")
    p = p / p.sum()
    q = q / q.sum()
    mid = 0.5 * (p + q)

    def kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float((a[mask] * np.log(a[mask] / b[mask])).sum())

    return 0.5 * kl(p, mid) + 0.5 * kl(q, mid)


def compare_snapshots(
    before: EntropyIP, after: EntropyIP
) -> SnapshotDelta:
    """Compare two fitted analyses of (ostensibly) the same network."""
    if before.address_set.width != after.address_set.width:
        raise ValueError("snapshots must share the address width")

    entropy_delta = after.entropy() - before.entropy()

    starts_before = {s.first_nybble for s in before.segments}
    starts_after = {s.first_nybble for s in after.segments}
    boundary_added = tuple(sorted(starts_after - starts_before))
    boundary_removed = tuple(sorted(starts_before - starts_after))

    # Compare value distributions over the *before* segmentation so the
    # regions stay aligned even if the segmentation itself moved.
    drifts: List[SegmentDrift] = []
    for segment in before.segments:
        p = _value_distribution(before.address_set, segment.first_nybble,
                                segment.last_nybble)
        q = _value_distribution(after.address_set, segment.first_nybble,
                                segment.last_nybble)
        p_vector, q_vector = _align_top_k(p, q)
        drifts.append(
            SegmentDrift(
                label=segment.label,
                first_nybble=segment.first_nybble,
                last_nybble=segment.last_nybble,
                js_divergence=jensen_shannon(p_vector, q_vector),
            )
        )

    width = before.address_set.width
    if width >= 16:
        before_64s = prefixes64(before.address_set.to_ints(), width)
        after_64s = prefixes64(after.address_set.to_ints(), width)
    else:
        before_64s, after_64s = set(), set()

    return SnapshotDelta(
        entropy_delta=entropy_delta,
        boundary_added=boundary_added,
        boundary_removed=boundary_removed,
        segment_drift=tuple(drifts),
        new_prefixes64=len(after_64s - before_64s),
        vanished_prefixes64=len(before_64s - after_64s),
        shared_prefixes64=len(before_64s & after_64s),
    )


def _value_distribution(
    address_set: AddressSet, first: int, last: int
) -> Dict[int, float]:
    values = address_set.segment_values(first, last)
    distinct, counts = np.unique(values, return_counts=True)
    total = counts.sum()
    return {int(v): float(c) / total for v, c in zip(distinct, counts)}


#: Number of popular values compared exactly; the rest is one bucket.
_TOP_K = 64


def _align_top_k(
    p: Dict[int, float], q: Dict[int, float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Align two value distributions on the top-K shared support.

    Wide segments (e.g. pseudo-random IIDs) have empirical supports
    that barely overlap between two honest samples of the *same*
    network; comparing them value-by-value would always scream change.
    Keeping the K most popular values (by combined mass) and lumping
    the long tail into an "other" bucket makes the divergence reflect
    structural change (renumbered subnets, shifted popular values)
    rather than sampling noise.
    """
    combined = sorted(
        set(p) | set(q), key=lambda v: -(p.get(v, 0.0) + q.get(v, 0.0))
    )
    top = combined[:_TOP_K]
    p_vector = [p.get(v, 0.0) for v in top]
    q_vector = [q.get(v, 0.0) for v in top]
    p_vector.append(max(0.0, 1.0 - sum(p_vector)))  # the tail bucket
    q_vector.append(max(0.0, 1.0 - sum(q_vector)))
    return np.asarray(p_vector), np.asarray(q_vector)


@dataclass(frozen=True)
class SeriesChangePoint:
    """A detected structural change between consecutive snapshots."""

    index: int  # change between snapshots index-1 and index
    score: float
    delta: SnapshotDelta


def detect_changes(
    snapshots: Sequence[AddressSet],
    threshold: float = 0.15,
) -> List[SeriesChangePoint]:
    """Scan a snapshot series for structural change points.

    Each consecutive pair is compared; the change score is the maximum
    of three normalized components: the largest per-nybble entropy
    shift, the largest segment JS divergence (/ log 2), and the excess
    /64 churn beyond the 50% a merely-resampled snapshot could show
    (so ordinary client churn does not fire, but renumbering — where
    nearly every prefix vanishes — does).  Pairs scoring above
    ``threshold`` are reported.
    """
    if len(snapshots) < 2:
        return []
    analyses = [EntropyIP.fit(s) for s in snapshots]
    changes: List[SeriesChangePoint] = []
    for index in range(1, len(analyses)):
        delta = compare_snapshots(analyses[index - 1], analyses[index])
        js_max = max(
            (d.js_divergence for d in delta.segment_drift), default=0.0
        )
        total_before = delta.shared_prefixes64 + delta.vanished_prefixes64
        churn_excess = 0.0
        if total_before > 0:
            vanished_fraction = delta.vanished_prefixes64 / total_before
            churn_excess = max(0.0, (vanished_fraction - 0.5) * 2.0)
        score = max(
            delta.max_entropy_shift(), js_max / math.log(2), churn_excess
        )
        if score > threshold:
            changes.append(
                SeriesChangePoint(index=index, score=score, delta=delta)
            )
    return changes
