"""Segment mining (Section 4.3): discovering popular values and ranges.

For each segment k the paper reduces the dataset to the segment's values
D_k and builds the ordered set V_k of popular values and ranges through
three steps, nominating at most 10 elements per step and removing them
from D_k as it goes:

(a) **frequency outliers** — values more common than Q3 + 1.5*IQR of the
    value-count distribution (e.g. C1..C5 in Fig. 4);
(b) **value-space DBSCAN** — highly dense ranges of values, added as
    (min, max) intervals of each discovered cluster;
(c) **histogram DBSCAN** — DBSCAN over the (value, count) histogram,
    tuned to find ranges that are both uniformly distributed and
    relatively continuous (e.g. C6 in Fig. 4).

If more than 0.1% of the original observations remain after the steps,
V_k is closed with the range (min D_k, max D_k) — unless at most 10
distinct values remain, in which case they are taken individually.

The resulting elements carry codes ``<label><index>`` (A1, B2, ...) used
to rewrite addresses as categorical vectors (Table 3).

The mining hot path is array-native (``engine="vector"``, the default):
per-segment value histograms build straight from the nybble matrix via
one ``np.unique`` pass, DBSCAN receives the histogram's value/count
arrays (and runs its vectorized pairwise engine), and interval counts
are ``searchsorted`` slices.  ``engine="reference"`` retains the
pre-vectorization scalar path — per-value Python histograms
(:class:`~repro.stats.histogram._ReferenceHistogram`), list-fed
grid-scan DBSCAN — and produces byte-identical mined values; it backs
``EntropyIP._fit_reference`` and the fit-stage benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.dbscan import DBSCAN
from repro.cluster.intervals import Interval, clusters_to_intervals
from repro.core.segmentation import Segment
from repro.ipv6.sets import AddressSet
from repro.stats.histogram import Histogram, _ReferenceHistogram
from repro.stats.outliers import _tukey_outlier_values_scalar, tukey_outlier_values


@dataclass(frozen=True)
class MiningConfig:
    """Parameters of the three-step mining heuristic.

    The step structure and the nomination/stop constants come straight
    from §4.3; the DBSCAN parameterizations are the tunable part the
    paper leaves open ("parametrized to find highly dense ranges" /
    "tuned to find ranges that are both uniformly distributed and
    relatively continuous").
    """

    #: Nominate at most this many elements per step (paper: 10).
    max_nominations: int = 10
    #: Stop once at most this fraction of observations remains (paper: 0.1%).
    stop_fraction: float = 0.001
    #: If at most this many distinct values remain at the end, take them
    #: individually instead of closing with a range (paper: 10).
    tail_values: int = 10
    #: Value-space DBSCAN: eps as a fraction of the segment cardinality.
    value_eps_fraction: float = 1 / 256
    #: Value-space DBSCAN: min neighborhood weight as a fraction of |D_k|.
    value_min_weight_fraction: float = 0.002
    #: Minimum absolute neighborhood weight for the value-space step.
    value_min_weight: float = 3.0
    #: Histogram DBSCAN: eps in the normalized (value, count) plane.
    histogram_eps: float = 0.05
    #: Histogram DBSCAN: min points (distinct values) per cluster seed.
    histogram_min_points: int = 4
    #: Ignore clusters narrower than this many distinct values.
    min_range_width: int = 2
    #: Values covering at least this fraction of |D_k| are nominated as
    #: points in step (a) even when the Tukey fence misses them.  Near-
    #: uniform segments (e.g. Table 3's D: five values at ~9-10% each)
    #: must keep their popular values as individual codes, otherwise the
    #: BN loses the very structure the paper's browser displays.
    point_frequency: float = 0.05

    def __post_init__(self):
        if self.max_nominations < 1:
            raise ValueError("max_nominations must be >= 1")
        if not 0 <= self.stop_fraction < 1:
            raise ValueError("stop_fraction must be in [0, 1)")


@dataclass(frozen=True)
class SegmentValue:
    """One element of V_k: a point value or a closed range, with a code.

    ``low == high`` denotes a point value.  ``frequency`` is relative to
    the original |D_k| (so a segment's frequencies sum to ≤ 1).
    """

    code: str
    low: int
    high: int
    frequency: float
    origin: str  # "outlier" | "value-cluster" | "hist-cluster" | "tail"

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"invalid value range: [{self.low}, {self.high}]")
        if not 0 <= self.frequency <= 1:
            raise ValueError(f"invalid frequency: {self.frequency}")

    @property
    def is_range(self) -> bool:
        return self.low != self.high

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    def span(self) -> int:
        """Number of raw values covered."""
        return self.high - self.low + 1

    def format_value(self, nybbles: int) -> str:
        """Render like Table 3: fixed-width hex, ranges as low-high."""
        if self.is_range:
            return f"{self.low:0{nybbles}x}-{self.high:0{nybbles}x}"
        return f"{self.low:0{nybbles}x}"


@dataclass(frozen=True)
class MinedSegment:
    """A segment together with its ordered mined values V_k."""

    segment: Segment
    values: Tuple[SegmentValue, ...]

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"segment {self.segment.label} mined no values")

    @property
    def cardinality(self) -> int:
        """Number of categorical codes (the BN variable cardinality)."""
        return len(self.values)

    def code_index(self, value: int) -> int:
        """Encode a raw segment value as a code index.

        Point matches win over ranges; among ranges, the earliest-mined
        containing range wins; values covered by nothing map to the
        nearest element (the encoding is lossy by design, §4.3).
        """
        best_range: Optional[int] = None
        for index, element in enumerate(self.values):
            if not element.is_range:
                if element.low == value:
                    return index
            elif best_range is None and element.contains(value):
                best_range = index
        if best_range is not None:
            return best_range
        return self._nearest_index(value)

    def _nearest_index(self, value: int) -> int:
        def distance(element: SegmentValue) -> int:
            if element.contains(value):
                return 0
            return min(abs(value - element.low), abs(value - element.high))

        return min(range(len(self.values)), key=lambda i: distance(self.values[i]))

    def codes(self) -> List[str]:
        """All code strings, in mining order (e.g. ['C1', 'C2', ...])."""
        return [v.code for v in self.values]


def mine_segment(
    address_set: AddressSet,
    segment: Segment,
    config: MiningConfig = MiningConfig(),
    engine: str = "vector",
) -> MinedSegment:
    """Run the three-step mining heuristic on one segment.

    ``engine="vector"`` (default) runs the array-native path;
    ``engine="reference"`` runs the retained scalar path (identical
    output, pre-vectorization cost — the benchmark baseline).
    """
    if engine not in ("vector", "reference"):
        raise ValueError(f"unknown mining engine: {engine!r}")
    raw_values = address_set.segment_values(segment.first_nybble, segment.last_nybble)
    scalar = engine == "reference"
    if scalar:
        histogram = _ReferenceHistogram.from_values(int(v) for v in raw_values)
    else:
        histogram = Histogram.from_array(raw_values)
        # Segments wider than 64 bits (hard cuts disabled) fall back to
        # object arrays; mine them with the scalar operations.
        scalar = histogram.values.dtype == object
    total = histogram.total
    if total == 0:
        raise ValueError("cannot mine an empty address set")

    elements: List[SegmentValue] = []
    label = segment.label

    def add(low: int, high: int, count: int, origin: str):
        elements.append(
            SegmentValue(
                code=f"{label}{len(elements) + 1}",
                low=low,
                high=high,
                frequency=count / total,
                origin=origin,
            )
        )

    def finished() -> bool:
        return histogram.total <= config.stop_fraction * total

    # ------------------------------------------------------------ (a)
    outlier_fn = _tukey_outlier_values_scalar if scalar else tukey_outlier_values
    outliers = outlier_fn(histogram, max_results=config.max_nominations)
    chosen = dict(outliers)
    # Frequency-threshold nominations: popular values of near-uniform
    # segments that the fence misses (see MiningConfig.point_frequency).
    threshold = config.point_frequency * total
    need = config.max_nominations - len(chosen)
    if scalar:
        for value, count in histogram.items():
            if len(chosen) >= config.max_nominations:
                break
            if count >= threshold and value not in chosen:
                chosen[value] = count
    elif need > 0 and len(histogram):
        eligible = histogram.counts >= threshold
        if chosen:
            eligible &= ~np.isin(
                histogram.values,
                np.asarray(list(chosen), dtype=histogram.values.dtype),
            )
        for index in np.nonzero(eligible)[0][:need]:
            chosen[int(histogram.values[index])] = int(histogram.counts[index])
    nominated = sorted(chosen.items(), key=lambda pair: (-pair[1], pair[0]))
    nominated = nominated[: config.max_nominations]
    for value, count in nominated:
        add(value, value, count, "outlier")
    histogram = histogram.remove_values(v for v, _ in nominated)

    # ------------------------------------------------------------ (b)
    if not finished() and len(histogram) >= 2:
        for interval in _value_space_ranges(histogram, segment, config, scalar):
            count = histogram.count_in_range(interval.low, interval.high)
            if count == 0:
                continue
            add(interval.low, interval.high, count, "value-cluster")
            histogram = histogram.remove_range(interval.low, interval.high)

    # ------------------------------------------------------------ (c)
    if not finished() and len(histogram) >= config.histogram_min_points:
        for interval in _histogram_ranges(histogram, segment, config, scalar):
            count = histogram.count_in_range(interval.low, interval.high)
            if count == 0:
                continue
            add(interval.low, interval.high, count, "hist-cluster")
            histogram = histogram.remove_range(interval.low, interval.high)

    # ------------------------------------------------------ remainder
    if not finished() and len(histogram) > 0:
        if histogram.distinct <= config.tail_values:
            for value, count in histogram.items():
                add(value, value, count, "tail")
        else:
            add(
                histogram.min_value(),
                histogram.max_value(),
                histogram.total,
                "tail",
            )
    elif len(histogram) > 0:
        # ≤ stop_fraction left: fold the dust into a final range so every
        # training value still has a containing element.
        add(
            histogram.min_value(),
            histogram.max_value(),
            histogram.total,
            "tail",
        )

    if not elements:
        # Degenerate but possible: everything was outliers and removed —
        # cannot happen (outliers become elements), so this guards misuse.
        raise ValueError(f"segment {label}: no values mined")
    return MinedSegment(segment=segment, values=tuple(elements))


def mine_segments(
    address_set: AddressSet,
    segments: Sequence[Segment],
    config: MiningConfig = MiningConfig(),
    engine: str = "vector",
) -> List[MinedSegment]:
    """Mine every segment of a segmentation."""
    return [mine_segment(address_set, s, config, engine=engine) for s in segments]


def _histogram_points(histogram: Histogram, scalar: bool) -> np.ndarray:
    """The histogram's values as a float column, without a Python loop."""
    if scalar or histogram.values.dtype == object:
        return np.asarray([float(int(v)) for v in histogram.values])
    return histogram.values.astype(np.float64)


def _cluster_values(histogram: Histogram, scalar: bool):
    """Value sequence handed to :func:`clusters_to_intervals`."""
    if scalar:
        return [int(v) for v in histogram.values]
    return histogram.values


def _value_space_ranges(
    histogram: Histogram,
    segment: Segment,
    config: MiningConfig,
    scalar: bool = False,
) -> List[Interval]:
    """Step (b): dense ranges in value space (weighted 1-D DBSCAN)."""
    cardinality = segment.cardinality
    eps = max(1.0, cardinality * config.value_eps_fraction)
    min_weight = max(
        config.value_min_weight,
        histogram.total * config.value_min_weight_fraction,
    )
    points = _histogram_points(histogram, scalar).reshape(-1, 1)
    weights = histogram.counts.astype(np.float64)
    algorithm = "grid" if scalar else "auto"
    labels = (
        DBSCAN(eps=eps, min_samples=min_weight, algorithm=algorithm)
        .fit(points, weights)
        .labels
    )
    intervals = _wide_enough_intervals(histogram, labels, config, scalar)
    return _top_ranges(histogram, intervals, config.max_nominations, scalar)


def _histogram_ranges(
    histogram: Histogram,
    segment: Segment,
    config: MiningConfig,
    scalar: bool = False,
) -> List[Interval]:
    """Step (c): uniform & continuous ranges in the (value, count) plane."""
    cardinality = segment.cardinality
    max_count = float(histogram.counts.max())
    points = np.column_stack(
        [
            _histogram_points(histogram, scalar) / cardinality,
            histogram.counts.astype(np.float64) / max_count,
        ]
    )
    algorithm = "grid" if scalar else "auto"
    labels = (
        DBSCAN(
            eps=config.histogram_eps,
            min_samples=config.histogram_min_points,
            algorithm=algorithm,
        )
        .fit(points)
        .labels
    )
    intervals = _wide_enough_intervals(histogram, labels, config, scalar)
    return _top_ranges(histogram, intervals, config.max_nominations, scalar)


def _wide_enough_intervals(
    histogram: Histogram,
    labels: np.ndarray,
    config: MiningConfig,
    scalar: bool,
) -> List[Interval]:
    """Cluster intervals with at least ``min_range_width`` distinct values."""
    pairs = clusters_to_intervals(_cluster_values(histogram, scalar), labels)
    if not pairs:
        return []
    intervals = [interval for _, interval in pairs]
    distinct = _interval_distinct_many(histogram, intervals, scalar)
    return [
        interval
        for interval, width in zip(intervals, distinct)
        if width >= config.min_range_width
    ]


def _interval_distinct(
    histogram: Histogram, interval: Interval, scalar: bool = False
) -> int:
    """Distinct histogram values inside the interval."""
    if scalar or histogram.values.dtype == object:
        return sum(
            1 for v in histogram.values if interval.low <= int(v) <= interval.high
        )
    start, stop = histogram._range_slice(interval.low, interval.high)
    return stop - start


def _interval_bounds_slices(
    histogram: Histogram, intervals: Sequence[Interval]
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``_range_slice`` over many intervals at once."""
    lows = np.asarray([i.low for i in intervals], dtype=np.uint64)
    highs = np.asarray([i.high for i in intervals], dtype=np.uint64)
    starts = histogram.values.searchsorted(lows, side="left")
    stops = histogram.values.searchsorted(highs, side="right")
    return starts, stops


def _interval_distinct_many(
    histogram: Histogram, intervals: Sequence[Interval], scalar: bool
) -> List[int]:
    """Distinct value counts for every interval, batched when vectorized."""
    if scalar or histogram.values.dtype == object:
        return [_interval_distinct(histogram, i, scalar=True) for i in intervals]
    starts, stops = _interval_bounds_slices(histogram, intervals)
    return (stops - starts).tolist()


def _interval_counts_many(
    histogram: Histogram, intervals: Sequence[Interval], scalar: bool
) -> List[int]:
    """Observation counts for every interval, batched when vectorized."""
    if scalar or histogram.values.dtype == object:
        return [histogram.count_in_range(i.low, i.high) for i in intervals]
    starts, stops = _interval_bounds_slices(histogram, intervals)
    cumulative = np.concatenate([[0], np.cumsum(histogram.counts)])
    return (cumulative[stops] - cumulative[starts]).tolist()


def _top_ranges(
    histogram: Histogram,
    intervals: List[Interval],
    limit: int,
    scalar: bool = False,
) -> List[Interval]:
    """Keep the ``limit`` ranges covering the most observations.

    Overlapping candidates are merged first so removals do not corrupt
    later counts.
    """
    from repro.cluster.intervals import merge_intervals

    merged = merge_intervals(intervals)
    if not merged:
        return merged
    covered = _interval_counts_many(histogram, merged, scalar)
    decorated = sorted(
        zip(merged, covered), key=lambda pair: (-pair[1], pair[0].low)
    )
    chosen = [interval for interval, _ in decorated[:limit]]
    chosen.sort(key=lambda i: i.low)
    return chosen
