"""The conditional probability browser (Fig. 1(b,c)).

The paper's web UI shows, for every segment, the mined values with their
probabilities as a colored heat map; clicking a value conditions the BN
on it and re-renders every other segment's distribution.  This module is
the programmatic equivalent: :class:`ConditionalBrowser` holds the
current evidence, exposes per-segment rows, and ``click``/``unclick``
return new browsers with updated evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.model import AddressModel


@dataclass(frozen=True)
class BrowserRow:
    """One value box of the browser: a code with its posterior mass."""

    code: str
    value_text: str
    probability: float
    is_evidence: bool


class ConditionalBrowser:
    """Navigable view over an :class:`AddressModel`'s posterior."""

    def __init__(
        self,
        model: AddressModel,
        evidence: Optional[Mapping[str, Union[str, int]]] = None,
    ):
        self._model = model
        self._evidence: Dict[str, int] = model.normalize_evidence(evidence)

    @property
    def model(self) -> AddressModel:
        return self._model

    @property
    def evidence(self) -> Dict[str, int]:
        """Current evidence as segment → state index."""
        return dict(self._evidence)

    def evidence_codes(self) -> Dict[str, str]:
        """Current evidence as segment → code string."""
        result = {}
        for label, state in self._evidence.items():
            mined = self._model._mined_by_label(label)
            result[label] = mined.values[state].code
        return result

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    def click(self, code: str) -> "ConditionalBrowser":
        """Condition on a value, like clicking its box in the UI.

        ``code`` is a mined code such as ``"J1"``; its leading letters
        name the segment.
        """
        label, _ = _split_code(code)
        evidence = self.evidence_codes()
        evidence[label] = code
        return ConditionalBrowser(self._model, evidence)

    def unclick(self, label: str) -> "ConditionalBrowser":
        """Drop the evidence on one segment."""
        evidence = self.evidence_codes()
        evidence.pop(label, None)
        return ConditionalBrowser(self._model, evidence)

    def reset(self) -> "ConditionalBrowser":
        """Back to the unconditioned view (Fig. 1b)."""
        return ConditionalBrowser(self._model)

    # ------------------------------------------------------------------
    # rendering data
    # ------------------------------------------------------------------

    def rows(self) -> Dict[str, List[BrowserRow]]:
        """Per-segment value rows with posterior probabilities.

        Evidence segments show probability 1 on the selected value (the
        100% boxes of Fig. 1c); every other segment shows its posterior
        under the evidence.
        """
        marginals = self._model.marginals(self._evidence)
        result: Dict[str, List[BrowserRow]] = {}
        for mined in self._model.encoder.mined_segments:
            label = mined.segment.label
            nybbles = mined.segment.nybble_count
            if label in self._evidence:
                selected = self._evidence[label]
                distribution = np.zeros(mined.cardinality)
                distribution[selected] = 1.0
            else:
                distribution = marginals[label]
            result[label] = [
                BrowserRow(
                    code=value.code,
                    value_text=value.format_value(nybbles),
                    probability=float(distribution[index]),
                    is_evidence=(
                        label in self._evidence and self._evidence[label] == index
                    ),
                )
                for index, value in enumerate(mined.values)
            ]
        return result

    def top_values(self, label: str, limit: int = 5) -> List[BrowserRow]:
        """The most probable rows of one segment under current evidence."""
        rows = sorted(
            self.rows()[label], key=lambda r: -r.probability
        )
        return rows[:limit]

    def probability_of_evidence(self) -> float:
        """Joint probability of all current clicks."""
        if not self._evidence:
            return 1.0
        return self._model.evidence_probability(self._evidence)

    def __repr__(self) -> str:
        clicks = ", ".join(sorted(self.evidence_codes().values())) or "none"
        return f"ConditionalBrowser(evidence={clicks})"


def _split_code(code: str) -> Tuple[str, int]:
    """Split 'J12' into ('J', 12)."""
    head = code.rstrip("0123456789")
    tail = code[len(head):]
    if not head or not tail:
        raise ValueError(f"malformed code: {code!r}")
    return head, int(tail)
