"""Address ↔ code-vector encoding (Section 4.3, Table 3).

Once every segment's V_k is mined, each address can be rewritten as a
vector of categorical codes, e.g.::

    2001:0db8:08c2:2500:0000:d9a0:5345:0012
        → (A1, B2, C3, D4, E5, F1, G12, H1, I2, J3)

Encoding a range code loses the exact value ("this is acceptable for our
purposes"); decoding a range code draws a uniform value from the range,
which is what lets the generator materialize addresses never seen in
training.

Both directions are batched array programs: :meth:`AddressEncoder.encode_set`
classifies all rows of a segment with cached lookup tables built once per
encoder, and :meth:`AddressEncoder.decode_to_set` materializes code
matrices straight into an ``(n, width)`` nybble matrix without ever
round-tripping through per-row Python integers — the §5.5 1M-candidate
hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mining import MinedSegment
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet


def _rand_below(rng: np.random.Generator, bound: int) -> int:
    """Uniform integer in [0, bound) for arbitrarily wide bounds.

    Composes 32-bit draws and rejects out-of-range values, so there is
    no modulo bias and no 64-bit overflow for >64-bit segment spans.
    """
    if bound <= 1:
        return 0
    bits = (bound - 1).bit_length()
    while True:
        value = 0
        remaining = bits
        while remaining > 0:
            chunk = min(32, remaining)
            value = (value << chunk) | int(rng.integers(0, 1 << chunk))
            remaining -= chunk
        if value < bound:
            return value


class _SegmentTables:
    """Per-segment lookup tables, built once per encoder.

    Only segments of at most 16 nybbles (the norm, given the hard /32
    and /64 segmentation cuts) get tables; wider segments fall back to
    exact Python-int paths.
    """

    __slots__ = (
        "lows",
        "highs",
        "spans",
        "point_values",
        "point_codes",
        "ranges",
        "has_ranges",
    )

    def __init__(self, mined: MinedSegment):
        self.lows = np.asarray([v.low for v in mined.values], dtype=np.uint64)
        self.highs = np.asarray([v.high for v in mined.values], dtype=np.uint64)
        self.spans = self.highs - self.lows
        self.has_ranges = bool(np.any(self.spans > 0))
        # Exact-value (point) elements, sorted for searchsorted; the
        # earliest-mined code wins for duplicated point values.
        points = [
            (v.low, index)
            for index, v in enumerate(mined.values)
            if not v.is_range
        ]
        points.sort()
        seen_values = set()
        unique_points = []
        for value, index in points:
            if value not in seen_values:
                seen_values.add(value)
                unique_points.append((value, index))
        self.point_values = np.asarray(
            [value for value, _ in unique_points], dtype=np.uint64
        )
        self.point_codes = np.asarray(
            [index for _, index in unique_points], dtype=np.int64
        )
        # Range elements in mining order (earliest containing range wins).
        self.ranges = [
            (np.uint64(v.low), np.uint64(v.high), index)
            for index, v in enumerate(mined.values)
            if v.is_range
        ]

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Classify raw uint64 segment values into code indices.

        Mirrors :meth:`MinedSegment.code_index` exactly — point matches
        win, then the earliest-mined containing range, then the nearest
        element — but over whole arrays.
        """
        distinct, inverse = np.unique(values, return_inverse=True)
        codes = np.full(len(distinct), -1, dtype=np.int64)
        if len(self.point_values):
            positions = np.searchsorted(self.point_values, distinct)
            positions = np.minimum(positions, len(self.point_values) - 1)
            hit = self.point_values[positions] == distinct
            codes[hit] = self.point_codes[positions[hit]]
        for low, high, index in self.ranges:
            unclaimed = codes == -1
            if not unclaimed.any():
                break
            codes[unclaimed & (distinct >= low) & (distinct <= high)] = index
        missing = codes == -1
        if missing.any():
            codes[missing] = self._nearest(distinct[missing])
        return codes[inverse]

    def _nearest(self, values: np.ndarray) -> np.ndarray:
        """First element index minimizing distance to each value."""
        v = values[:, None]
        below = v < self.lows[None, :]
        above = v > self.highs[None, :]
        # uint64 subtraction wraps where the branch is not taken; those
        # lanes are discarded by the np.where selection.
        distance = np.where(
            below,
            self.lows[None, :] - v,
            np.where(above, v - self.highs[None, :], np.uint64(0)),
        )
        return np.argmin(distance, axis=1).astype(np.int64)


class _FusedSegment:
    """One non-constant segment of a :class:`FusedPlan`.

    ``column`` is the segment's position in the encoder's segment order
    (= the BN variable order), ``word``/``shift`` its field in the
    packed row, ``shifted_lows`` the per-code low values pre-shifted
    into field position, and ``spans`` the per-code range widths
    (``high - low``; all zero iff ``has_ranges`` is False).
    """

    __slots__ = (
        "column",
        "word",
        "shift",
        "shifted_lows",
        "spans",
        "has_ranges",
    )

    def __init__(
        self,
        column: int,
        word: int,
        shift: np.uint64,
        shifted_lows: np.ndarray,
        spans: np.ndarray,
        has_ranges: bool,
    ):
        self.column = column
        self.word = word
        self.shift = shift
        self.shifted_lows = shifted_lows
        self.spans = spans
        self.has_ranges = has_ranges


class FusedPlan:
    """Everything :func:`repro.bayes.sampling.sample_packed` needs to
    land BN draws directly in packed uint64 rows.

    Derived from the encoder's ``_word_plan`` (so it exists exactly
    when no segment straddles a 16-nybble word boundary and every
    segment has lookup tables): constant segments — cardinality 1, no
    range, the bulk of low-entropy router layouts — are pre-folded into
    one ``constant_words`` row that initializes every sample, and each
    remaining segment carries its pre-shifted value table.  The fused
    sampler then does one gather (+ one offset draw for ranged
    segments) and one OR per segment per batch — no codes matrix, no
    nybble matrix, no re-pack.
    """

    __slots__ = ("word_count", "constant_words", "segments")

    def __init__(self, encoder: "AddressEncoder"):
        if encoder._word_plan is None:
            raise ValueError(
                "encoder has no packed-word plan (a segment straddles a "
                "word boundary); the fused path cannot apply"
            )
        self.word_count = (encoder._width + 15) // 16
        constant = np.zeros(self.word_count, dtype=np.uint64)
        segments = []
        for column, (mined, tables) in enumerate(
            zip(encoder._mined, encoder._tables)
        ):
            word, shift = encoder._word_plan[column]
            if mined.cardinality == 1 and not tables.has_ranges:
                # Mirrors decode_to_set's constant-broadcast branch
                # (which consumes no randomness): fold the single value
                # into the shared initialization row.
                constant[word] |= tables.lows[0] << shift
                continue
            segments.append(
                _FusedSegment(
                    column=column,
                    word=word,
                    shift=shift,
                    shifted_lows=tables.lows << shift,
                    spans=tables.spans,
                    has_ranges=tables.has_ranges,
                )
            )
        constant.setflags(write=False)
        self.constant_words = constant
        self.segments = tuple(segments)


class AddressEncoder:
    """Bidirectional mapping between nybble rows and code vectors."""

    def __init__(self, mined_segments: Sequence[MinedSegment]):
        if not mined_segments:
            raise ValueError("need at least one mined segment")
        self._mined: Tuple[MinedSegment, ...] = tuple(mined_segments)
        expected = 1
        for mined in self._mined:
            if mined.segment.first_nybble != expected:
                raise ValueError(
                    f"segment {mined.segment.label} does not start at "
                    f"nybble {expected}"
                )
            expected = mined.segment.last_nybble + 1
        self._width = self._mined[-1].segment.last_nybble
        self._tables: List[Optional[_SegmentTables]] = [
            _SegmentTables(m) if m.segment.nybble_count <= 16 else None
            for m in self._mined
        ]
        # Packed-word assembly plan: when every segment has a lookup
        # table and sits inside one 16-nybble word (guaranteed by the
        # hard /32 and /64 segmentation cuts), the decoder can build
        # the :func:`repro.ipv6.sets.pack_rows` image directly from
        # the segment values — the generation loop then never re-packs
        # the nybble matrix it just wrote.
        self._word_plan: Optional[List[Tuple[int, np.uint64]]] = []
        for mined, tables in zip(self._mined, self._tables):
            seg = mined.segment
            word = (seg.first_nybble - 1) // 16
            if tables is None or (seg.last_nybble - 1) // 16 != word:
                self._word_plan = None
                break
            self._word_plan.append(
                (word, np.uint64(4 * (16 * (word + 1) - seg.last_nybble)))
            )
        self._fused: Optional[FusedPlan] = None

    def fused_plan(self) -> Optional[FusedPlan]:
        """The cached :class:`FusedPlan` for this encoder, or ``None``
        when fusion cannot apply (some segment straddles a 16-nybble
        word boundary or is wider than 64 bits — possible only when the
        hard /32 and /64 segmentation cuts are disabled).  ``None``
        routes generation through the retained two-step
        :meth:`decode_to_set` reference."""
        if self._word_plan is None:
            return None
        if self._fused is None:
            self._fused = FusedPlan(self)
        return self._fused

    @property
    def mined_segments(self) -> Tuple[MinedSegment, ...]:
        return self._mined

    @property
    def width(self) -> int:
        """Total width in nybbles covered by the segments."""
        return self._width

    @property
    def variable_names(self) -> List[str]:
        """Segment labels, the BN variable names."""
        return [m.segment.label for m in self._mined]

    @property
    def cardinalities(self) -> List[int]:
        """Number of codes per segment."""
        return [m.cardinality for m in self._mined]

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode_set(self, address_set: AddressSet) -> np.ndarray:
        """Encode a whole set into an (n, num_segments) code matrix.

        Uses the per-segment lookup tables built at construction, so
        encoding is a handful of numpy calls per segment rather than a
        Python classification per distinct value.
        """
        if address_set.width != self._width:
            raise ValueError(
                f"address set width {address_set.width} != encoder width "
                f"{self._width}"
            )
        n = len(address_set)
        matrix = np.zeros((n, len(self._mined)), dtype=np.int64)
        for column, mined in enumerate(self._mined):
            seg = mined.segment
            values = address_set.segment_values(seg.first_nybble, seg.last_nybble)
            tables = self._tables[column]
            if tables is not None:
                matrix[:, column] = tables.encode(values)
            else:
                matrix[:, column] = self._encode_column(mined, values)
        return matrix

    def encode_address(self, address: IPv6Address) -> List[str]:
        """Encode one address into code strings, e.g. ['A1', 'B2', ...]."""
        row = AddressSet.from_addresses([address], width=32).truncate(self._width)
        indices = self.encode_set(row)[0]
        return [
            mined.values[index].code
            for mined, index in zip(self._mined, indices)
        ]

    @staticmethod
    def _encode_column(mined: MinedSegment, values: np.ndarray) -> np.ndarray:
        """Reference (per-value) classification, for >64-bit segments."""
        distinct, inverse = np.unique(values, return_inverse=True)
        code_of = np.asarray(
            [mined.code_index(int(v)) for v in distinct], dtype=np.int64
        )
        return code_of[inverse]

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode_to_set(
        self,
        codes: np.ndarray,
        rng: np.random.Generator,
        validate: bool = True,
    ) -> AddressSet:
        """Materialize code vectors directly into an :class:`AddressSet`.

        Point codes decode exactly; range codes draw uniformly from
        their interval (rows whose code is a point value never consume
        randomness).  Each segment's values are written straight into
        the ``(n, width)`` nybble matrix with vectorized shift/mask —
        no per-row Python int assembly anywhere on the path — and, when
        no segment straddles a 16-nybble word boundary, the packed
        uint64 words are assembled in the same pass so the returned
        set's :meth:`AddressSet.packed_rows` is free.

        ``validate=False`` skips the per-segment code-range check for
        callers (like the generation loop) whose codes come straight
        from the model and cannot be out of range.
        """
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != len(self._mined):
            raise ValueError("code matrix shape mismatch")
        n = codes.shape[0]
        matrix = np.zeros((n, self._width), dtype=np.uint8)
        packed: Optional[np.ndarray] = None
        if self._word_plan is not None:
            packed = np.zeros((n, (self._width + 15) // 16), dtype=np.uint64)
        for column, mined in enumerate(self._mined):
            column_codes = codes[:, column]
            if validate and n and (
                column_codes.min() < 0 or column_codes.max() >= mined.cardinality
            ):
                raise IndexError(
                    f"code out of range for segment {mined.segment.label}"
                )
            nybble_count = mined.segment.nybble_count
            first = mined.segment.first_nybble - 1
            tables = self._tables[column]
            if tables is not None and mined.cardinality == 1 and not tables.has_ranges:
                # Constant segment (one point code — low-entropy router
                # sets are full of long all-zero runs): broadcast the
                # precomputed nybble pattern instead of splitting a
                # million identical values.
                value = int(tables.lows[0])
                pattern = np.array(
                    [
                        (value >> (4 * (nybble_count - 1 - j))) & 0xF
                        for j in range(nybble_count)
                    ],
                    dtype=np.uint8,
                )
                matrix[:, first : first + nybble_count] = pattern
                if packed is not None:
                    word, shift = self._word_plan[column]
                    packed[:, word] |= np.uint64(value) << shift
                continue
            if tables is not None:
                # Exact uint64 arithmetic: float64 would corrupt values
                # wider than 53 bits.
                row_lows = tables.lows[column_codes]
                if tables.has_ranges:
                    # endpoint=True keeps the bound at span-1, which
                    # always fits in uint64 even for a full 64-bit
                    # segment range.  Only rows whose code is an actual
                    # range draw an offset.
                    row_spans = tables.spans[column_codes]
                    ranged = row_spans > 0
                    if ranged.all():
                        values = row_lows + rng.integers(
                            0, row_spans, dtype=np.uint64, endpoint=True
                        )
                    elif ranged.any():
                        values = row_lows.copy()
                        rows = np.flatnonzero(ranged)
                        values[rows] += rng.integers(
                            0,
                            row_spans[rows],
                            dtype=np.uint64,
                            endpoint=True,
                        )
                    else:
                        values = row_lows
                else:
                    # Point-only segment: nothing to draw.
                    values = row_lows
                if packed is not None:
                    word, shift = self._word_plan[column]
                    packed[:, word] |= values << shift
                if nybble_count >= 6:
                    # Wide segment: split via the big-endian byte image,
                    # three vector ops instead of one shift/mask pass per
                    # nybble column.
                    byte_image = (
                        values.astype(">u8").view(np.uint8).reshape(n, 8)
                    )
                    nybbles = np.empty((n, 16), dtype=np.uint8)
                    nybbles[:, 0::2] = byte_image >> 4
                    nybbles[:, 1::2] = byte_image & 0x0F
                    matrix[:, first : first + nybble_count] = nybbles[
                        :, 16 - nybble_count :
                    ]
                else:
                    for j in range(nybble_count):
                        shift = np.uint64(4 * (nybble_count - 1 - j))
                        matrix[:, first + j] = (
                            values >> shift
                        ) & np.uint64(0xF)
            else:
                # Segments wider than 64 bits (only possible when the
                # hard /32 and /64 cuts are disabled): Python-int path.
                for row in range(n):
                    element = mined.values[int(column_codes[row])]
                    value = element.low + _rand_below(rng, element.span())
                    for j in range(nybble_count - 1, -1, -1):
                        matrix[row, first + j] = value & 0xF
                        value >>= 4
        if packed is not None:
            return AddressSet._with_packed(matrix, packed)
        return AddressSet(matrix)

    def decode_matrix(
        self, codes: np.ndarray, rng: np.random.Generator
    ) -> List[int]:
        """Materialize code vectors into ``width``-nybble integers.

        Thin compatibility wrapper over :meth:`decode_to_set`; for bulk
        generation prefer the set form, which never materializes Python
        integers.
        """
        return self.decode_to_set(codes, rng).to_ints()

    def decode_codes(
        self, code_strings: Sequence[str], rng: np.random.Generator
    ) -> int:
        """Materialize one vector of code strings (e.g. ['A1', 'B2', ...])."""
        if len(code_strings) != len(self._mined):
            raise ValueError("one code per segment is required")
        indices = []
        for mined, code in zip(self._mined, code_strings):
            try:
                indices.append(mined.codes().index(code))
            except ValueError:
                raise KeyError(
                    f"unknown code {code!r} for segment {mined.segment.label}"
                ) from None
        return self.decode_matrix(np.asarray([indices]), rng)[0]

    def code_table(self) -> Dict[str, List[Tuple[str, str, float]]]:
        """Table-3-style dump: label → [(code, value text, frequency)]."""
        table: Dict[str, List[Tuple[str, str, float]]] = {}
        for mined in self._mined:
            nybbles = mined.segment.nybble_count
            table[mined.segment.label] = [
                (v.code, v.format_value(nybbles), v.frequency)
                for v in mined.values
            ]
        return table
