"""Address ↔ code-vector encoding (Section 4.3, Table 3).

Once every segment's V_k is mined, each address can be rewritten as a
vector of categorical codes, e.g.::

    2001:0db8:08c2:2500:0000:d9a0:5345:0012
        → (A1, B2, C3, D4, E5, F1, G12, H1, I2, J3)

Encoding a range code loses the exact value ("this is acceptable for our
purposes"); decoding a range code draws a uniform value from the range,
which is what lets the generator materialize addresses never seen in
training.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.mining import MinedSegment
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet


def _rand_below(rng: np.random.Generator, bound: int) -> int:
    """Uniform integer in [0, bound) for arbitrarily wide bounds.

    Composes 32-bit draws and rejects out-of-range values, so there is
    no modulo bias and no 64-bit overflow for >64-bit segment spans.
    """
    if bound <= 1:
        return 0
    bits = (bound - 1).bit_length()
    while True:
        value = 0
        remaining = bits
        while remaining > 0:
            chunk = min(32, remaining)
            value = (value << chunk) | int(rng.integers(0, 1 << chunk))
            remaining -= chunk
        if value < bound:
            return value


class AddressEncoder:
    """Bidirectional mapping between nybble rows and code vectors."""

    def __init__(self, mined_segments: Sequence[MinedSegment]):
        if not mined_segments:
            raise ValueError("need at least one mined segment")
        self._mined: Tuple[MinedSegment, ...] = tuple(mined_segments)
        expected = 1
        for mined in self._mined:
            if mined.segment.first_nybble != expected:
                raise ValueError(
                    f"segment {mined.segment.label} does not start at "
                    f"nybble {expected}"
                )
            expected = mined.segment.last_nybble + 1
        self._width = self._mined[-1].segment.last_nybble

    @property
    def mined_segments(self) -> Tuple[MinedSegment, ...]:
        return self._mined

    @property
    def width(self) -> int:
        """Total width in nybbles covered by the segments."""
        return self._width

    @property
    def variable_names(self) -> List[str]:
        """Segment labels, the BN variable names."""
        return [m.segment.label for m in self._mined]

    @property
    def cardinalities(self) -> List[int]:
        """Number of codes per segment."""
        return [m.cardinality for m in self._mined]

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode_set(self, address_set: AddressSet) -> np.ndarray:
        """Encode a whole set into an (n, num_segments) code matrix.

        Uses an exact-value lookup table per segment, built once, so
        encoding is O(n log d) rather than O(n * |V_k|).
        """
        if address_set.width != self._width:
            raise ValueError(
                f"address set width {address_set.width} != encoder width "
                f"{self._width}"
            )
        n = len(address_set)
        matrix = np.zeros((n, len(self._mined)), dtype=np.int64)
        for column, mined in enumerate(self._mined):
            seg = mined.segment
            values = address_set.segment_values(seg.first_nybble, seg.last_nybble)
            matrix[:, column] = self._encode_column(mined, values)
        return matrix

    def encode_address(self, address: IPv6Address) -> List[str]:
        """Encode one address into code strings, e.g. ['A1', 'B2', ...]."""
        row = AddressSet.from_addresses([address], width=32).truncate(self._width)
        indices = self.encode_set(row)[0]
        return [
            mined.values[index].code
            for mined, index in zip(self._mined, indices)
        ]

    @staticmethod
    def _encode_column(mined: MinedSegment, values: np.ndarray) -> np.ndarray:
        distinct, inverse = np.unique(values, return_inverse=True)
        code_of = np.asarray(
            [mined.code_index(int(v)) for v in distinct], dtype=np.int64
        )
        return code_of[inverse]

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode_matrix(
        self, codes: np.ndarray, rng: np.random.Generator
    ) -> List[int]:
        """Materialize code vectors into ``width``-nybble integers.

        Point codes decode exactly; range codes draw uniformly from their
        interval (vectorized per segment).
        """
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != len(self._mined):
            raise ValueError("code matrix shape mismatch")
        n = codes.shape[0]
        pieces: List[object] = []
        for column, mined in enumerate(self._mined):
            column_codes = codes[:, column]
            if np.any(column_codes < 0) or np.any(
                column_codes >= mined.cardinality
            ):
                raise IndexError(
                    f"code out of range for segment {mined.segment.label}"
                )
            if mined.segment.nybble_count <= 16:
                # Exact uint64 arithmetic: float64 would corrupt values
                # wider than 53 bits.
                lows = np.asarray([v.low for v in mined.values], dtype=np.uint64)
                highs = np.asarray(
                    [v.high for v in mined.values], dtype=np.uint64
                )
                row_lows = lows[column_codes]
                # endpoint=True keeps the bound at span-1, which always
                # fits in uint64 even for a full 64-bit segment range.
                offsets = rng.integers(
                    0,
                    highs[column_codes] - row_lows,
                    dtype=np.uint64,
                    endpoint=True,
                )
                pieces.append(row_lows + offsets)
            else:
                # Segments wider than 64 bits (only possible when the
                # hard /32 and /64 cuts are disabled): Python-int path.
                values = []
                for code in column_codes:
                    element = mined.values[int(code)]
                    values.append(element.low + _rand_below(rng, element.span()))
                pieces.append(values)
        results: List[int] = []
        for row in range(n):
            value = 0
            for column, mined in enumerate(self._mined):
                value = (value << (4 * mined.segment.nybble_count)) | int(
                    pieces[column][row]
                )
            results.append(value)
        return results

    def decode_codes(
        self, code_strings: Sequence[str], rng: np.random.Generator
    ) -> int:
        """Materialize one vector of code strings (e.g. ['A1', 'B2', ...])."""
        if len(code_strings) != len(self._mined):
            raise ValueError("one code per segment is required")
        indices = []
        for mined, code in zip(self._mined, code_strings):
            try:
                indices.append(mined.codes().index(code))
            except ValueError:
                raise KeyError(
                    f"unknown code {code!r} for segment {mined.segment.label}"
                ) from None
        return self.decode_matrix(np.asarray([indices]), rng)[0]

    def code_table(self) -> Dict[str, List[Tuple[str, str, float]]]:
        """Table-3-style dump: label → [(code, value text, frequency)]."""
        table: Dict[str, List[Tuple[str, str, float]]] = {}
        for mined in self._mined:
            nybbles = mined.segment.nybble_count
            table[mined.segment.label] = [
                (v.code, v.format_value(nybbles), v.frequency)
                for v in mined.values
            ]
        return table
