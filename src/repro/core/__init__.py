"""The paper's primary contribution: the Entropy/IP pipeline.

Stepwise (Section 1): ingest a sample set of addresses, compute
entropies, discover and mine segments, build a BN model, and expose the
results for exploration and candidate generation.

- :mod:`repro.core.segmentation` — §4.2 threshold/hysteresis segmentation;
- :mod:`repro.core.mining` — §4.3 three-step value/range mining;
- :mod:`repro.core.encoding` — §4.3 address ↔ code-vector encoding;
- :mod:`repro.core.model` — §4.4 BN model over code vectors;
- :mod:`repro.core.acr` — 4-bit Aggregate Count Ratio (Figs. 7-10);
- :mod:`repro.core.windowing` — §4.5 windowed entropy (Fig. 5);
- :mod:`repro.core.browser` — the conditional probability browser;
- :mod:`repro.core.pipeline` — the one-stop :class:`EntropyIP` facade.
"""

from repro.core.acr import aggregate_count_ratio
from repro.core.browser import ConditionalBrowser
from repro.core.classify import Classification, classify_set, signature_of
from repro.core.encoding import AddressEncoder
from repro.core.mining import MinedSegment, MiningConfig, SegmentValue, mine_segment
from repro.core.model import AddressModel
from repro.core.pipeline import EntropyIP
from repro.core.report import full_report
from repro.core.segmentation import Segment, SegmentationConfig, segment_addresses
from repro.core.temporal import SnapshotDelta, compare_snapshots, detect_changes
from repro.core.windowing import windowing_analysis

__all__ = [
    "AddressEncoder",
    "AddressModel",
    "Classification",
    "ConditionalBrowser",
    "classify_set",
    "signature_of",
    "EntropyIP",
    "MinedSegment",
    "MiningConfig",
    "Segment",
    "SegmentValue",
    "SegmentationConfig",
    "SnapshotDelta",
    "aggregate_count_ratio",
    "compare_snapshots",
    "detect_changes",
    "full_report",
    "mine_segment",
    "segment_addresses",
    "windowing_analysis",
]
