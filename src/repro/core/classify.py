"""Set-level classification of address sets (a §1 application).

The paper's Fig. 6 shows that server, router, and client aggregates
have distinctive entropy signatures.  This module turns those
signatures into a classifier — the paper's application (a):
"identifying homogeneous groups of client addresses", generalized to
the three categories the evaluation uses:

- **clients**: IID entropy ≈ 1 (privacy addresses), high H_S;
- **routers**: very low IID entropy (point-to-point or zero-dominated
  IIDs), low H_S;
- **servers**: intermediate, oscillating entropy with low-order static
  assignment (entropy rising toward bit 128).

It also detects the specific IID-practice artifacts the paper keys on:
the EUI-64 ``ff:fe`` dip at bits 88-104 and the privacy-address u-bit
dip at bits 68-72.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.ipv6.sets import AddressSet
from repro.stats.entropy import nybble_entropies


@dataclass(frozen=True)
class SetSignature:
    """The entropy features the classifier reads."""

    total_entropy: float
    iid_entropy_median: float
    u_bit_dip: float       # neighborhood entropy minus bits-68-72 entropy
    eui64_dip: float       # neighborhood entropy minus bits-88-104 entropy
    low_order_rise: float  # tail entropy minus bits-80ish entropy
    iid_active_nybbles: int  # IID nybbles with entropy > 0.25

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_entropy": self.total_entropy,
            "iid_entropy_median": self.iid_entropy_median,
            "u_bit_dip": self.u_bit_dip,
            "eui64_dip": self.eui64_dip,
            "low_order_rise": self.low_order_rise,
            "iid_active_nybbles": float(self.iid_active_nybbles),
        }


@dataclass(frozen=True)
class Classification:
    """Category verdict with supporting signature."""

    category: str  # "client" | "router" | "server"
    confidence: float
    signature: SetSignature
    slaac_privacy_suspected: bool
    eui64_suspected: bool


def signature_of(address_set: AddressSet) -> SetSignature:
    """Extract the Fig. 6 features from a full-width address set."""
    if address_set.width != 32:
        raise ValueError("classification needs full 32-nybble addresses")
    entropy = nybble_entropies(address_set)
    iid = entropy[16:]
    neighborhood_68 = float(np.mean([entropy[16], entropy[18]]))
    neighborhood_88 = float(np.mean([entropy[20], entropy[21], entropy[26],
                                     entropy[27]]))
    return SetSignature(
        total_entropy=float(entropy.sum()),
        iid_entropy_median=float(np.median(iid)),
        u_bit_dip=neighborhood_68 - float(entropy[17]),
        eui64_dip=neighborhood_88 - float(np.mean(entropy[22:26])),
        low_order_rise=float(np.mean(entropy[30:]) - np.mean(entropy[20:22])),
        iid_active_nybbles=int((iid > 0.25).sum()),
    )


def classify_set(address_set: AddressSet) -> Classification:
    """Categorize an address set as client-, router-, or server-like.

    A transparent linear scorer over the signature features — not a
    trained model, but the codified version of how §5.1 reads Fig. 6:
    clients show near-1 IID entropy across the whole IID; routers vary
    in at most a couple of trailing nybbles; servers assign statically
    from the low-order bits across several nybbles (the rising tail).

    Router sets whose IIDs imitate server practice (R3's 12 random
    trailing bits, R4's embedded IPv4) are genuinely ambiguous to an
    entropy-only observer — the paper separates them by data source
    (traceroute), not by shape.
    """
    signature = signature_of(address_set)
    median = signature.iid_entropy_median
    active = signature.iid_active_nybbles
    scores = {
        # Clients: pseudo-random IIDs dominate, often with the u-bit dip.
        "client": 3.0 * median - 1.0 + 1.5 * max(0.0, signature.u_bit_dip),
        # Routers: IIDs nearly constant, variability confined to a
        # couple of trailing nybbles.
        "router": 1.5 * (1.0 - median) - 0.3 * active + 0.5,
        # Servers: static low-order assignment spreading over several
        # nybbles with entropy rising toward bit 128.
        "server": 1.5 * (1.0 - median)
        + 0.5 * max(0, min(active, 8) - 3)
        - 1.2
        + 1.2 * max(0.0, signature.low_order_rise - 0.2)
        - 2.0 * max(0.0, median - 0.5),
    }
    best = max(scores, key=scores.get)
    ordered = sorted(scores.values(), reverse=True)
    margin = ordered[0] - ordered[1]
    confidence = float(1.0 - np.exp(-3.0 * max(0.0, margin)))
    return Classification(
        category=best,
        confidence=confidence,
        signature=signature,
        slaac_privacy_suspected=(
            signature.iid_entropy_median > 0.85 and signature.u_bit_dip > 0.05
        ),
        eui64_suspected=signature.eui64_dip > 0.15,
    )
