"""Address segmentation (Section 4.2).

Adjacent nybbles with similar entropy are grouped into *segments*,
labeled A, B, C, ... left to right.  A new segment starts at nybble i
whenever H(X_i) compared with H(X_{i-1}) passes through any of the
thresholds T = {0.025, 0.1, 0.3, 0.5, 0.9}, subject to a hysteresis of
Th = 0.05: |H(X_i) - H(X_{i-1})| must exceed Th.

Worked example from the paper: if H(X_{i-1}) = 0.49, the next segment
starts only if H(X_i) < 0.3 (the nearest lower threshold) or
H(X_i) > 0.54 (= 0.49 + Th, which dominates the nearest upper threshold
0.5).  Both conditions are instances of the single rule
"crosses a threshold AND moves more than Th".

Two hard boundaries are always inserted (motivated by RIR /32
allocations and the RFC 4291 /64 network/interface split): bits 1-32 are
always segment A, and a boundary always falls after bit 64.  Both can be
disabled via :class:`SegmentationConfig` — Section 6 discusses the /32
hard-wiring as a known limitation, and our ablation bench exercises it.
"""

from __future__ import annotations

from dataclasses import dataclass
from string import ascii_uppercase
from typing import List, Sequence, Tuple

from repro.ipv6.sets import AddressSet
from repro.stats.entropy import nybble_entropies

#: The paper's threshold set T.
DEFAULT_THRESHOLDS: Tuple[float, ...] = (0.025, 0.1, 0.3, 0.5, 0.9)

#: The paper's hysteresis Th.
DEFAULT_HYSTERESIS: float = 0.05


@dataclass(frozen=True)
class SegmentationConfig:
    """Parameters of the segmentation algorithm (all from §4.2)."""

    thresholds: Tuple[float, ...] = DEFAULT_THRESHOLDS
    hysteresis: float = DEFAULT_HYSTERESIS
    #: Always make bits 1-32 a single segment A — RIR /32 practice.
    #: (This both forces a boundary after nybble 8 and suppresses any
    #: entropy-driven boundary inside nybbles 2-8: Table 3's segment A
    #: spans the full /32 even though its two prefix values differ in
    #: several hex characters.)
    hard_cut_32: bool = True
    #: Always cut after bit 64 (nybble 16) — network/IID split.
    hard_cut_64: bool = True

    def __post_init__(self):
        if not self.thresholds:
            raise ValueError("at least one threshold is required")
        if any(not 0 < t < 1 for t in self.thresholds):
            raise ValueError("thresholds must lie strictly inside (0, 1)")
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")


@dataclass(frozen=True)
class Segment:
    """A contiguous run of nybbles with similar entropy.

    Nybble positions are 1-indexed and inclusive, matching §4.1; bit
    positions follow the paper's figure labels (``bits`` of segment A in
    a 32-nybble address is (0, 32)).
    """

    label: str
    first_nybble: int
    last_nybble: int

    def __post_init__(self):
        if self.first_nybble < 1 or self.first_nybble > self.last_nybble:
            raise ValueError(
                f"invalid segment bounds: ({self.first_nybble}, {self.last_nybble})"
            )

    @property
    def nybble_count(self) -> int:
        """Width in nybbles."""
        return self.last_nybble - self.first_nybble + 1

    @property
    def bit_count(self) -> int:
        """Width in bits."""
        return 4 * self.nybble_count

    @property
    def bits(self) -> Tuple[int, int]:
        """(start_bit, end_bit), 0-indexed, end exclusive."""
        return (4 * (self.first_nybble - 1), 4 * self.last_nybble)

    @property
    def cardinality(self) -> int:
        """Number of possible raw values (16**nybbles)."""
        return 16 ** self.nybble_count

    def __str__(self) -> str:
        start, end = self.bits
        return f"{self.label}({start}-{end})"


def segment_label(index: int) -> str:
    """Label of the ``index``-th segment: A..Z, then AA, AB, ..."""
    if index < 0:
        raise ValueError("segment index must be non-negative")
    if index < 26:
        return ascii_uppercase[index]
    return (
        ascii_uppercase[index // 26 - 1] + ascii_uppercase[index % 26]
    )


def crosses_threshold(
    previous: float, current: float, thresholds: Sequence[float], hysteresis: float
) -> bool:
    """The §4.2 rule: passes through a threshold and moves more than Th."""
    if abs(current - previous) <= hysteresis:
        return False
    low, high = min(previous, current), max(previous, current)
    return any(low < t <= high for t in thresholds)


def boundaries_from_entropy(
    entropies: Sequence[float], config: SegmentationConfig = SegmentationConfig()
) -> List[int]:
    """Segment start positions (1-indexed nybbles) for an entropy profile.

    Always contains 1; hard cuts at 9 (after bit 32) and 17 (after bit
    64) are added when enabled and within range.
    """
    width = len(entropies)
    if width == 0:
        raise ValueError("empty entropy profile")
    starts = {1}
    if config.hard_cut_32 and width > 8:
        starts.add(9)
    if config.hard_cut_64 and width > 16:
        starts.add(17)
    for i in range(1, width):
        if config.hard_cut_32 and i < 8:
            continue  # bits 1-32 stay one segment (see hard_cut_32)
        if crosses_threshold(
            entropies[i - 1], entropies[i], config.thresholds, config.hysteresis
        ):
            starts.add(i + 1)  # segment starts at 1-indexed nybble i+1
    return sorted(starts)


def segments_from_boundaries(starts: Sequence[int], width: int) -> List[Segment]:
    """Materialize labeled segments from sorted start positions."""
    if not starts or starts[0] != 1:
        raise ValueError("boundaries must start at nybble 1")
    segments = []
    for index, first in enumerate(starts):
        last = (starts[index + 1] - 1) if index + 1 < len(starts) else width
        segments.append(Segment(segment_label(index), first, last))
    return segments


def segment_addresses(
    address_set: AddressSet, config: SegmentationConfig = SegmentationConfig()
) -> List[Segment]:
    """Full segmentation of an address set (entropy → boundaries → labels).

    >>> s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
    >>> [str(seg) for seg in segment_addresses(s)][:2]
    ['A(0-32)', 'B(32-64)']
    """
    entropies = nybble_entropies(address_set)
    starts = boundaries_from_entropy(entropies, config)
    return segments_from_boundaries(starts, address_set.width)


def segment_by_label(segments: Sequence[Segment], label: str) -> Segment:
    """Find a segment by its letter label."""
    for segment in segments:
        if segment.label == label:
            return segment
    raise KeyError(f"no segment labeled {label!r}")
