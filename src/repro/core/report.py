"""Full analysis reports — the text analogue of the §1 "graphical web
page ... for a network analyst to navigate".

The paper's system prepares, per analyzed set: the entropy/ACR plot,
the BN dependency graph, the segment value browser, and the target
generator.  :func:`full_report` composes all of these (plus the
windowing map and subnet discovery) into one deterministic document.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.trie import discover_subnets
from repro.stats.mutual_information import top_dependent_pairs
from repro.viz.figures import (
    render_acr_entropy_plot,
    render_bn_graph,
    render_browser,
    render_mining_table,
    render_windowing_map,
)


def full_report(
    analysis: EntropyIP,
    title: str = "Entropy/IP analysis",
    n_candidates: int = 10,
    rng: Optional[np.random.Generator] = None,
    include_windowing: bool = True,
    include_subnets: bool = True,
) -> str:
    """One self-contained report with every §1 page element."""
    sections: List[str] = [f"# {title}", "", analysis.describe(), ""]

    sections.append("## Entropy and 4-bit ACR")
    sections.append(render_acr_entropy_plot(analysis))
    sections.append("")

    sections.append("## Segment values (mining results)")
    sections.append(render_mining_table(analysis))
    sections.append("")

    sections.append("## Bayesian network")
    sections.append(render_bn_graph(analysis))
    sections.append("")

    sections.append("## Conditional probability browser (unconditioned)")
    sections.append(render_browser(analysis.browse()))
    sections.append("")

    pairs = top_dependent_pairs(analysis.address_set, limit=5)
    if pairs:
        sections.append("## Strongest non-adjacent nybble dependencies")
        for i, j, nmi in pairs:
            sections.append(f"- nybble {i} <-> nybble {j}: NMI {nmi:.2f}")
        sections.append("")

    if include_windowing:
        sections.append("## Windowed entropy")
        sections.append(render_windowing_map(analysis.windowing()))
        sections.append("")

    if include_subnets and analysis.address_set.width == 32:
        subnets = discover_subnets(
            analysis.address_set.to_ints(), min_members=max(8, len(analysis.address_set) // 200)
        )
        sections.append("## Discovered candidate subnets")
        if subnets:
            for subnet in subnets[:20]:
                sections.append(
                    f"- {subnet.prefix}  ({subnet.members} members)"
                )
            if len(subnets) > 20:
                sections.append(f"- ... and {len(subnets) - 20} more")
        else:
            sections.append("- (none above the density threshold)")
        sections.append("")

    if n_candidates > 0:
        sections.append("## Generated candidate targets")
        for address in analysis.generate_addresses(n_candidates, rng):
            sections.append(f"- {address}")
        sections.append("")

    return "\n".join(sections)
