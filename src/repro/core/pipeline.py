"""The one-stop Entropy/IP facade.

:class:`EntropyIP` runs the full stepwise pipeline of Section 1:

    ingest addresses → compute entropies → discover segments → mine
    segment values → build a BN model

and then exposes exploration (entropy/ACR profiles, the conditional
probability browser, windowing analysis) and candidate generation.

The prefix-prediction mode of Section 5.6 is simply ``width=16``:
the identical pipeline constrained to the top 64 bits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.bayes.structure import StructureConfig, learn_structure
from repro.core.acr import aggregate_count_ratio
from repro.core.browser import ConditionalBrowser
from repro.core.encoding import AddressEncoder
from repro.core.mining import MinedSegment, MiningConfig, mine_segments
from repro.core.model import AddressModel, EvidenceLike
from repro.core.segmentation import (
    Segment,
    SegmentationConfig,
    boundaries_from_entropy,
    segments_from_boundaries,
)
from repro.core.windowing import WindowingResult, windowing_analysis
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet
from repro.stats.entropy import _nybble_entropies_scalar, nybble_entropies
from repro.stats.rng import default_rng


class EntropyIP:
    """A fitted Entropy/IP analysis of one address set.

    >>> ips = ["2001:db8::%x" % i for i in range(1, 200)]
    >>> analysis = EntropyIP.fit(ips)
    >>> analysis.segments[0].label
    'A'
    """

    def __init__(
        self,
        address_set: AddressSet,
        entropies: np.ndarray,
        segments: List[Segment],
        mined: List[MinedSegment],
        model: AddressModel,
    ):
        self.address_set = address_set
        self.entropies = entropies
        self.segments = segments
        self.mined = mined
        self.model = model

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        addresses: Union[AddressSet, Iterable[Union[str, int, IPv6Address]]],
        width: int = 32,
        segmentation: SegmentationConfig = SegmentationConfig(),
        mining: MiningConfig = MiningConfig(),
        structure: StructureConfig = StructureConfig(),
    ) -> "EntropyIP":
        """Run the full pipeline on a training set.

        ``addresses`` may be an :class:`AddressSet` or any iterable of
        address strings / integers / :class:`IPv6Address`.  ``width=16``
        selects the §5.6 prefix mode (top 64 bits only).
        """
        address_set = _as_address_set(addresses, width)
        if len(address_set) == 0:
            raise ValueError("cannot fit on an empty address set")
        entropies = nybble_entropies(address_set)
        starts = boundaries_from_entropy(entropies, segmentation)
        segments = segments_from_boundaries(starts, address_set.width)
        mined = mine_segments(address_set, segments, mining)
        encoder = AddressEncoder(mined)
        model = AddressModel.fit(address_set, encoder, structure)
        return cls(address_set, entropies, segments, mined, model)

    @classmethod
    def _fit_reference(
        cls,
        addresses: Union[AddressSet, Iterable[Union[str, int, IPv6Address]]],
        width: int = 32,
        segmentation: SegmentationConfig = SegmentationConfig(),
        mining: MiningConfig = MiningConfig(),
        structure: StructureConfig = StructureConfig(),
    ) -> "EntropyIP":
        """The retained pre-vectorization scalar fit path.

        Runs the identical pipeline on the scalar building blocks kept
        for exactly this purpose — the per-column entropy loop, the
        per-value Python histogram / grid-scan DBSCAN mining engine,
        and re-count-per-score structure learning — and produces a
        **bit-identical** fitted model (same segments, mined values, BN
        edges and CPD tables; the golden-fit suite asserts it).  The
        fit-stage benchmark measures :meth:`fit` against this method.
        """
        address_set = _as_address_set(addresses, width)
        if len(address_set) == 0:
            raise ValueError("cannot fit on an empty address set")
        entropies = _nybble_entropies_scalar(address_set)
        starts = boundaries_from_entropy(entropies, segmentation)
        segments = segments_from_boundaries(starts, address_set.width)
        mined = mine_segments(address_set, segments, mining, engine="reference")
        encoder = AddressEncoder(mined)
        codes = encoder.encode_set(address_set)
        network = learn_structure(
            codes,
            encoder.variable_names,
            encoder.cardinalities,
            structure,
            cache=False,
        )
        model = AddressModel(encoder, network)
        return cls(address_set, entropies, segments, mined, model)

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------

    @property
    def encoder(self) -> AddressEncoder:
        return self.model.encoder

    def entropy(self) -> np.ndarray:
        """Per-nybble normalized entropy (the blue line of the figures)."""
        return self.entropies

    def total_entropy(self) -> float:
        """H_S of eq. (3)."""
        return float(self.entropies.sum())

    def acr(self) -> np.ndarray:
        """4-bit ACR (the dashed red line of the figures)."""
        return aggregate_count_ratio(self.address_set)

    def browse(
        self, evidence: Optional[EvidenceLike] = None
    ) -> ConditionalBrowser:
        """Open the conditional probability browser."""
        return ConditionalBrowser(self.model, evidence)

    def windowing(self, measure: str = "entropy") -> WindowingResult:
        """Fig. 5-style windowed variability analysis."""
        return windowing_analysis(self.address_set, measure=measure)

    def segment_table(self) -> Dict[str, List]:
        """Table-3-style mining dump (code, value, frequency per segment)."""
        return self.encoder.code_table()

    def describe(self) -> str:
        """One-paragraph text summary of the analysis."""
        segments_text = ", ".join(str(s) for s in self.segments)
        return (
            f"Entropy/IP analysis of {len(self.address_set)} addresses "
            f"(width {self.address_set.width} nybbles): H_S = "
            f"{self.total_entropy():.1f}; {len(self.segments)} segments "
            f"[{segments_text}]; BN edges: {self.model.network.edges()}"
        )

    # ------------------------------------------------------------------
    # generation (Sections 5.5-5.6)
    # ------------------------------------------------------------------

    def generate(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        evidence: Optional[EvidenceLike] = None,
        exclude_training: bool = True,
        workers: Optional[int] = None,
    ) -> AddressSet:
        """Generate ``n`` distinct candidate targets.

        With ``exclude_training`` (the default, matching §5.5), no
        candidate equals a training address.  ``workers`` shards the
        generation across a thread pool (see :mod:`repro.exec`); output
        is bit-identical for any worker count.
        """
        rng = default_rng(rng)
        exclude = self.address_set if exclude_training else None
        return self.model.generate_set(
            n, rng, evidence=evidence, exclude=exclude, workers=workers
        )

    def generate_addresses(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        evidence: Optional[EvidenceLike] = None,
        exclude_training: bool = True,
        workers: Optional[int] = None,
    ) -> List[IPv6Address]:
        """Like :meth:`generate`, materialized as address objects."""
        return self.generate(
            n,
            rng,
            evidence=evidence,
            exclude_training=exclude_training,
            workers=workers,
        ).addresses()


def _as_address_set(
    addresses: Union[AddressSet, Iterable[Union[str, int, IPv6Address]]],
    width: int,
) -> AddressSet:
    if isinstance(addresses, AddressSet):
        if addresses.width == width:
            return addresses
        if addresses.width > width:
            return addresses.truncate(width)
        raise ValueError(
            f"address set width {addresses.width} < requested width {width}"
        )
    materialized = list(addresses)
    if materialized and isinstance(materialized[0], str):
        return AddressSet.from_strings(materialized, width=width)
    return AddressSet.from_addresses(materialized, width=width)
