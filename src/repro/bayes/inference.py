"""Exact inference by variable elimination.

This realizes the conditional-probability browser of Fig. 1(b,c): given
evidence on any subset of segments, compute the posterior distribution of
every other segment.  Because elimination is exact, influence flows
"backwards" through the DAG automatically — the evidential reasoning the
paper highlights (selecting a value for segment J changes the
distribution of the earlier segment C, which in turn changes F).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.bayes.factor import Factor, unit_factor
from repro.bayes.network import BayesianNetwork


class VariableElimination:
    """Exact query engine over a :class:`BayesianNetwork`."""

    def __init__(self, network: BayesianNetwork):
        self._network = network

    def query(
        self,
        variables: Sequence[str],
        evidence: Mapping[str, int] = None,
    ) -> Factor:
        """Joint posterior P(variables | evidence), normalized.

        Raises ``ZeroDivisionError`` if the evidence has zero probability
        under the model.
        """
        evidence = dict(evidence or {})
        query_vars = list(variables)
        for variable in query_vars:
            if variable not in self._network.variables:
                raise KeyError(f"unknown variable: {variable!r}")
            if variable in evidence:
                raise ValueError(f"{variable!r} is both queried and evidence")

        factors = [f.reduce_evidence(evidence) for f in self._network.factors()]
        keep = set(query_vars)
        hidden = [
            v
            for v in self._network.variables
            if v not in keep and v not in evidence
        ]
        for variable in self._elimination_order(hidden, factors):
            factors = _eliminate(factors, variable)
        result = unit_factor()
        for factor in factors:
            result = result.multiply(factor)
        return result.marginalize_all_but(query_vars).reorder(query_vars).normalize()

    def marginal(self, variable: str, evidence: Mapping[str, int] = None) -> np.ndarray:
        """Posterior distribution of one variable as a vector."""
        return self.query([variable], evidence).table

    def all_marginals(
        self, evidence: Mapping[str, int] = None
    ) -> Dict[str, np.ndarray]:
        """Posterior of every non-evidence variable.

        This is exactly what the conditional probability browser shows
        after each click.
        """
        evidence = dict(evidence or {})
        return {
            variable: self.marginal(variable, evidence)
            for variable in self._network.variables
            if variable not in evidence
        }

    def evidence_probability(self, evidence: Mapping[str, int]) -> float:
        """P(evidence): the normalizer of the evidence-reduced product."""
        if not evidence:
            return 1.0
        factors = [f.reduce_evidence(evidence) for f in self._network.factors()]
        hidden = [v for v in self._network.variables if v not in evidence]
        for variable in self._elimination_order(hidden, factors):
            factors = _eliminate(factors, variable)
        result = unit_factor()
        for factor in factors:
            result = result.multiply(factor)
        for variable in result.variables:
            result = result.marginalize(variable)
        return float(result.table)

    def map_assignment(
        self, evidence: Mapping[str, int] = None
    ) -> Dict[str, int]:
        """Highest-posterior-marginal state of each non-evidence variable.

        (Max of marginals, not joint MAP — this is what the browser's
        per-segment heat map highlights.)
        """
        return {
            variable: int(np.argmax(distribution))
            for variable, distribution in self.all_marginals(evidence).items()
        }

    def _elimination_order(
        self, hidden: Iterable[str], factors: List[Factor]
    ) -> List[str]:
        """Min-fill-lite ordering: eliminate lowest-degree variables first.

        The models here are small (tens of variables), so a simple greedy
        min-neighbors heuristic over the factor graph is plenty.
        """
        hidden = list(hidden)
        adjacency: Dict[str, set] = {v: set() for v in hidden}
        for factor in factors:
            scope = [v for v in factor.variables if v in adjacency]
            for variable in scope:
                adjacency[variable].update(s for s in scope if s != variable)
        order: List[str] = []
        remaining = set(hidden)
        while remaining:
            best = min(remaining, key=lambda v: (len(adjacency[v] & remaining), v))
            order.append(best)
            neighbors = adjacency[best] & remaining
            for a in neighbors:
                adjacency[a].update(n for n in neighbors if n != a)
            remaining.discard(best)
        return order


def _eliminate(factors: List[Factor], variable: str) -> List[Factor]:
    """Multiply all factors mentioning ``variable`` and sum it out."""
    involved = [f for f in factors if variable in f.variables]
    untouched = [f for f in factors if variable not in f.variables]
    if not involved:
        return untouched
    product = involved[0]
    for factor in involved[1:]:
        product = product.multiply(factor)
    untouched.append(product.marginalize(variable))
    return untouched
