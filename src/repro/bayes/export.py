"""Export formats for learned models (DOT graphs, browser JSON).

The paper's system renders its results as an interactive web page;
these exporters produce the equivalent machine-readable artifacts: a
Graphviz DOT description of the BN structure (Fig. 2) and a JSON
document with the segments, mined values, and current conditional
distributions (the data behind Fig. 1's browser).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.bayes.network import BayesianNetwork


def to_dot(
    network: BayesianNetwork,
    highlight_child: Optional[str] = None,
    graph_name: str = "entropy_ip_bn",
) -> str:
    """Graphviz DOT for the BN structure.

    Edges into ``highlight_child`` are drawn red, matching Fig. 2's
    marking of segment J's direct parents.
    """
    lines = [f"digraph {graph_name} {{", "  rankdir=LR;"]
    for variable in network.variables:
        lines.append(
            f'  {variable} [shape=circle, label="{variable}"];'
        )
    for parent, child in network.edges():
        attributes = ' [color=red, penwidth=2]' if child == highlight_child else ""
        lines.append(f"  {parent} -> {child}{attributes};")
    lines.append("}")
    return "\n".join(lines)


def browser_to_json(browser, indent: Optional[int] = None) -> str:
    """JSON document of the conditional browser's current state.

    Layout per segment: bit span, and the mined values with their code,
    text rendering, posterior probability, and evidence flag — exactly
    the data the paper's web page binds to its colored boxes.
    """
    from repro.core.browser import ConditionalBrowser

    if not isinstance(browser, ConditionalBrowser):
        raise TypeError("expected a ConditionalBrowser")
    rows = browser.rows()
    document = {
        "evidence": browser.evidence_codes(),
        "evidence_probability": browser.probability_of_evidence(),
        "segments": [],
    }
    for mined in browser.model.encoder.mined_segments:
        label = mined.segment.label
        start, end = mined.segment.bits
        document["segments"].append(
            {
                "label": label,
                "bits": [start, end],
                "values": [
                    {
                        "code": row.code,
                        "value": row.value_text,
                        "probability": round(row.probability, 6),
                        "selected": row.is_evidence,
                    }
                    for row in rows[label]
                ],
            }
        )
    return json.dumps(document, indent=indent)
