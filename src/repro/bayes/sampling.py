"""Sampling from a Bayesian network.

Candidate-target generation (Section 5.5) draws code vectors from the
learned BN.  Unconstrained generation uses plain forward (ancestral)
sampling, which the ordering constraint makes trivial; generation
constrained to certain segment values ("optionally constrained", §4.4)
uses likelihood weighting with resampling.

Both samplers are fully vectorized: each variable is drawn for *all*
rows with a single inverse-CDF lookup (one ``rng.random(n)`` plus one
``searchsorted`` into the CPD's precomputed cumulative table, see
:meth:`repro.bayes.cpd.CPD.sampling_cdf`), regardless of how many
distinct parent configurations appear.  This is what makes the paper's
1M-candidate generation runs cheap.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork


def _flat_parent_configs(
    samples: np.ndarray,
    parent_columns: List[int],
    parent_cards: List[int],
) -> np.ndarray:
    """Mixed-radix flattening of each row's parent assignment."""
    flat_config = np.zeros(samples.shape[0], dtype=np.int64)
    for parent_column, parent_card in zip(parent_columns, parent_cards):
        flat_config = flat_config * parent_card + samples[:, parent_column]
    return flat_config


def _draw_states(
    cpd: CPD, flat_config: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """Inverse-CDF draw of one child state per row, all rows at once.

    ``cpd.sampling_cdf()`` lays the per-configuration CDFs end to end on
    the number line (configuration ``c`` occupies ``[c, c + 1]``), so
    ``searchsorted(cdf, c + u, side="right")`` lands on the first state
    whose cumulative probability exceeds ``u`` — the classic inverse-CDF
    method, with zero-probability states correctly skipped.
    """
    cdf = cpd.sampling_cdf()
    if not cpd.parents:
        # Root variable: every row shares configuration 0.
        return np.searchsorted(cdf, u, side="right")
    keys = flat_config + u
    states = np.searchsorted(cdf, keys, side="right") - flat_config * cpd.child_cardinality
    return states


def forward_sample(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_samples`` code vectors by ancestral sampling.

    Returns an (n_samples, num_vars) integer matrix with columns in
    ``network.variables`` order.  One uniform vector and one
    ``searchsorted`` per variable — no per-configuration Python loops.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    num_vars = len(network.variables)
    samples = np.zeros((n_samples, num_vars), dtype=np.int64)
    index = {v: i for i, v in enumerate(network.variables)}
    for variable in network.variables:
        cpd = network.cpd(variable)
        column = index[variable]
        parent_columns = [index[p] for p in cpd.parents]
        parent_cards = [network.cardinality(p) for p in cpd.parents]
        flat_config = _flat_parent_configs(samples, parent_columns, parent_cards)
        samples[:, column] = _draw_states(cpd, flat_config, rng.random(n_samples))
    return samples


def likelihood_weighted_sample(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
    evidence: Mapping[str, int],
    oversample: int = 4,
) -> np.ndarray:
    """Draw approximate posterior samples consistent with ``evidence``.

    Standard likelihood weighting: evidence variables are clamped, other
    variables are forward-sampled, and each trajectory is weighted by the
    probability of the clamped values given its sampled parents.  The
    returned ``n_samples`` rows are drawn from the weighted pool
    (sampling-importance-resampling); ``oversample`` controls the pool
    size multiplier.
    """
    if not evidence:
        return forward_sample(network, n_samples, rng)
    for variable in evidence:
        if variable not in network.variables:
            raise KeyError(f"unknown evidence variable: {variable!r}")
    pool_size = max(n_samples * oversample, 1)
    num_vars = len(network.variables)
    samples = np.zeros((pool_size, num_vars), dtype=np.int64)
    log_weights = np.zeros(pool_size, dtype=np.float64)
    index = {v: i for i, v in enumerate(network.variables)}

    for variable in network.variables:
        cpd = network.cpd(variable)
        column = index[variable]
        parent_columns = [index[p] for p in cpd.parents]
        parent_cards = [network.cardinality(p) for p in cpd.parents]
        flat_config = _flat_parent_configs(samples, parent_columns, parent_cards)
        if variable in evidence:
            state = evidence[variable]
            samples[:, column] = state
            flat_table = cpd.table.reshape(cpd.child_cardinality, -1)
            probabilities = flat_table[state, flat_config]
            with np.errstate(divide="ignore"):
                log_weights += np.log(probabilities)
            continue
        samples[:, column] = _draw_states(cpd, flat_config, rng.random(pool_size))

    peak = log_weights.max()
    if not np.isfinite(peak):
        raise ValueError("evidence has zero probability under the model")
    weights = np.exp(log_weights - peak)
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("evidence has zero probability under the model")
    chosen = rng.choice(pool_size, size=n_samples, replace=True, p=weights / total)
    return samples[chosen]


def sample_assignments(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
    evidence: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, int]]:
    """Samples as variable→state dictionaries (convenience wrapper)."""
    if evidence:
        matrix = likelihood_weighted_sample(network, n_samples, rng, evidence)
    else:
        matrix = forward_sample(network, n_samples, rng)
    return [
        {v: int(matrix[row, col]) for col, v in enumerate(network.variables)}
        for row in range(matrix.shape[0])
    ]
