"""Sampling from a Bayesian network.

Candidate-target generation (Section 5.5) draws code vectors from the
learned BN.  Unconstrained generation uses plain forward (ancestral)
sampling, which the ordering constraint makes trivial; generation
constrained to certain segment values ("optionally constrained", §4.4)
uses likelihood weighting with resampling.

Both samplers are fully vectorized and tuned for the paper's
1M-candidate runs:

- each variable is drawn for *all* rows at once by inverse CDF — one
  ``rng.random(n)`` plus ``searchsorted`` into the CPD's precomputed
  cumulative table (:meth:`repro.bayes.cpd.CPD.sampling_cdf`);
- samples accumulate in a ``(num_vars, n)`` matrix so every per-variable
  read and write is contiguous (the transposed view handed back is what
  the encoder consumes column-wise, which that layout also makes
  contiguous);
- degenerate variables (cardinality 1 — common in low-entropy router
  networks) skip both the uniform draw and the search entirely;
- variables whose concatenated CDF outgrows the cache
  (:data:`GROUPED_CDF_THRESHOLD`) switch to *grouped* draws: rows are
  grouped by their parent-state code and each group runs one
  ``searchsorted`` inside its own tiny CDF row
  (:meth:`~repro.bayes.cpd.CPD.sampling_cdf_matrix`) instead of
  binary-searching the full flat table per sample.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork

#: Flat-CDF length beyond which grouped per-configuration draws beat
#: one ``searchsorted`` over the whole concatenated table.  Small
#: tables live in L1 where the flat binary search is already memory
#: bound on reading the uniforms; past a few thousand entries the
#: search's random accesses start missing cache while each realized
#: configuration's slice still fits, so grouping wins.
GROUPED_CDF_THRESHOLD = 2048


def _flat_parent_configs(
    columns: np.ndarray,
    parent_rows: List[int],
    parent_cards: List[int],
) -> np.ndarray:
    """Mixed-radix flattening of each sample's parent assignment.

    ``columns`` is the ``(num_vars, n)`` sample matrix — one contiguous
    row read per parent.
    """
    flat_config = np.zeros(columns.shape[1], dtype=np.int64)
    for parent_row, parent_card in zip(parent_rows, parent_cards):
        flat_config = flat_config * parent_card + columns[parent_row]
    return flat_config


def _draw_states(
    cpd: CPD, flat_config: Optional[np.ndarray], u: np.ndarray
) -> np.ndarray:
    """Inverse-CDF draw of one child state per row, all rows at once.

    ``cpd.sampling_cdf()`` lays the per-configuration CDFs end to end on
    the number line (configuration ``c`` occupies ``[c, c + 1]``), so
    ``searchsorted(cdf, c + u, side="right")`` lands on the first state
    whose cumulative probability exceeds ``u`` — the classic inverse-CDF
    method, with zero-probability states correctly skipped.

    When the flat table is large (:data:`GROUPED_CDF_THRESHOLD`), rows
    are grouped by parent-state code instead and each group draws with
    one ``searchsorted`` into its configuration's own CDF row, keeping
    the searched array cache-resident regardless of how many
    configurations the CPD has.
    """
    cdf = cpd.sampling_cdf()
    if not cpd.parents:
        # Root variable: every row shares configuration 0 (callers may
        # pass flat_config=None rather than build a zero vector).
        return np.searchsorted(cdf, u, side="right")
    if len(cdf) <= GROUPED_CDF_THRESHOLD:
        keys = flat_config + u
        return (
            np.searchsorted(cdf, keys, side="right")
            - flat_config * cpd.child_cardinality
        )
    return _draw_states_grouped(cpd, flat_config, u)


def _draw_states_grouped(
    cpd: CPD, flat_config: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """Grouped inverse-CDF draw: one small ``searchsorted`` per realized
    parent configuration (see :meth:`CPD.sampling_cdf_matrix`)."""
    cdf2d = cpd.sampling_cdf_matrix()
    states = np.empty(len(u), dtype=np.int64)
    if not len(u):
        return states
    order = np.argsort(flat_config, kind="stable")
    sorted_config = flat_config[order]
    boundaries = np.flatnonzero(sorted_config[1:] != sorted_config[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(order)]])
    for start, end in zip(starts, ends):
        rows = order[start:end]
        config = sorted_config[start]
        states[rows] = np.searchsorted(
            cdf2d[config], u[rows], side="right"
        )
    return states


def _forward_sample_columns(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Ancestral sampling into the internal ``(num_vars, n)`` buffer.

    The single source of truth for the forward draw order — one
    ``rng.random(n)`` per non-degenerate variable, in
    ``network.variables`` order — shared by :func:`forward_sample` and
    :func:`sample_packed` so the two consume the RNG stream
    identically.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    num_vars = len(network.variables)
    columns = np.zeros((num_vars, n_samples), dtype=np.int64)
    index = {v: i for i, v in enumerate(network.variables)}
    for variable in network.variables:
        cpd = network.cpd(variable)
        if cpd.child_cardinality == 1:
            # Degenerate variable: the only state is 0 (already
            # zero-filled); drawing a uniform for it would be pure
            # waste — R-style low-entropy networks are full of these.
            continue
        row = index[variable]
        if cpd.parents:
            parent_rows = [index[p] for p in cpd.parents]
            parent_cards = [network.cardinality(p) for p in cpd.parents]
            flat_config = _flat_parent_configs(
                columns, parent_rows, parent_cards
            )
        else:
            flat_config = None
        columns[row] = _draw_states(cpd, flat_config, rng.random(n_samples))
    return columns


def forward_sample(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_samples`` code vectors by ancestral sampling.

    Returns an (n_samples, num_vars) integer matrix with columns in
    ``network.variables`` order.  One uniform vector and one
    ``searchsorted`` per non-degenerate variable — no per-configuration
    Python loops, no uniforms burned on cardinality-1 variables.

    The result is a transposed view of the internal ``(num_vars, n)``
    buffer; reading it column-by-column (as the encoder does) is
    contiguous.
    """
    return _forward_sample_columns(network, n_samples, rng).T


def sample_packed(
    network: BayesianNetwork,
    plan,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Fused sample→decode: draw straight into packed uint64 rows.

    ``plan`` is an :class:`repro.core.encoding.FusedPlan` — the
    per-segment ``(word, shift)`` layout plus pre-shifted value tables
    that :meth:`AddressEncoder.fused_plan
    <repro.core.encoding.AddressEncoder.fused_plan>` derives from its
    packed-word assembly plan.  Segments must correspond one-to-one, in
    order, with ``network.variables`` (true by construction for any
    fitted :class:`~repro.core.model.AddressModel`).

    Returns the ``(n_samples, word_count)`` :func:`repro.ipv6.sets.pack_rows`
    image directly: the ``(n, num_vars)`` codes matrix, the ``(n,
    width)`` nybble matrix, and the whole
    :meth:`~repro.core.encoding.AddressEncoder.decode_to_set` pass are
    skipped.  Bit-identity with the two-step reference is a hard
    contract, maintained by consuming the RNG stream in exactly its
    order: first the ancestral draws (shared helper
    :func:`_forward_sample_columns`), then one ranged-offset draw per
    ranged segment in segment order, replicating the reference's
    all-/some-/no-ranged branch structure so the draw *shapes* match
    too.  Constant segments (cardinality 1, no range) are pre-folded
    into the plan's ``constant_words`` and cost nothing per row —
    exactly mirroring the reference's broadcast branch, which consumes
    no randomness either.
    """
    columns = _forward_sample_columns(network, n_samples, rng)
    packed = np.empty((n_samples, plan.word_count), dtype=np.uint64)
    packed[:] = plan.constant_words
    for seg in plan.segments:
        states = columns[seg.column]
        # Fancy-indexed gather → a fresh array, safe to bump in place.
        shifted = seg.shifted_lows[states]
        if seg.has_ranges:
            # Same branch structure — and therefore the same RNG
            # consumption — as decode_to_set: one full-width draw when
            # every row's code is a range, a subset draw when only some
            # are, none when none are.  ``(low + offset) << shift ==
            # (low << shift) + (offset << shift)`` exactly in uint64,
            # and every segment value stays inside its word field, so
            # adding pre-shifted parts equals the reference's
            # shift-after-add bit for bit.
            spans = seg.spans[states]
            ranged = spans > 0
            if ranged.all():
                shifted += (
                    rng.integers(0, spans, dtype=np.uint64, endpoint=True)
                    << seg.shift
                )
            elif ranged.any():
                rows = np.flatnonzero(ranged)
                shifted[rows] += (
                    rng.integers(
                        0, spans[rows], dtype=np.uint64, endpoint=True
                    )
                    << seg.shift
                )
        packed[:, seg.word] |= shifted
    return packed


def likelihood_weighted_sample(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
    evidence: Mapping[str, int],
    oversample: int = 4,
) -> np.ndarray:
    """Draw approximate posterior samples consistent with ``evidence``.

    Standard likelihood weighting: evidence variables are clamped, other
    variables are forward-sampled, and each trajectory is weighted by the
    probability of the clamped values given its sampled parents.  The
    returned ``n_samples`` rows are drawn from the weighted pool
    (sampling-importance-resampling); ``oversample`` controls the pool
    size multiplier.
    """
    if not evidence:
        return forward_sample(network, n_samples, rng)
    for variable in evidence:
        if variable not in network.variables:
            raise KeyError(f"unknown evidence variable: {variable!r}")
    pool_size = max(n_samples * oversample, 1)
    num_vars = len(network.variables)
    columns = np.zeros((num_vars, pool_size), dtype=np.int64)
    log_weights = np.zeros(pool_size, dtype=np.float64)
    index = {v: i for i, v in enumerate(network.variables)}

    for variable in network.variables:
        cpd = network.cpd(variable)
        row = index[variable]
        parent_rows = [index[p] for p in cpd.parents]
        parent_cards = [network.cardinality(p) for p in cpd.parents]
        if variable in evidence:
            # Evidence weighting needs the flat configuration even for
            # root variables (configuration 0 everywhere).
            flat_config = _flat_parent_configs(
                columns, parent_rows, parent_cards
            )
            state = evidence[variable]
            columns[row] = state
            flat_table = cpd.table.reshape(cpd.child_cardinality, -1)
            probabilities = flat_table[state, flat_config]
            with np.errstate(divide="ignore"):
                log_weights += np.log(probabilities)
            continue
        if cpd.child_cardinality == 1:
            continue
        flat_config = (
            _flat_parent_configs(columns, parent_rows, parent_cards)
            if cpd.parents
            else None
        )
        columns[row] = _draw_states(cpd, flat_config, rng.random(pool_size))

    peak = log_weights.max()
    if not np.isfinite(peak):
        raise ValueError("evidence has zero probability under the model")
    weights = np.exp(log_weights - peak)
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("evidence has zero probability under the model")
    chosen = rng.choice(pool_size, size=n_samples, replace=True, p=weights / total)
    return np.ascontiguousarray(columns[:, chosen].T)


def sample_assignments(
    network: BayesianNetwork,
    n_samples: int,
    rng: np.random.Generator,
    evidence: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, int]]:
    """Samples as variable→state dictionaries (convenience wrapper)."""
    if evidence:
        matrix = likelihood_weighted_sample(network, n_samples, rng, evidence)
    else:
        matrix = forward_sample(network, n_samples, rng)
    return [
        {v: int(matrix[row, col]) for col, v in enumerate(network.variables)}
        for row in range(matrix.shape[0])
    ]
