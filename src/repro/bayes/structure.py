"""Structure learning under the paper's left-to-right ordering constraint.

Section 4.4: "Since learning BNs from data is generally NP-hard, we
constrain the network so that given segment k can only depend on previous
segments <k".  Under a fixed variable order, the globally optimal
structure decomposes: each vertex independently picks the predecessor
subset maximizing its family score.  This is exactly the setting in which
BNFinder's algorithm (Dojer 2006) is exact and polynomial, and we
implement the same exhaustive-with-bound search:

- enumerate parent subsets of each vertex's predecessors up to
  ``max_parents`` elements, smallest subsets first;
- score each with BDeu (default) or BIC/MDL;
- keep the best subset.

For wide models a greedy fallback activates when the predecessor count
makes exhaustive enumeration too large.

Scoring runs on cached sufficient statistics
(:class:`repro.bayes.scores.FamilyStats`) and is *tier-batched*: the
exhaustive sweep hands each whole subset tier (all predecessor subsets
of one size) to :meth:`~repro.bayes.scores.FamilyStats.score_tier`,
which counts every family of the tier in one fused ``bincount`` and
evaluates all their BDeu cells with a single ``gammaln`` pass per
chunk — with per-family summation order preserved, so each score is
bit-identical to the per-family path and near-tie winners cannot move.
Greedy forward selection batches each iteration's candidate additions
the same way.  Per-``(child, parent-set)`` scores are memoized so
neither search strategy ever re-counts a family, and the count tensors
of the winning families are handed straight to CPD estimation, which
makes the fitted parameters bit-identical to the uncached path by
construction.  ``learn_structure(..., cache=False)`` retains the
original score-from-scratch behaviour (the reference the golden-fit
suite pins tier-batched output against, and the
``EntropyIP._fit_reference`` benchmark path).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.cpd import estimate_cpd
from repro.bayes.network import BayesianNetwork
from repro.bayes.scores import FamilyStats, family_score


@dataclass(frozen=True)
class StructureConfig:
    """Knobs of the structure learner.

    max_parents
        Upper bound on any vertex's in-degree (BNFinder-style bound).
    score
        "bdeu" (default) or "bic"/"mdl".
    equivalent_sample_size
        BDeu prior strength; ignored for BIC.
    exhaustive_limit
        Maximum number of candidate subsets to enumerate exhaustively per
        vertex before switching to greedy forward selection.
    alpha
        Dirichlet smoothing pseudo-count used when fitting the CPDs of
        the final network.
    """

    max_parents: int = 2
    score: str = "bdeu"
    equivalent_sample_size: float = 1.0
    exhaustive_limit: int = 20000
    alpha: float = 0.05


def learn_structure(
    data: np.ndarray,
    names: Sequence[str],
    cardinalities: Sequence[int],
    config: StructureConfig = StructureConfig(),
    cache: bool = True,
    stats: Optional[FamilyStats] = None,
) -> BayesianNetwork:
    """Learn an ordered BN from an (n, num_vars) categorical code matrix.

    ``names`` fixes the ordering constraint: column k may only receive
    parents among columns < k.

    ``cache`` (default) scores through a shared
    :class:`~repro.bayes.scores.FamilyStats` instance and estimates
    each CPD from the count tensor its family was scored with;
    ``cache=False`` retains the original re-count-per-score path (the
    benchmark reference — results are bit-identical either way).
    ``stats`` supplies a pre-built (e.g. incrementally extended)
    :class:`~repro.bayes.scores.FamilyStats` over the same rows — the
    streaming-ingest refit path, where family counts have already been
    folded batch by batch; it must agree with ``data`` on the sample
    count.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D code matrix")
    n, num_vars = data.shape
    if num_vars != len(names) or num_vars != len(cardinalities):
        raise ValueError("names/cardinalities must match data columns")
    if n == 0:
        raise ValueError("cannot learn from an empty dataset")

    if stats is not None and stats.n_samples != n:
        raise ValueError(
            f"stats cover {stats.n_samples} rows, data has {n}"
        )
    if stats is None and cache:
        stats = FamilyStats(data, cardinalities)
    parent_sets = [
        select_parents(data, child, cardinalities, config, stats=stats)
        for child in range(num_vars)
    ]
    cpds = [
        estimate_cpd(
            data,
            child,
            parent_sets[child],
            cardinalities,
            names,
            alpha=config.alpha,
            counts=(
                stats.counts(child, parent_sets[child])
                if stats is not None
                else None
            ),
        )
        for child in range(num_vars)
    ]
    return BayesianNetwork(names, cpds)


def select_parents(
    data: np.ndarray,
    child: int,
    cardinalities: Sequence[int],
    config: StructureConfig,
    stats: Optional[FamilyStats] = None,
) -> Tuple[int, ...]:
    """Best-scoring parent subset of vertex ``child``'s predecessors.

    With ``stats`` (the cached path), degenerate cardinality-1
    variables are pruned from the search: a constant child scores 0 for
    every parent set (the two BDeu sums cancel exactly), and adding a
    constant parent to any subset reproduces the smaller subset's count
    table — and therefore its exact float score — so under the strict
    ``>`` comparisons (smallest subsets first) neither can ever be
    selected.  The pruned search returns bit-identical parent sets to
    the exhaustive reference; the exhaustive-vs-greedy decision still
    uses the unpruned predecessor count so both paths walk the same
    search strategy.
    """
    predecessors = list(range(child))
    max_parents = min(config.max_parents, len(predecessors))
    if stats is not None:
        if cardinalities[child] <= 1:
            return ()
        predecessors = [i for i in predecessors if cardinalities[i] > 1]

    if stats is not None:

        def score_of(parents: Tuple[int, ...]) -> float:
            return stats.score(
                child,
                parents,
                method=config.score,
                equivalent_sample_size=config.equivalent_sample_size,
            )

        def score_tier_of(tier: List[Tuple[int, ...]]) -> List[float]:
            return stats.score_tier(
                child,
                tier,
                method=config.score,
                equivalent_sample_size=config.equivalent_sample_size,
            )

    else:

        def score_of(parents: Tuple[int, ...]) -> float:
            return family_score(
                data,
                child,
                parents,
                cardinalities,
                method=config.score,
                equivalent_sample_size=config.equivalent_sample_size,
            )

        score_tier_of = None

    # Exhaustive-vs-greedy is decided on the unpruned predecessor count
    # so the cached and reference paths always run the same strategy.
    if _subset_count(child, min(config.max_parents, child)) <= config.exhaustive_limit:
        best_parents: Tuple[int, ...] = ()
        best_score = score_of(())
        for size in range(1, max_parents + 1):
            tier = list(combinations(predecessors, size))
            if not tier:
                break
            # One fused counting/gammaln pass scores the whole tier on
            # the cached path; the comparison below walks the same
            # subsets in the same order with the same strict >, so the
            # selected parents are bit-identical to per-family scoring.
            if score_tier_of is not None:
                tier_scores = score_tier_of(tier)
            else:
                tier_scores = [score_of(subset) for subset in tier]
            for subset, candidate_score in zip(tier, tier_scores):
                if candidate_score > best_score:
                    best_score = candidate_score
                    best_parents = subset
        return best_parents
    return _greedy_parents(
        predecessors, max_parents, score_of, score_tier_of=score_tier_of
    )


def _greedy_parents(
    predecessors: List[int],
    max_parents: int,
    score_of,
    score_tier_of=None,
) -> Tuple[int, ...]:
    """Greedy forward selection: add the best single parent until no gain.

    Each iteration's candidate one-parent extensions form a tier;
    ``score_tier_of`` (the cached path) scores them in one fused pass,
    with the selection loop unchanged so the chosen additions are
    bit-identical to per-candidate scoring.
    """
    chosen: List[int] = []
    current_score = score_of(())
    while len(chosen) < max_parents:
        candidates = [c for c in predecessors if c not in chosen]
        if not candidates:
            break
        tier = [tuple(sorted(chosen + [c])) for c in candidates]
        if score_tier_of is not None:
            tier_scores = score_tier_of(tier)
        else:
            tier_scores = [score_of(candidate_set) for candidate_set in tier]
        best_addition = None
        best_score = current_score
        for candidate, candidate_score in zip(candidates, tier_scores):
            if candidate_score > best_score:
                best_score = candidate_score
                best_addition = candidate
        if best_addition is None:
            break
        chosen.append(best_addition)
        current_score = best_score
    return tuple(sorted(chosen))


def _subset_count(n: int, k: int) -> int:
    """Number of subsets of an n-set with at most k elements."""
    total = 0
    term = 1
    for size in range(0, k + 1):
        if size > 0:
            term = term * (n - size + 1) // size
        total += term
    return total


def learned_parent_map(network: BayesianNetwork) -> Dict[str, Tuple[str, ...]]:
    """Convenience: variable → parents mapping of a learned network."""
    return {v: network.parents(v) for v in network.variables}
