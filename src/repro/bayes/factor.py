"""Discrete factors: the workhorse of exact BN inference.

A factor is a non-negative table over the joint assignments of a tuple of
named categorical variables.  Conditional probability tables, evidence
reductions, and intermediate products in variable elimination are all
factors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np


class Factor:
    """A table over joint assignments of named discrete variables.

    ``variables`` orders the axes of ``table``; ``table.shape[i]`` is the
    cardinality of ``variables[i]``.

    >>> f = Factor(("a",), np.array([0.25, 0.75]))
    >>> f.cardinality("a")
    2
    """

    __slots__ = ("variables", "table")

    def __init__(self, variables: Sequence[str], table: np.ndarray):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.table = np.asarray(table, dtype=np.float64)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(f"duplicate variables: {self.variables}")
        if self.table.ndim != len(self.variables):
            raise ValueError(
                f"table rank {self.table.ndim} != {len(self.variables)} variables"
            )
        if np.any(self.table < 0):
            raise ValueError("factor tables must be non-negative")

    def cardinality(self, variable: str) -> int:
        """Number of states of ``variable``."""
        return self.table.shape[self.variables.index(variable)]

    def cardinalities(self) -> Dict[str, int]:
        """All variable cardinalities."""
        return {v: s for v, s in zip(self.variables, self.table.shape)}

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of the two scopes."""
        union = list(self.variables)
        union.extend(v for v in other.variables if v not in self.variables)
        return Factor(
            union,
            self._expand_to(union) * other._expand_to(union),
        )

    __mul__ = multiply

    def marginalize(self, variable: str) -> "Factor":
        """Sum out one variable."""
        axis = self.variables.index(variable)
        remaining = self.variables[:axis] + self.variables[axis + 1 :]
        return Factor(remaining, self.table.sum(axis=axis))

    def marginalize_all_but(self, keep: Iterable[str]) -> "Factor":
        """Sum out everything not in ``keep``."""
        keep_set = set(keep)
        result = self
        for variable in self.variables:
            if variable not in keep_set:
                result = result.marginalize(variable)
        return result

    def reduce(self, variable: str, state: int) -> "Factor":
        """Condition on ``variable == state``, dropping the variable."""
        axis = self.variables.index(variable)
        if not 0 <= state < self.table.shape[axis]:
            raise IndexError(
                f"state {state} out of range for {variable} "
                f"(cardinality {self.table.shape[axis]})"
            )
        remaining = self.variables[:axis] + self.variables[axis + 1 :]
        return Factor(remaining, np.take(self.table, state, axis=axis))

    def reduce_evidence(self, evidence: Mapping[str, int]) -> "Factor":
        """Condition on every in-scope variable of ``evidence``."""
        result = self
        for variable, state in evidence.items():
            if variable in result.variables:
                result = result.reduce(variable, state)
        return result

    def normalize(self) -> "Factor":
        """Scale so the table sums to 1 (error if the total mass is 0)."""
        total = self.table.sum()
        if total <= 0:
            raise ZeroDivisionError("cannot normalize a zero factor")
        return Factor(self.variables, self.table / total)

    def reorder(self, variables: Sequence[str]) -> "Factor":
        """Permute the axes into the requested variable order."""
        variables = tuple(variables)
        if set(variables) != set(self.variables):
            raise ValueError(f"{variables} is not a permutation of {self.variables}")
        permutation = [self.variables.index(v) for v in variables]
        return Factor(variables, np.transpose(self.table, permutation))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def value(self, assignment: Mapping[str, int]) -> float:
        """Table entry for a full assignment of the factor's scope."""
        index = tuple(assignment[v] for v in self.variables)
        return float(self.table[index])

    def argmax(self) -> Dict[str, int]:
        """The most probable joint assignment."""
        flat_index = int(np.argmax(self.table))
        states = np.unravel_index(flat_index, self.table.shape)
        return {v: int(s) for v, s in zip(self.variables, states)}

    def _expand_to(self, union: Sequence[str]) -> np.ndarray:
        """View of the table broadcastable over the ``union`` scope."""
        shape = []
        source_axes = []
        for variable in union:
            if variable in self.variables:
                axis = self.variables.index(variable)
                shape.append(self.table.shape[axis])
                source_axes.append(axis)
            else:
                shape.append(1)
        # Move existing axes into union order, then insert singleton axes.
        transposed = np.transpose(self.table, source_axes)
        return transposed.reshape(shape)

    def __repr__(self) -> str:
        return f"Factor(variables={self.variables}, shape={self.table.shape})"


def unit_factor() -> Factor:
    """The multiplicative identity (scalar 1.0 over no variables)."""
    return Factor((), np.asarray(1.0))
