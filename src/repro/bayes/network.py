"""The Bayesian network model: an ordered DAG of CPDs.

The paper constrains the network so that segment k can only depend on
earlier segments (Section 4.4); :class:`BayesianNetwork` enforces that
parents precede children in the declared variable order, which also makes
the order itself a valid topological order for sampling.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.bayes.cpd import CPD
from repro.bayes.factor import Factor


class BayesianNetwork:
    """A discrete Bayesian network with a fixed left-to-right order.

    ``variables`` fixes both the topological order and the data-column
    order; ``cpds`` must contain exactly one CPD per variable whose
    parents all appear earlier in ``variables``.
    """

    def __init__(self, variables: Sequence[str], cpds: Sequence[CPD]):
        self.variables: Tuple[str, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("duplicate variable names")
        by_child = {cpd.child: cpd for cpd in cpds}
        if set(by_child) != set(self.variables):
            missing = set(self.variables) - set(by_child)
            extra = set(by_child) - set(self.variables)
            raise ValueError(f"CPD mismatch: missing={missing}, extra={extra}")
        order = {v: i for i, v in enumerate(self.variables)}
        for cpd in cpds:
            for parent in cpd.parents:
                if parent not in order:
                    raise ValueError(f"unknown parent {parent!r} of {cpd.child!r}")
                if order[parent] >= order[cpd.child]:
                    raise ValueError(
                        f"parent {parent!r} does not precede child {cpd.child!r}"
                    )
        self._cpds: Dict[str, CPD] = {v: by_child[v] for v in self.variables}

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------

    def cpd(self, variable: str) -> CPD:
        """The CPD attached to ``variable``."""
        return self._cpds[variable]

    def parents(self, variable: str) -> Tuple[str, ...]:
        """Parents of ``variable``."""
        return self._cpds[variable].parents

    def children(self, variable: str) -> List[str]:
        """Variables that have ``variable`` as a parent."""
        return [v for v in self.variables if variable in self._cpds[v].parents]

    def cardinality(self, variable: str) -> int:
        """Number of states of ``variable``."""
        return self._cpds[variable].child_cardinality

    def cardinalities(self) -> Dict[str, int]:
        """All variable cardinalities."""
        return {v: self.cardinality(v) for v in self.variables}

    def edges(self) -> List[Tuple[str, str]]:
        """All (parent, child) edges."""
        return [
            (parent, child)
            for child in self.variables
            for parent in self._cpds[child].parents
        ]

    def to_networkx(self) -> nx.DiGraph:
        """The structure as a networkx DiGraph (for viz / graph queries)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.variables)
        graph.add_edges_from(self.edges())
        return graph

    def markov_blanket(self, variable: str) -> List[str]:
        """Parents, children, and co-parents of ``variable``."""
        blanket = set(self.parents(variable))
        for child in self.children(variable):
            blanket.add(child)
            blanket.update(self.parents(child))
        blanket.discard(variable)
        return [v for v in self.variables if v in blanket]

    # ------------------------------------------------------------------
    # probability computations
    # ------------------------------------------------------------------

    def factors(self) -> List[Factor]:
        """All CPDs as factors (the VE starting point)."""
        return [self._cpds[v].to_factor() for v in self.variables]

    def joint_probability(self, assignment: Mapping[str, int]) -> float:
        """P(full assignment) via the chain-rule factorization."""
        probability = 1.0
        for variable in self.variables:
            cpd = self._cpds[variable]
            probability *= cpd.probability(assignment[variable], assignment)
        return probability

    def log_likelihood(self, data: np.ndarray) -> float:
        """Total log-probability of an (n, num_vars) code matrix."""
        if data.shape[1] != len(self.variables):
            raise ValueError("data column count != number of variables")
        total = 0.0
        index = {v: i for i, v in enumerate(self.variables)}
        for variable in self.variables:
            cpd = self._cpds[variable]
            child_column = data[:, index[variable]]
            parent_columns = tuple(data[:, index[p]] for p in cpd.parents)
            probabilities = cpd.table[(child_column,) + parent_columns]
            if np.any(probabilities <= 0):
                return float("-inf")
            total += float(np.log(probabilities).sum())
        return total

    def __repr__(self) -> str:
        return (
            f"BayesianNetwork(variables={len(self.variables)}, "
            f"edges={len(self.edges())})"
        )
