"""Conditional probability tables (CPDs) with Dirichlet smoothing.

Each BN vertex holds P(child | parents) as a table; we estimate tables
from code-vector data with a symmetric Dirichlet prior so that candidate
generation (Section 5.5) can venture slightly beyond the exact training
combinations without assigning zero mass to unseen parent configurations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.bayes.factor import Factor


class CPD:
    """P(child | parents) as a normalized table.

    ``table`` has axes ordered ``(child, *parents)``; every slice along
    the child axis for a fixed parent assignment sums to 1.
    """

    __slots__ = ("child", "parents", "table", "_sampling_cdf", "_sampling_cdf2d")

    def __init__(self, child: str, parents: Sequence[str], table: np.ndarray):
        self.child = child
        self.parents: Tuple[str, ...] = tuple(parents)
        self.table = np.asarray(table, dtype=np.float64)
        self._sampling_cdf = None
        self._sampling_cdf2d = None
        if self.child in self.parents:
            raise ValueError(f"{child!r} cannot be its own parent")
        if self.table.ndim != 1 + len(self.parents):
            raise ValueError(
                f"table rank {self.table.ndim} != 1 + {len(self.parents)} parents"
            )
        if np.any(self.table < 0):
            raise ValueError("CPD table must be non-negative")
        sums = self.table.sum(axis=0)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError("CPD columns must each sum to 1")

    @property
    def child_cardinality(self) -> int:
        return self.table.shape[0]

    def parent_cardinalities(self) -> Dict[str, int]:
        return {p: s for p, s in zip(self.parents, self.table.shape[1:])}

    def distribution(self, parent_states: Mapping[str, int]) -> np.ndarray:
        """P(child | the given parent assignment), as a vector."""
        index = tuple(parent_states[p] for p in self.parents)
        return self.table[(slice(None),) + index]

    def probability(self, child_state: int, parent_states: Mapping[str, int]) -> float:
        """P(child = child_state | parent assignment)."""
        return float(self.distribution(parent_states)[child_state])

    def to_factor(self) -> Factor:
        """The CPD viewed as a factor over (child, *parents)."""
        return Factor((self.child,) + self.parents, self.table)

    def sampling_cdf(self) -> np.ndarray:
        """Flattened per-configuration cumulative table for inverse-CDF draws.

        Entry ``[config * child_cardinality + state]`` holds
        ``config + P(child <= state | config)``, so the whole array is
        sorted ascending and one ``searchsorted(cdf, config + u)`` maps a
        uniform ``u`` to a child state for every row at once (the
        vectorized sampling hot path).  Built lazily, cached for the
        lifetime of the CPD; the table is assumed immutable afterwards.
        """
        if self._sampling_cdf is None:
            flat = self.table.reshape(self.child_cardinality, -1)
            cdf = np.cumsum(flat, axis=0)
            # Pin the top of each configuration's CDF at exactly 1 so a
            # draw of u -> 1 can never index past the last state.
            cdf[-1, :] = 1.0
            offsets = np.arange(cdf.shape[1], dtype=np.float64)
            self._sampling_cdf = np.ascontiguousarray((cdf + offsets).T).ravel()
        return self._sampling_cdf

    def sampling_cdf_matrix(self) -> np.ndarray:
        """Per-configuration CDF rows for grouped inverse-CDF draws.

        Row ``c`` holds ``P(child <= state | config c)`` with the last
        entry pinned at exactly 1 — the same numbers
        :meth:`sampling_cdf` lays end to end, minus the ``config``
        offsets.  Grouped sampling (see
        :func:`repro.bayes.sampling._draw_states`) gathers one row per
        realized parent configuration and runs ``searchsorted`` inside
        that tiny slice, instead of binary-searching the full
        concatenated table for every sample.  Built lazily, cached for
        the lifetime of the CPD.
        """
        if self._sampling_cdf2d is None:
            flat = self.table.reshape(self.child_cardinality, -1)
            cdf = np.cumsum(flat, axis=0)
            cdf[-1, :] = 1.0
            self._sampling_cdf2d = np.ascontiguousarray(cdf.T)
        return self._sampling_cdf2d

    def __repr__(self) -> str:
        return (
            f"CPD(child={self.child!r}, parents={self.parents}, "
            f"shape={self.table.shape})"
        )


def count_family(
    data: np.ndarray,
    child_index: int,
    parent_indices: Sequence[int],
    cardinalities: Sequence[int],
) -> np.ndarray:
    """Joint counts N(child, parents) from categorical data.

    ``data`` is an (n, num_vars) integer matrix; the result has axes
    ``(child, *parents)`` matching :class:`CPD` layout.
    """
    child_card = cardinalities[child_index]
    parent_cards = [cardinalities[i] for i in parent_indices]
    shape = (child_card, *parent_cards)
    # Flatten the family columns into a single index for fast bincount.
    flat = data[:, child_index].astype(np.int64)
    for parent_index, parent_card in zip(parent_indices, parent_cards):
        flat = flat * parent_card + data[:, parent_index].astype(np.int64)
    counts = np.bincount(flat, minlength=int(np.prod(shape)))
    return counts.reshape(shape).astype(np.float64)


def estimate_cpd(
    data: np.ndarray,
    child_index: int,
    parent_indices: Sequence[int],
    cardinalities: Sequence[int],
    names: Sequence[str],
    alpha: float = 0.5,
    counts: np.ndarray = None,
) -> CPD:
    """Estimate P(child | parents) with a symmetric Dirichlet prior.

    ``alpha`` is the per-cell pseudo-count; 0 gives the raw MLE (parent
    configurations never observed then fall back to uniform).

    ``counts`` optionally supplies the pre-computed family count tensor
    (axes ``(child, *parents)``, as :func:`count_family` lays it out) —
    the structure learner passes the cached sufficient statistics the
    family was scored with, so parameter estimation never re-counts.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if counts is None:
        counts = count_family(data, child_index, parent_indices, cardinalities)
    smoothed = counts + alpha
    column_totals = smoothed.sum(axis=0)
    # Guard the alpha == 0 case: unseen parent configs become uniform.
    zero_mask = column_totals == 0
    if np.any(zero_mask):
        smoothed = smoothed + np.where(zero_mask, 1.0, 0.0)
        column_totals = smoothed.sum(axis=0)
    table = smoothed / column_totals
    return CPD(
        names[child_index],
        [names[i] for i in parent_indices],
        table,
    )
