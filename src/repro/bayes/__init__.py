"""Bayesian-network substrate (Section 4.4 of the paper).

The paper models the code-vector representation of IPv6 addresses with a
Bayesian network learned by BNFinder [Wilczynski & Dojer 2009] under the
constraint that segment k may only depend on earlier segments.  This
package is a from-scratch implementation of the same family of methods:

- :mod:`repro.bayes.factor` — discrete factors with multiply /
  marginalize / reduce;
- :mod:`repro.bayes.cpd` — conditional probability tables with smoothing;
- :mod:`repro.bayes.network` — the DAG model;
- :mod:`repro.bayes.scores` — BDeu and MDL/BIC family scores;
- :mod:`repro.bayes.structure` — exact ordered parent-set selection
  (Dojer 2006-style, the algorithm behind BNFinder);
- :mod:`repro.bayes.inference` — variable elimination, which realizes the
  "evidential reasoning" (backwards influence) of Fig. 1(b,c);
- :mod:`repro.bayes.sampling` — forward sampling and likelihood-weighted
  conditional sampling for candidate generation;
- :mod:`repro.bayes.markov` — the first-order Markov-model baseline the
  paper compares against conceptually in §4.5.
"""

from repro.bayes.cpd import CPD, estimate_cpd
from repro.bayes.export import browser_to_json, to_dot
from repro.bayes.factor import Factor
from repro.bayes.inference import VariableElimination
from repro.bayes.markov import MarkovChainModel
from repro.bayes.network import BayesianNetwork
from repro.bayes.sampling import forward_sample, likelihood_weighted_sample
from repro.bayes.scores import bdeu_score, bic_score, family_log_likelihood
from repro.bayes.structure import StructureConfig, learn_structure

__all__ = [
    "BayesianNetwork",
    "CPD",
    "Factor",
    "MarkovChainModel",
    "StructureConfig",
    "VariableElimination",
    "bdeu_score",
    "browser_to_json",
    "to_dot",
    "bic_score",
    "estimate_cpd",
    "family_log_likelihood",
    "forward_sample",
    "learn_structure",
    "likelihood_weighted_sample",
]
