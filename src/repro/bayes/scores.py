"""Family scores for structure learning: log-likelihood, BIC/MDL, BDeu.

BNFinder (the software the paper uses, [35]) selects, independently for
each vertex, the parent set that maximizes a decomposable score — either
the MDL score or a Bayesian (BDe) score.  We implement both; the
structure learner defaults to BDeu, with BIC/MDL available via
configuration.

:class:`FamilyStats` is the cached-sufficient-statistics layer the
structure search runs on: every candidate parent configuration is
encoded as one fused integer code (built incrementally from the cached
code of its prefix), family count tensors come from a single
``bincount`` over ``child * q + parent_code``, BDeu/BIC evaluate with
vectorized ``gammaln`` over those count arrays, and scores (plus, on
the per-family path, counts) are memoized per ``(child, parent-set)``
so greedy/exhaustive search never re-scores a family — and CPD
estimation afterwards consumes :meth:`FamilyStats.counts` tensors that
are bit-identical to the ones the winning families were scored from.

:meth:`FamilyStats.score_tier` is the tier-batched layer on top: the
structure search hands over a whole subset tier (every candidate
parent set of one size for one child) at once, the tier's count
tensors come from *one* fused bincount over offset family codes, and
all their BDeu cells are evaluated by a *single* ``gammaln`` call per
chunk — while per-family dense summation order is preserved, so every
batched score is bit-identical to the per-family :meth:`FamilyStats.score`
(near-tie winners cannot move).  The direct, uncached
:func:`family_score` path is retained as the reference implementation
(``learn_structure(..., cache=False)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import gammaln

from repro.bayes.cpd import count_family


def family_log_likelihood(counts: np.ndarray) -> float:
    """Maximized log-likelihood of a family count table.

    ``counts`` has axes (child, *parents); the result is
    sum_{j,k} N_jk log(N_jk / N_j) where j ranges over parent
    configurations.
    """
    counts = np.asarray(counts, dtype=np.float64)
    child_counts = counts.reshape(counts.shape[0], -1)
    column_totals = child_counts.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.where(
            child_counts > 0,
            np.log(child_counts) - np.log(column_totals[np.newaxis, :]),
            0.0,
        )
    return float((child_counts * log_ratio).sum())


def bic_score(counts: np.ndarray, n_samples: int) -> float:
    """BIC / MDL family score: LL - (log n / 2) * #free-parameters.

    Larger is better.  The parameter count is (r-1) * q for child
    cardinality r and q parent configurations.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    r = counts.shape[0]
    q = int(np.prod(counts.shape[1:])) if counts.ndim > 1 else 1
    penalty = 0.5 * np.log(n_samples) * (r - 1) * q
    return family_log_likelihood(counts) - penalty


def bdeu_score(counts: np.ndarray, equivalent_sample_size: float = 1.0) -> float:
    """BDeu family score (log marginal likelihood, uniform structure prior).

    With child cardinality r and q parent configurations, the Dirichlet
    hyper-parameter per cell is ess / (r*q) and per parent configuration
    ess / q; the score is the usual ratio of gamma functions (Heckerman
    et al. 1995).  Larger is better.
    """
    if equivalent_sample_size <= 0:
        raise ValueError("equivalent_sample_size must be positive")
    counts = np.asarray(counts, dtype=np.float64)
    r = counts.shape[0]
    child_counts = counts.reshape(r, -1)
    q = child_counts.shape[1]
    alpha_cell = equivalent_sample_size / (r * q)
    alpha_config = equivalent_sample_size / q
    column_totals = child_counts.sum(axis=0)
    score = float(
        (gammaln(alpha_config) - gammaln(alpha_config + column_totals)).sum()
    )
    score += float(
        (gammaln(alpha_cell + child_counts) - gammaln(alpha_cell)).sum()
    )
    return score


def _bdeu_score_sparse(
    counts: np.ndarray, equivalent_sample_size: float = 1.0
) -> float:
    """:func:`bdeu_score`, evaluating ``gammaln`` on nonzero cells only.

    Zero-count cells contribute ``gammaln(α) - gammaln(α) = 0.0``
    exactly, so the expensive ``gammaln`` runs only where counts are
    positive and the results scatter back into dense zero arrays —
    the final ``.sum()`` then traverses arrays elementwise identical
    to the dense implementation, making the returned float
    bit-identical while typically touching an order of magnitude fewer
    cells (family tables are sparse: at most one occupied cell per
    training row).
    """
    if equivalent_sample_size <= 0:
        raise ValueError("equivalent_sample_size must be positive")
    r = counts.shape[0]
    child_counts = counts.reshape(r, -1)
    q = child_counts.shape[1]
    alpha_cell = equivalent_sample_size / (r * q)
    alpha_config = equivalent_sample_size / q
    column_totals = child_counts.sum(axis=0)
    config_terms = np.zeros(q, dtype=np.float64)
    occupied = column_totals > 0
    config_terms[occupied] = _gammaln_scalar(alpha_config) - gammaln(
        alpha_config + column_totals[occupied]
    )
    score = float(config_terms.sum())
    cell_terms = np.zeros((r, q), dtype=np.float64)
    positive = child_counts > 0
    cell_terms[positive] = gammaln(alpha_cell + child_counts[positive]) - _gammaln_scalar(
        alpha_cell
    )
    score += float(cell_terms.sum())
    return score


#: Scalar ``gammaln`` memo — structure search evaluates the same prior
#: strengths (a handful of distinct α values per model) thousands of
#: times.
_GAMMALN_CACHE: Dict[float, float] = {}


def _gammaln_scalar(alpha: float) -> float:
    cached = _GAMMALN_CACHE.get(alpha)
    if cached is None:
        cached = _GAMMALN_CACHE[alpha] = float(gammaln(alpha))
    return cached


def family_score(
    data: np.ndarray,
    child_index: int,
    parent_indices: Sequence[int],
    cardinalities: Sequence[int],
    method: str = "bdeu",
    equivalent_sample_size: float = 1.0,
) -> float:
    """Score one (child, parent-set) family directly from data.

    Uncached: every call re-counts the family.  The structure learner
    normally goes through :class:`FamilyStats`; this function is the
    retained reference path (and produces bit-identical scores, since
    :class:`FamilyStats` computes the same fused codes and calls the
    same scoring functions).
    """
    counts = count_family(data, child_index, parent_indices, cardinalities)
    if method == "bdeu":
        return bdeu_score(counts, equivalent_sample_size)
    if method in ("bic", "mdl"):
        return bic_score(counts, data.shape[0])
    raise ValueError(f"unknown scoring method: {method!r}")


class FamilyStats:
    """Cached sufficient statistics for family scoring over one dataset.

    Holds the categorical data column-wise and memoizes, per
    ``(child, parent-set)``: the fused parent configuration codes
    (small sets only — one multiply-add extends a cached prefix), the
    family count tensor (one ``bincount``), and the final score.  Count
    tensors are laid out exactly like
    :func:`repro.bayes.cpd.count_family` (axes ``(child, *parents)``),
    so :func:`repro.bayes.cpd.estimate_cpd` can consume them directly
    and the fitted CPDs are bit-identical to the uncached path.
    """

    #: Fused parent codes are cached for subsets up to this size; larger
    #: codes are rebuilt from their cached prefix (one multiply-add per
    #: extra parent), keeping the cache O(num_vars) arrays.
    _CODE_CACHE_SIZE = 1

    def __init__(self, data: np.ndarray, cardinalities: Sequence[int]):
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D code matrix")
        self._n = data.shape[0]
        self._columns = [
            np.ascontiguousarray(data[:, i], dtype=np.int64)
            for i in range(data.shape[1])
        ]
        self._cards = tuple(int(c) for c in cardinalities)
        if len(self._cards) != data.shape[1]:
            raise ValueError("cardinalities must match data columns")
        empty = np.zeros(self._n, dtype=np.int64)
        self._codes: Dict[Tuple[int, ...], Tuple[np.ndarray, int]] = {(): (empty, 1)}
        self._counts: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._scores: Dict[Tuple, float] = {}

    @property
    def n_samples(self) -> int:
        return self._n

    def extend(self, data: np.ndarray) -> None:
        """Fold fresh rows into the cached sufficient statistics.

        The streaming-ingest hook: arriving batches extend the stored
        columns, and every already-memoized family count tensor is
        updated **incrementally** — one ``bincount`` over the fresh rows
        added onto the cached int64 counts, never a re-count of the
        full history.  Integer addition is exact, so the updated
        tensors are bit-identical to counting the concatenated data
        from scratch, and a subsequent structure search over this
        instance returns exactly what a fresh
        :class:`FamilyStats` over the cumulative matrix would.  Scores
        are dropped (they depend on the counts and on ``n``); fused
        parent codes are rebuilt lazily.
        """
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[1] != len(self._cards):
            raise ValueError("data must be a 2-D code matrix with matching columns")
        fresh = data.shape[0]
        if fresh == 0:
            return
        if self._counts:
            chunk = FamilyStats(data, self._cards)
            for (child, parents), counts in self._counts.items():
                counts += chunk.counts2d(child, parents)
        self._columns = [
            np.concatenate(
                [column, np.ascontiguousarray(data[:, i], dtype=np.int64)]
            )
            for i, column in enumerate(self._columns)
        ]
        self._n += fresh
        empty = np.zeros(self._n, dtype=np.int64)
        self._codes = {(): (empty, 1)}
        self._scores = {}

    def parent_codes(self, parents: Tuple[int, ...]) -> Tuple[np.ndarray, int]:
        """Fused configuration codes for a parent tuple, and their count q.

        ``codes[row] = ((p1*c2 + p2)*c3 + p3)...`` — the same nesting
        :func:`count_family` flattens with, so counts reshape directly
        into ``(child, *parent_cards)``.
        """
        cached = self._codes.get(parents)
        if cached is not None:
            return cached
        prefix, q = self.parent_codes(parents[:-1])
        last = parents[-1]
        card = self._cards[last]
        entry = (prefix * card + self._columns[last], q * card)
        if len(parents) <= self._CODE_CACHE_SIZE:
            self._codes[parents] = entry
        return entry

    def counts2d(self, child: int, parents: Tuple[int, ...]) -> np.ndarray:
        """Family counts as an int64 ``(r, q)`` matrix, memoized.

        The 2-D layout is what scoring consumes directly;
        :meth:`counts` reshapes (a view) into the full tensor.
        """
        key = (child, parents)
        cached = self._counts.get(key)
        if cached is not None:
            return cached
        codes, q = self.parent_codes(parents)
        r = self._cards[child]
        flat = self._columns[child] * q + codes
        counts = np.bincount(flat, minlength=r * q).reshape(r, q)
        self._counts[key] = counts
        return counts

    def counts(self, child: int, parents: Tuple[int, ...]) -> np.ndarray:
        """Family count tensor N(child, parents), axes ``(child, *parents)``.

        Bit-compatible with :func:`repro.bayes.cpd.count_family` (same
        fused codes, same ``bincount``), reshaped from the memoized 2-D
        matrix without copying.
        """
        parents = tuple(parents)
        return self.counts2d(child, parents).reshape(
            (self._cards[child],) + tuple(self._cards[p] for p in parents)
        )

    def score(
        self,
        child: int,
        parents: Tuple[int, ...],
        method: str = "bdeu",
        equivalent_sample_size: float = 1.0,
    ) -> float:
        """Memoized family score from the cached count tensor."""
        parents = tuple(parents)
        key = (child, parents, method, equivalent_sample_size)
        cached = self._scores.get(key)
        if cached is not None:
            return cached
        counts = self.counts2d(child, parents)
        if method == "bdeu":
            score = _bdeu_score_sparse(counts, equivalent_sample_size)
        elif method in ("bic", "mdl"):
            score = bic_score(counts, self._n)
        else:
            raise ValueError(f"unknown scoring method: {method!r}")
        self._scores[key] = score
        return score

    #: Upper bound on fused elements (codes or count cells) per tier
    #: chunk.  A 20k-family exhaustive tier at a large n would
    #: otherwise materialize hundreds of megabytes of fused codes in
    #: one go; chunking regroups the kernel launches only — no
    #: per-family float ever depends on which chunk its family landed
    #: in.
    _TIER_ELEMENT_BUDGET = 1 << 21

    #: Below this many uncached families a tier is scored per-family:
    #: the fused passes have a fixed ~25-kernel setup cost that a
    #: handful of families cannot amortize.
    _TIER_MIN_FAMILIES = 8

    def score_tier(
        self,
        child: int,
        parent_sets: Sequence[Tuple[int, ...]],
        method: str = "bdeu",
        equivalent_sample_size: float = 1.0,
    ) -> List[float]:
        """Score a whole subset tier of families in fused batches.

        ``parent_sets`` is the tier — every candidate parent set the
        search wants scored for ``child`` (typically all predecessor
        subsets of one size).  Families with memoized scores are served
        from the cache; the rest are scored in chunks, each chunk
        paying one ``bincount`` over the families' offset fused codes
        and one ``gammaln`` evaluation over all their occupied cells.
        The per-family reduction reproduces
        :func:`_bdeu_score_sparse`'s dense arrays and summation order
        exactly, so every returned float is bit-identical to
        :meth:`score` on the same family — tier batching can never move
        a near-tie.  Only scores are memoized: the fused chunk counts
        are not written back to the :meth:`counts` memo (holding views
        into every chunk's count array would pin far more memory than
        the handful of winning families justifies), so a winner's
        tensor is re-derived by one `bincount` at CPD time — the same
        int64 counts, so the fitted CPDs are unchanged.

        Non-BDeu methods gain nothing from a shared ``gammaln`` pass
        and simply delegate to :meth:`score`.
        """
        parent_sets = [tuple(parents) for parents in parent_sets]
        if method != "bdeu":
            return [
                self.score(child, parents, method, equivalent_sample_size)
                for parents in parent_sets
            ]
        if equivalent_sample_size <= 0:
            raise ValueError("equivalent_sample_size must be positive")
        out: List[Optional[float]] = [None] * len(parent_sets)
        missing: List[int] = []
        for i, parents in enumerate(parent_sets):
            key = (child, parents, method, equivalent_sample_size)
            cached = self._scores.get(key)
            if cached is not None:
                out[i] = cached
            elif not parents:
                # The empty family has no last parent column to fuse
                # on; it is a single q=1 table, scored directly.
                out[i] = self.score(
                    child, parents, method, equivalent_sample_size
                )
            else:
                missing.append(i)
        if len(missing) < self._TIER_MIN_FAMILIES:
            # A tiny tier cannot amortize the fused-pass setup; the
            # per-family scorer is already optimal there (and produces
            # the same floats, so the cutoff is pure dispatch).
            for i in missing:
                out[i] = self.score(
                    child, parent_sets[i], method, equivalent_sample_size
                )
            return out  # type: ignore[return-value]
        r = self._cards[child]
        position = 0
        while position < len(missing):
            chunk: List[Tuple[int, Tuple[int, ...], int]] = []
            code_elements = 0
            cell_elements = 0
            while position < len(missing):
                index = missing[position]
                parents = parent_sets[index]
                q = 1
                for parent in parents:
                    q *= self._cards[parent]
                if chunk and (
                    code_elements + self._n > self._TIER_ELEMENT_BUDGET
                    or cell_elements + r * q > self._TIER_ELEMENT_BUDGET
                ):
                    break
                chunk.append((index, parents, q))
                code_elements += self._n
                cell_elements += r * q
                position += 1
            self._score_bdeu_chunk(child, chunk, equivalent_sample_size, out)
        return out  # type: ignore[return-value]

    def _score_bdeu_chunk(
        self,
        child: int,
        chunk: List[Tuple[int, Tuple[int, ...], int]],
        equivalent_sample_size: float,
        out: List[Optional[float]],
    ) -> None:
        """Count and BDeu-score one chunk of families in fused passes.

        Everything that is exact under reordering runs chunk-wide in a
        handful of vectorized passes: family configuration codes come
        from one multiply-add over the concatenated cached prefixes,
        both count tensors (cells and per-config totals) are int64
        bincounts over fused offset codes, the occupied/positive masks
        and per-cell Dirichlet parameters are computed over the whole
        chunk, and every ``gammaln`` input of every family is evaluated
        in one call.  Only the two final reductions per family stay
        per-family, because *their* float summation order is the
        bit-identity contract: each sums the same dense zero-scattered
        term array, in the same layout, that :func:`_bdeu_score_sparse`
        sums.
        """
        r = self._cards[child]
        child_column = self._columns[child]
        n = self._n
        qs = np.array([q for (_, _, q) in chunk], dtype=np.int64)
        # Per-family cell/config segment boundaries.  The cell layout
        # is family-major then (state, config) row-major — the exact
        # (r, q_f) layout counts2d uses — so cell_offsets are r times
        # the config_offsets.
        config_offsets = np.zeros(len(chunk) + 1, dtype=np.int64)
        np.cumsum(qs, out=config_offsets[1:])
        cell_offsets = r * config_offsets
        # Fused configuration codes for the whole chunk: every family
        # extends its cached prefix code by its last parent's column
        # with one chunk-wide multiply-add (prefix * card + column) —
        # the same nesting parent_codes uses, so the counted cells are
        # identical.
        prefixes: List[np.ndarray] = []
        last_columns: List[np.ndarray] = []
        last_cards = np.empty(len(chunk), dtype=np.int64)
        for i, (_, parents, _) in enumerate(chunk):
            prefixes.append(self.parent_codes(parents[:-1])[0])
            last_columns.append(self._columns[parents[-1]])
            last_cards[i] = self._cards[parents[-1]]
        codes = np.concatenate(prefixes)
        codes *= np.repeat(last_cards, n)
        codes += np.concatenate(last_columns)
        # Two fused bincounts: one over cell codes, one over config
        # codes (int64 counting is exact under any grouping, so the
        # per-config totals need no per-family axis reduction).
        cell_codes = np.tile(child_column, len(chunk)) * np.repeat(qs, n)
        cell_codes += codes
        cell_codes += np.repeat(cell_offsets[:-1], n)
        counts_all = np.bincount(cell_codes, minlength=int(cell_offsets[-1]))
        codes += np.repeat(config_offsets[:-1], n)
        totals_all = np.bincount(codes, minlength=int(config_offsets[-1]))
        # Chunk-wide Dirichlet parameters: alpha_cell = ess/(r*q_f) per
        # cell, alpha_config = ess/q_f per config, and their memoized
        # scalar gammaln values — materialized only at the nonzero
        # positions (family id via one searchsorted per side), never as
        # full per-cell vectors.
        alpha_configs = equivalent_sample_size / qs
        # ess / (r*q) exactly as the per-family path divides it — not
        # (ess/q)/r, whose double rounding could differ in the last bit.
        alpha_cells = equivalent_sample_size / (r * qs)
        config_alpha_gammaln = np.array(
            [_gammaln_scalar(a) for a in alpha_configs]
        )
        cell_alpha_gammaln = np.array(
            [_gammaln_scalar(a) for a in alpha_cells]
        )
        occupied_at = np.flatnonzero(totals_all > 0)
        positive_at = np.flatnonzero(counts_all > 0)
        config_family = (
            np.searchsorted(config_offsets, occupied_at, side="right") - 1
        )
        cell_family = (
            np.searchsorted(cell_offsets, positive_at, side="right") - 1
        )
        split = len(occupied_at)
        # The single gammaln pass of the chunk: every occupied config
        # total and positive cell of every family, evaluated
        # elementwise in one call.
        fused = np.concatenate(
            [
                alpha_configs[config_family] + totals_all[occupied_at],
                alpha_cells[cell_family] + counts_all[positive_at],
            ]
        )
        fused_gammaln = gammaln(fused)
        # Scatter the term values into dense zero arrays (zeros exactly
        # where _bdeu_score_sparse has zeros), chunk-wide.
        config_terms = np.zeros(int(config_offsets[-1]), dtype=np.float64)
        config_terms[occupied_at] = (
            config_alpha_gammaln[config_family] - fused_gammaln[:split]
        )
        cell_terms = np.zeros(int(cell_offsets[-1]), dtype=np.float64)
        cell_terms[positive_at] = (
            fused_gammaln[split:] - cell_alpha_gammaln[cell_family]
        )
        for i, (index, parents, _) in enumerate(chunk):
            # The per-family float reductions — dense contiguous
            # segments summed exactly as the per-family path sums its
            # dense (q,) and (r, q) term arrays.
            score = float(
                config_terms[config_offsets[i]:config_offsets[i + 1]].sum()
            )
            score += float(
                cell_terms[cell_offsets[i]:cell_offsets[i + 1]].sum()
            )
            key = (child, parents, "bdeu", equivalent_sample_size)
            self._scores[key] = score
            out[index] = score
