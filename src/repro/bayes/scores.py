"""Family scores for structure learning: log-likelihood, BIC/MDL, BDeu.

BNFinder (the software the paper uses, [35]) selects, independently for
each vertex, the parent set that maximizes a decomposable score — either
the MDL score or a Bayesian (BDe) score.  We implement both; the
structure learner defaults to BDeu, with BIC/MDL available via
configuration.

:class:`FamilyStats` is the cached-sufficient-statistics layer the
structure search runs on: every candidate parent configuration is
encoded as one fused integer code (built incrementally from the cached
code of its prefix), family count tensors come from a single
``bincount`` over ``child * q + parent_code``, BDeu/BIC evaluate with
vectorized ``gammaln`` over those count arrays, and both counts and
scores are memoized per ``(child, parent-set)`` so greedy/exhaustive
search never re-counts a family — and CPD estimation afterwards reuses
the exact count tensors the winning families were scored with.  The
direct, uncached :func:`family_score` path is retained as the reference
implementation (``learn_structure(..., cache=False)``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
from scipy.special import gammaln

from repro.bayes.cpd import count_family


def family_log_likelihood(counts: np.ndarray) -> float:
    """Maximized log-likelihood of a family count table.

    ``counts`` has axes (child, *parents); the result is
    sum_{j,k} N_jk log(N_jk / N_j) where j ranges over parent
    configurations.
    """
    counts = np.asarray(counts, dtype=np.float64)
    child_counts = counts.reshape(counts.shape[0], -1)
    column_totals = child_counts.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.where(
            child_counts > 0,
            np.log(child_counts) - np.log(column_totals[np.newaxis, :]),
            0.0,
        )
    return float((child_counts * log_ratio).sum())


def bic_score(counts: np.ndarray, n_samples: int) -> float:
    """BIC / MDL family score: LL - (log n / 2) * #free-parameters.

    Larger is better.  The parameter count is (r-1) * q for child
    cardinality r and q parent configurations.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    r = counts.shape[0]
    q = int(np.prod(counts.shape[1:])) if counts.ndim > 1 else 1
    penalty = 0.5 * np.log(n_samples) * (r - 1) * q
    return family_log_likelihood(counts) - penalty


def bdeu_score(counts: np.ndarray, equivalent_sample_size: float = 1.0) -> float:
    """BDeu family score (log marginal likelihood, uniform structure prior).

    With child cardinality r and q parent configurations, the Dirichlet
    hyper-parameter per cell is ess / (r*q) and per parent configuration
    ess / q; the score is the usual ratio of gamma functions (Heckerman
    et al. 1995).  Larger is better.
    """
    if equivalent_sample_size <= 0:
        raise ValueError("equivalent_sample_size must be positive")
    counts = np.asarray(counts, dtype=np.float64)
    r = counts.shape[0]
    child_counts = counts.reshape(r, -1)
    q = child_counts.shape[1]
    alpha_cell = equivalent_sample_size / (r * q)
    alpha_config = equivalent_sample_size / q
    column_totals = child_counts.sum(axis=0)
    score = float(
        (gammaln(alpha_config) - gammaln(alpha_config + column_totals)).sum()
    )
    score += float(
        (gammaln(alpha_cell + child_counts) - gammaln(alpha_cell)).sum()
    )
    return score


def _bdeu_score_sparse(
    counts: np.ndarray, equivalent_sample_size: float = 1.0
) -> float:
    """:func:`bdeu_score`, evaluating ``gammaln`` on nonzero cells only.

    Zero-count cells contribute ``gammaln(α) - gammaln(α) = 0.0``
    exactly, so the expensive ``gammaln`` runs only where counts are
    positive and the results scatter back into dense zero arrays —
    the final ``.sum()`` then traverses arrays elementwise identical
    to the dense implementation, making the returned float
    bit-identical while typically touching an order of magnitude fewer
    cells (family tables are sparse: at most one occupied cell per
    training row).
    """
    if equivalent_sample_size <= 0:
        raise ValueError("equivalent_sample_size must be positive")
    r = counts.shape[0]
    child_counts = counts.reshape(r, -1)
    q = child_counts.shape[1]
    alpha_cell = equivalent_sample_size / (r * q)
    alpha_config = equivalent_sample_size / q
    column_totals = child_counts.sum(axis=0)
    config_terms = np.zeros(q, dtype=np.float64)
    occupied = column_totals > 0
    config_terms[occupied] = _gammaln_scalar(alpha_config) - gammaln(
        alpha_config + column_totals[occupied]
    )
    score = float(config_terms.sum())
    cell_terms = np.zeros((r, q), dtype=np.float64)
    positive = child_counts > 0
    cell_terms[positive] = gammaln(alpha_cell + child_counts[positive]) - _gammaln_scalar(
        alpha_cell
    )
    score += float(cell_terms.sum())
    return score


#: Scalar ``gammaln`` memo — structure search evaluates the same prior
#: strengths (a handful of distinct α values per model) thousands of
#: times.
_GAMMALN_CACHE: Dict[float, float] = {}


def _gammaln_scalar(alpha: float) -> float:
    cached = _GAMMALN_CACHE.get(alpha)
    if cached is None:
        cached = _GAMMALN_CACHE[alpha] = float(gammaln(alpha))
    return cached


def family_score(
    data: np.ndarray,
    child_index: int,
    parent_indices: Sequence[int],
    cardinalities: Sequence[int],
    method: str = "bdeu",
    equivalent_sample_size: float = 1.0,
) -> float:
    """Score one (child, parent-set) family directly from data.

    Uncached: every call re-counts the family.  The structure learner
    normally goes through :class:`FamilyStats`; this function is the
    retained reference path (and produces bit-identical scores, since
    :class:`FamilyStats` computes the same fused codes and calls the
    same scoring functions).
    """
    counts = count_family(data, child_index, parent_indices, cardinalities)
    if method == "bdeu":
        return bdeu_score(counts, equivalent_sample_size)
    if method in ("bic", "mdl"):
        return bic_score(counts, data.shape[0])
    raise ValueError(f"unknown scoring method: {method!r}")


class FamilyStats:
    """Cached sufficient statistics for family scoring over one dataset.

    Holds the categorical data column-wise and memoizes, per
    ``(child, parent-set)``: the fused parent configuration codes
    (small sets only — one multiply-add extends a cached prefix), the
    family count tensor (one ``bincount``), and the final score.  Count
    tensors are laid out exactly like
    :func:`repro.bayes.cpd.count_family` (axes ``(child, *parents)``),
    so :func:`repro.bayes.cpd.estimate_cpd` can consume them directly
    and the fitted CPDs are bit-identical to the uncached path.
    """

    #: Fused parent codes are cached for subsets up to this size; larger
    #: codes are rebuilt from their cached prefix (one multiply-add per
    #: extra parent), keeping the cache O(num_vars) arrays.
    _CODE_CACHE_SIZE = 1

    def __init__(self, data: np.ndarray, cardinalities: Sequence[int]):
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D code matrix")
        self._n = data.shape[0]
        self._columns = [
            np.ascontiguousarray(data[:, i], dtype=np.int64)
            for i in range(data.shape[1])
        ]
        self._cards = tuple(int(c) for c in cardinalities)
        if len(self._cards) != data.shape[1]:
            raise ValueError("cardinalities must match data columns")
        empty = np.zeros(self._n, dtype=np.int64)
        self._codes: Dict[Tuple[int, ...], Tuple[np.ndarray, int]] = {(): (empty, 1)}
        self._counts: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        self._scores: Dict[Tuple, float] = {}

    @property
    def n_samples(self) -> int:
        return self._n

    def parent_codes(self, parents: Tuple[int, ...]) -> Tuple[np.ndarray, int]:
        """Fused configuration codes for a parent tuple, and their count q.

        ``codes[row] = ((p1*c2 + p2)*c3 + p3)...`` — the same nesting
        :func:`count_family` flattens with, so counts reshape directly
        into ``(child, *parent_cards)``.
        """
        cached = self._codes.get(parents)
        if cached is not None:
            return cached
        prefix, q = self.parent_codes(parents[:-1])
        last = parents[-1]
        card = self._cards[last]
        entry = (prefix * card + self._columns[last], q * card)
        if len(parents) <= self._CODE_CACHE_SIZE:
            self._codes[parents] = entry
        return entry

    def counts2d(self, child: int, parents: Tuple[int, ...]) -> np.ndarray:
        """Family counts as an int64 ``(r, q)`` matrix, memoized.

        The 2-D layout is what scoring consumes directly;
        :meth:`counts` reshapes (a view) into the full tensor.
        """
        key = (child, parents)
        cached = self._counts.get(key)
        if cached is not None:
            return cached
        codes, q = self.parent_codes(parents)
        r = self._cards[child]
        flat = self._columns[child] * q + codes
        counts = np.bincount(flat, minlength=r * q).reshape(r, q)
        self._counts[key] = counts
        return counts

    def counts(self, child: int, parents: Tuple[int, ...]) -> np.ndarray:
        """Family count tensor N(child, parents), axes ``(child, *parents)``.

        Bit-compatible with :func:`repro.bayes.cpd.count_family` (same
        fused codes, same ``bincount``), reshaped from the memoized 2-D
        matrix without copying.
        """
        parents = tuple(parents)
        return self.counts2d(child, parents).reshape(
            (self._cards[child],) + tuple(self._cards[p] for p in parents)
        )

    def score(
        self,
        child: int,
        parents: Tuple[int, ...],
        method: str = "bdeu",
        equivalent_sample_size: float = 1.0,
    ) -> float:
        """Memoized family score from the cached count tensor."""
        parents = tuple(parents)
        key = (child, parents, method, equivalent_sample_size)
        cached = self._scores.get(key)
        if cached is not None:
            return cached
        counts = self.counts2d(child, parents)
        if method == "bdeu":
            score = _bdeu_score_sparse(counts, equivalent_sample_size)
        elif method in ("bic", "mdl"):
            score = bic_score(counts, self._n)
        else:
            raise ValueError(f"unknown scoring method: {method!r}")
        self._scores[key] = score
        return score
