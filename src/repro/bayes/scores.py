"""Family scores for structure learning: log-likelihood, BIC/MDL, BDeu.

BNFinder (the software the paper uses, [35]) selects, independently for
each vertex, the parent set that maximizes a decomposable score — either
the MDL score or a Bayesian (BDe) score.  We implement both; the
structure learner defaults to BDeu, with BIC/MDL available via
configuration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import gammaln

from repro.bayes.cpd import count_family


def family_log_likelihood(counts: np.ndarray) -> float:
    """Maximized log-likelihood of a family count table.

    ``counts`` has axes (child, *parents); the result is
    sum_{j,k} N_jk log(N_jk / N_j) where j ranges over parent
    configurations.
    """
    counts = np.asarray(counts, dtype=np.float64)
    child_counts = counts.reshape(counts.shape[0], -1)
    column_totals = child_counts.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.where(
            child_counts > 0,
            np.log(child_counts) - np.log(column_totals[np.newaxis, :]),
            0.0,
        )
    return float((child_counts * log_ratio).sum())


def bic_score(counts: np.ndarray, n_samples: int) -> float:
    """BIC / MDL family score: LL - (log n / 2) * #free-parameters.

    Larger is better.  The parameter count is (r-1) * q for child
    cardinality r and q parent configurations.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    r = counts.shape[0]
    q = int(np.prod(counts.shape[1:])) if counts.ndim > 1 else 1
    penalty = 0.5 * np.log(n_samples) * (r - 1) * q
    return family_log_likelihood(counts) - penalty


def bdeu_score(counts: np.ndarray, equivalent_sample_size: float = 1.0) -> float:
    """BDeu family score (log marginal likelihood, uniform structure prior).

    With child cardinality r and q parent configurations, the Dirichlet
    hyper-parameter per cell is ess / (r*q) and per parent configuration
    ess / q; the score is the usual ratio of gamma functions (Heckerman
    et al. 1995).  Larger is better.
    """
    if equivalent_sample_size <= 0:
        raise ValueError("equivalent_sample_size must be positive")
    counts = np.asarray(counts, dtype=np.float64)
    r = counts.shape[0]
    child_counts = counts.reshape(r, -1)
    q = child_counts.shape[1]
    alpha_cell = equivalent_sample_size / (r * q)
    alpha_config = equivalent_sample_size / q
    column_totals = child_counts.sum(axis=0)
    score = float(
        (gammaln(alpha_config) - gammaln(alpha_config + column_totals)).sum()
    )
    score += float(
        (gammaln(alpha_cell + child_counts) - gammaln(alpha_cell)).sum()
    )
    return score


def family_score(
    data: np.ndarray,
    child_index: int,
    parent_indices: Sequence[int],
    cardinalities: Sequence[int],
    method: str = "bdeu",
    equivalent_sample_size: float = 1.0,
) -> float:
    """Score one (child, parent-set) family directly from data."""
    counts = count_family(data, child_index, parent_indices, cardinalities)
    if method == "bdeu":
        return bdeu_score(counts, equivalent_sample_size)
    if method in ("bic", "mdl"):
        return bic_score(counts, data.shape[0])
    raise ValueError(f"unknown scoring method: {method!r}")
