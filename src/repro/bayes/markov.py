"""First-order Markov-chain baseline model.

Section 4.5 discusses Markov Models as an alternative to BNs and rejects
them because "MMs assume that a given segment depends only on the
previous segment.  Thus, MMs cannot directly handle dependency between
non-adjacent segments."  We implement the baseline anyway so the ablation
benchmark can quantify the difference on scanning success.

A first-order MM over code vectors is simply a BN in which segment k has
exactly the single parent k-1 — so we reuse all the BN machinery.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayes.cpd import estimate_cpd
from repro.bayes.network import BayesianNetwork


class MarkovChainModel:
    """First-order chain over categorical code vectors.

    >>> data = np.array([[0, 1], [0, 1], [1, 0]])
    >>> model = MarkovChainModel.fit(data, ["A", "B"], [2, 2])
    >>> model.network.parents("B")
    ('A',)
    """

    def __init__(self, network: BayesianNetwork):
        for i, variable in enumerate(network.variables):
            expected = (network.variables[i - 1],) if i else ()
            if network.parents(variable) != expected:
                raise ValueError("network is not a first-order chain")
        self.network = network

    @classmethod
    def fit(
        cls,
        data: np.ndarray,
        names: Sequence[str],
        cardinalities: Sequence[int],
        alpha: float = 0.05,
    ) -> "MarkovChainModel":
        """Estimate the chain CPDs from a code matrix."""
        data = np.asarray(data)
        cpds = [
            estimate_cpd(
                data,
                child,
                [child - 1] if child else [],
                cardinalities,
                names,
                alpha=alpha,
            )
            for child in range(data.shape[1])
        ]
        return cls(BayesianNetwork(names, cpds))

    def log_likelihood(self, data: np.ndarray) -> float:
        """Chain log-likelihood of a code matrix."""
        return self.network.log_likelihood(data)
